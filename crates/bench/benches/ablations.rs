//! Design-choice ablations beyond the paper's own figures (DESIGN.md §4).
//!
//! * **Granularity sweep** — the paper fixes `g` to the NUMA node size
//!   (§3.5) after initial testing; this bench sweeps `g` on CG so the choice
//!   is reproducible rather than asserted.
//! * **Strict-fraction sweep** — the fraction of NUMA-strict chunks under
//!   the `full` steal policy is "implementation-specific" in the paper;
//!   swept here on the wavefront-imbalanced LU.
//! * **Steal-trial ablation** — ILAN with the post-search `full`-policy
//!   trial disabled (strict forever), isolating what adaptive inter-node
//!   stealing buys on an imbalanced workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ilan::{IlanParams, IlanScheduler};
use ilan_numasim::{MachineParams, SimMachine};
use ilan_topology::presets;
use ilan_workloads::{Scale, Workload};
use std::time::Duration;

fn run_with(params: IlanParams, workload: Workload, seed: u64) -> Duration {
    let topo = params.topology.clone();
    let mut app = workload.sim_app(&topo, Scale::Quick);
    app.steps = app.steps.min(12);
    let mut machine = SimMachine::new(MachineParams::for_topology(&topo), seed);
    let mut policy = IlanScheduler::new(params);
    let stats = app.run(&mut machine, &mut policy);
    Duration::from_nanos(stats.wall_time_ns() as u64)
}

fn granularity_sweep(c: &mut Criterion) {
    let topo = presets::epyc_9354_2s();
    let mut group = c.benchmark_group("ablate-granularity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for g in [2usize, 4, 8, 16, 32] {
        group.bench_function(format!("cg/g={g}"), |b| {
            b.iter_custom(|iters| {
                (0..iters)
                    .map(|seed| {
                        run_with(
                            IlanParams::for_topology(&topo).granularity(g),
                            Workload::Cg,
                            seed,
                        )
                    })
                    .sum()
            })
        });
    }
    group.finish();
}

fn strict_fraction_sweep(c: &mut Criterion) {
    let topo = presets::epyc_9354_2s();
    let mut group = c.benchmark_group("ablate-strict-fraction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for pct in [0usize, 25, 50, 75, 100] {
        group.bench_function(format!("lu/strict={pct}%"), |b| {
            b.iter_custom(|iters| {
                (0..iters)
                    .map(|seed| {
                        run_with(
                            IlanParams::for_topology(&topo).strict_fraction(pct as f64 / 100.0),
                            Workload::Lu,
                            seed,
                        )
                    })
                    .sum()
            })
        });
    }
    group.finish();
}

fn steal_trial_ablation(c: &mut Criterion) {
    let topo = presets::epyc_9354_2s();
    let mut group = c.benchmark_group("ablate-steal-trial");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for (name, with_trial) in [("with-trial", true), ("strict-only", false)] {
        group.bench_function(format!("lu/{name}"), |b| {
            b.iter_custom(|iters| {
                (0..iters)
                    .map(|seed| {
                        let params = if with_trial {
                            IlanParams::for_topology(&topo)
                        } else {
                            IlanParams::for_topology(&topo).without_steal_trial()
                        };
                        run_with(params, Workload::Lu, seed)
                    })
                    .sum()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    granularity_sweep,
    strict_fraction_sweep,
    steal_trial_ablation
);
criterion_main!(benches);
