//! Macro-benchmark of the co-scheduling service (real wall time): how fast
//! `ilan-server` serves a small job stream under each sharing policy on the
//! tiny machine. Guards the colocation engine's event loop — its rate
//! recomputation spans every lane, so regressions here compound faster than
//! in the single-loop engine.

use criterion::{criterion_group, criterion_main, Criterion};
use ilan_server::{generate_stream, run_colocation, ServerConfig, SharingPolicy, StreamParams};
use ilan_topology::presets;
use std::time::Duration;

fn serve_stream(c: &mut Criterion) {
    let topo = presets::tiny_2x4();
    let stream = generate_stream(1, &StreamParams::mixed(6, 1e6));
    let mut group = c.benchmark_group("colo-serve");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for policy in [
        SharingPolicy::Naive,
        SharingPolicy::StaticEqual,
        SharingPolicy::InterferenceAware,
    ] {
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                let config = ServerConfig::new(&topo, policy);
                run_colocation(&config, &stream, 1).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, serve_stream);
criterion_main!(benches);
