//! Figure 2 as a Criterion benchmark: simulated wall time of every paper
//! benchmark under the default baseline and under ILAN.
//!
//! Measurements are **simulated seconds** (via `iter_custom`), so the ratio
//! baseline/ilan per benchmark is the paper's normalized speedup. Run with
//! `cargo bench -p ilan-bench --bench fig2_speedup`; the printed text tables
//! come from `cargo run -p ilan-bench --bin repro -- fig2`.

use criterion::{criterion_group, criterion_main, Criterion};
use ilan_bench::{collect::simulated_duration, Scheduler};
use ilan_topology::presets;
use ilan_workloads::{Scale, ALL_WORKLOADS};
use std::time::Duration;

fn fig2(c: &mut Criterion) {
    let topo = presets::epyc_9354_2s();
    let mut group = c.benchmark_group("fig2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for workload in ALL_WORKLOADS {
        for scheduler in [Scheduler::Baseline, Scheduler::Ilan] {
            group.bench_function(format!("{}/{}", workload.name(), scheduler.name()), |b| {
                b.iter_custom(|iters| {
                    (0..iters)
                        .map(|seed| {
                            simulated_duration(workload, scheduler, &topo, Scale::Quick, 10, seed)
                        })
                        .sum()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
