//! Figure 3 as a Criterion benchmark: the cost of ILAN's moldability on the
//! two benchmarks it molds (CG, SP) versus two it leaves alone (FT, Matmul),
//! reported in simulated time. The actual thread counts per benchmark are
//! printed by `repro -- fig3`; this bench tracks that the molded
//! configurations stay profitable over time (regressions here mean the
//! search started settling on worse configurations).

use criterion::{criterion_group, criterion_main, Criterion};
use ilan_bench::{collect::simulated_duration, Scheduler};
use ilan_topology::presets;
use ilan_workloads::{Scale, Workload};
use std::time::Duration;

fn fig3(c: &mut Criterion) {
    let topo = presets::epyc_9354_2s();
    let mut group = c.benchmark_group("fig3");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    // The two molded benchmarks and two kept-at-64 controls.
    for workload in [Workload::Cg, Workload::Sp, Workload::Ft, Workload::Matmul] {
        group.bench_function(format!("{}/ilan-settled", workload.name()), |b| {
            b.iter_custom(|iters| {
                (0..iters)
                    .map(|seed| {
                        simulated_duration(workload, Scheduler::Ilan, &topo, Scale::Quick, 14, seed)
                    })
                    .sum()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
