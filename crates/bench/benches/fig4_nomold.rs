//! Figure 4 as a Criterion benchmark: the no-moldability ablation.
//!
//! Three-way comparison per benchmark — baseline, full ILAN, ILAN without
//! moldability — in simulated time. The CG row is the interesting one: the
//! paper found hierarchical-only scheduling *loses* on CG while full ILAN
//! wins, isolating moldability's contribution.

use criterion::{criterion_group, criterion_main, Criterion};
use ilan_bench::{collect::simulated_duration, Scheduler};
use ilan_topology::presets;
use ilan_workloads::{Scale, Workload};
use std::time::Duration;

fn fig4(c: &mut Criterion) {
    let topo = presets::epyc_9354_2s();
    let mut group = c.benchmark_group("fig4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for workload in [Workload::Cg, Workload::Sp, Workload::Bt] {
        for scheduler in [Scheduler::Baseline, Scheduler::Ilan, Scheduler::IlanNoMold] {
            group.bench_function(format!("{}/{}", workload.name(), scheduler.name()), |b| {
                b.iter_custom(|iters| {
                    (0..iters)
                        .map(|seed| {
                            simulated_duration(workload, scheduler, &topo, Scale::Quick, 10, seed)
                        })
                        .sum()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
