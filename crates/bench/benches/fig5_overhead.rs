//! Figure 5 as a Criterion benchmark: accumulated scheduling overhead.
//!
//! Reports the *overhead* component (queue operations, steals, idle-loop
//! tails, configuration selection) as the measured duration, per benchmark
//! and scheduler. `repro -- fig5` prints the normalized table.

use criterion::{criterion_group, criterion_main, Criterion};
use ilan::Policy;
use ilan_bench::Scheduler;
use ilan_numasim::{MachineParams, SimMachine};
use ilan_topology::presets;
use ilan_workloads::{Scale, Workload};
use std::time::Duration;

fn overhead_duration(workload: Workload, scheduler: Scheduler, seed: u64) -> Duration {
    let topo = presets::epyc_9354_2s();
    let mut app = workload.sim_app(&topo, Scale::Quick);
    app.steps = app.steps.min(10);
    let mut machine = SimMachine::new(MachineParams::for_topology(&topo), seed);
    let mut policy: Box<dyn Policy> = scheduler.make_policy(&topo);
    let stats = app.run(&mut machine, policy.as_mut());
    Duration::from_nanos(stats.total_overhead_ns as u64)
}

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5-overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for workload in [Workload::Cg, Workload::Matmul, Workload::Ft, Workload::Sp] {
        for scheduler in [Scheduler::Baseline, Scheduler::Ilan] {
            group.bench_function(format!("{}/{}", workload.name(), scheduler.name()), |b| {
                b.iter_custom(|iters| {
                    (0..iters)
                        .map(|seed| overhead_duration(workload, scheduler, seed))
                        .sum()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
