//! Figure 6 as a Criterion benchmark: ILAN vs static work-sharing vs the
//! baseline, in simulated time.
//!
//! The paper's two poles are FT (perfectly balanced: work-sharing wins) and
//! CG (imbalanced: ILAN wins clearly); both are benched here along with LU
//! (wavefront imbalance — the other work-sharing-hostile case).

use criterion::{criterion_group, criterion_main, Criterion};
use ilan_bench::{collect::simulated_duration, Scheduler};
use ilan_topology::presets;
use ilan_workloads::{Scale, Workload};
use std::time::Duration;

fn fig6(c: &mut Criterion) {
    let topo = presets::epyc_9354_2s();
    let mut group = c.benchmark_group("fig6");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for workload in [Workload::Ft, Workload::Cg, Workload::Lu] {
        for scheduler in [Scheduler::Baseline, Scheduler::Ilan, Scheduler::WorkSharing] {
            group.bench_function(format!("{}/{}", workload.name(), scheduler.name()), |b| {
                b.iter_custom(|iters| {
                    (0..iters)
                        .map(|seed| {
                            simulated_duration(workload, scheduler, &topo, Scale::Quick, 10, seed)
                        })
                        .sum()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
