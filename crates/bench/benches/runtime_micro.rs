//! Micro-benchmarks of the native work-stealing runtime (real wall time).
//!
//! These quantify the runtime-substrate costs the simulator parameterizes:
//! taskloop dispatch latency, per-chunk scheduling cost in each execution
//! mode, and the cost of a pool round-trip with trivial bodies.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ilan_runtime::{ExecMode, PinMode, PoolConfig, StealPolicy, ThreadPool};
use ilan_topology::presets;
use std::hint::black_box;
use std::time::Duration;

fn modes() -> Vec<(&'static str, ExecMode)> {
    let topo = presets::tiny_2x4();
    vec![
        ("flat", ExecMode::Flat),
        ("worksharing", ExecMode::WorkSharing),
        (
            "hier-strict",
            ExecMode::Hierarchical {
                mask: topo.all_nodes(),
                threads: 0,
                strict_fraction: 1.0,
                policy: StealPolicy::Strict,
            },
        ),
        (
            "hier-full",
            ExecMode::Hierarchical {
                mask: topo.all_nodes(),
                threads: 0,
                strict_fraction: 0.5,
                policy: StealPolicy::Full,
            },
        ),
    ]
}

/// Empty-body taskloop: pure scheduling cost per invocation.
fn dispatch_latency(c: &mut Criterion) {
    let pool =
        ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).expect("pool");
    let mut group = c.benchmark_group("dispatch-latency");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    for (name, mode) in modes() {
        group.bench_function(name, |b| {
            b.iter(|| {
                pool.taskloop(0..256, 4, mode.clone(), |r| {
                    black_box(r.start);
                });
            })
        });
    }
    group.finish();
}

/// Compute-heavy taskloop: mode overhead relative to real work.
fn loaded_taskloop(c: &mut Criterion) {
    let pool =
        ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).expect("pool");
    let mut group = c.benchmark_group("loaded-taskloop");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let data: Vec<f64> = (0..200_000).map(|i| i as f64).collect();
    for (name, mode) in modes() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                let acc_ref = &mut acc;
                let r = pool.taskloop(0..data.len(), 1024, mode.clone(), |range| {
                    black_box(data[range].iter().map(|x| x.sqrt()).sum::<f64>());
                });
                *acc_ref += r.makespan.as_secs_f64();
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// Pool construction/teardown (thread spawn + pinning attempts).
fn pool_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool-lifecycle");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("create-drop-8-workers", |b| {
        b.iter_batched(
            || (),
            |()| {
                let pool =
                    ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never))
                        .expect("pool");
                black_box(pool.num_workers());
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, dispatch_latency, loaded_taskloop, pool_lifecycle);
criterion_main!(benches);
