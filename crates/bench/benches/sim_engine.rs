//! Micro-benchmarks of the simulator engine itself (real wall time): how
//! fast the fluid-rate event loop retires simulated chunks. Useful when
//! extending the memory model — regressions here multiply across the whole
//! reproduction harness.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ilan_numasim::{Locality, MachineParams, PlacementPlan, SimMachine, TaskSpec};
use ilan_topology::{presets, NodeId};
use std::time::Duration;

fn tasks(n: usize, nodes: usize, scattered: bool) -> Vec<TaskSpec> {
    (0..n)
        .map(|i| TaskSpec {
            compute_ns: 20_000.0,
            mem_bytes: 400_000.0,
            home_node: NodeId::new(i * nodes / n),
            locality: if scattered {
                Locality::Scattered { spread: 0.8 }
            } else {
                Locality::Chunked
            },
            data_mask: ilan_topology::NodeMask::first_n(nodes),
            cache_reuse: 0.2,
            fits_l3: true,
        })
        .collect()
}

fn engine_throughput(c: &mut Criterion) {
    let topo = presets::epyc_9354_2s();
    let mut group = c.benchmark_group("sim-engine");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(4));
    for (name, scattered) in [("chunked", false), ("scattered", true)] {
        for chunks in [256usize, 2048] {
            let specs = tasks(chunks, topo.num_nodes(), scattered);
            group.throughput(Throughput::Elements(chunks as u64));
            group.bench_function(format!("{name}/{chunks}-chunks"), |b| {
                let cores = topo.cpuset_of_mask(topo.all_nodes());
                b.iter(|| {
                    let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 7);
                    m.run_taskloop(&cores, &PlacementPlan::flat(), &specs)
                        .tasks_executed()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
