//! Table 1 as a Criterion benchmark: run-to-run variability.
//!
//! Criterion's own spread statistics over seeded runs *are* the variance
//! study: each iteration uses a fresh seed, so the reported std-dev per
//! benchmark/scheduler corresponds to the paper's Table 1 columns (printed
//! exactly by `repro -- table1`).

use criterion::{criterion_group, criterion_main, Criterion};
use ilan_bench::{collect::simulated_duration, Scheduler};
use ilan_topology::presets;
use ilan_workloads::{Scale, ALL_WORKLOADS};
use std::cell::Cell;
use std::time::Duration;

fn table1(c: &mut Criterion) {
    let topo = presets::epyc_9354_2s();
    let mut group = c.benchmark_group("table1-variance");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    for workload in ALL_WORKLOADS {
        for scheduler in [Scheduler::Baseline, Scheduler::Ilan] {
            // A distinct seed per criterion sample: the measured spread is
            // seed-to-seed (run-to-run) variance, not timer noise.
            let next_seed = Cell::new(0u64);
            group.bench_function(format!("{}/{}", workload.name(), scheduler.name()), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let seed = next_seed.get();
                        next_seed.set(seed + 1);
                        total +=
                            simulated_duration(workload, scheduler, &topo, Scale::Quick, 8, seed);
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
