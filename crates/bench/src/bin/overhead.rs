//! `overhead` — runtime dispatch-overhead microbenchmarks.
//!
//! Measures what the dispatch-arena and targeted-wakeup work actually bought,
//! on the paper's 8-node EPYC preset (oversubscribed on small CI machines —
//! `PinMode::Never`; the *relative* numbers are what matter):
//!
//! 1. **Launch latency vs node-mask width** — a trivial-body hierarchical
//!    taskloop confined to 1/2/4/8 of the 8 nodes, under both wake modes.
//!    [`WakeMode::Broadcast`] is the pre-arena baseline (wake all 64 workers
//!    per launch); [`WakeMode::Targeted`] wakes only the masked workers.
//! 2. **Steal throughput** — single-iteration chunks over the full machine,
//!    [`StealPolicy::Strict`] vs [`StealPolicy::Full`].
//! 3. **Warm vs cold** — first invocation on a fresh pool (arena growth,
//!    ring allocation) vs the steady state the zero-allocation test pins.
//!
//! Writes machine-readable JSON (default `BENCH_runtime_overhead.json`,
//! repo-root relative when run via `cargo run`). Always exits 0 unless the
//! runtime itself panics: this is a measurement, not a gate.
//!
//! ```text
//! cargo run --release -p ilan-bench --bin overhead -- [--quick] [--out PATH]
//! ```

use ilan_runtime::{
    ExecMode, Grain, LoopReport, PinMode, PoolConfig, StealPolicy, ThreadPool, WakeMode,
};
use ilan_topology::{presets, NodeMask};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: overhead [--quick] [--out PATH]");
    std::process::exit(2);
}

/// Medians are robust to the scheduler noise of an oversubscribed machine;
/// p10/p90 show the spread. `samples` is sorted in place.
fn percentiles(samples: &mut [u64]) -> (u64, u64, u64) {
    samples.sort_unstable();
    let pick = |p: usize| samples[(samples.len() - 1) * p / 100];
    (pick(10), pick(50), pick(90))
}

/// Times `reps` runs of a trivial-body taskloop on a warm pool.
fn time_launches(
    pool: &ThreadPool,
    len: usize,
    grain: Grain,
    mode: &ExecMode,
    reps: usize,
) -> Vec<u64> {
    let sink = AtomicUsize::new(0);
    let body = |r: std::ops::Range<usize>| {
        sink.fetch_add(std::hint::black_box(r.len()), Ordering::Relaxed);
    };
    let mut report = LoopReport::default();
    // Warm-up: reach the arena's steady state before the clock starts.
    for _ in 0..reps.div_ceil(4).max(3) {
        pool.taskloop_into(0..len, grain, mode.clone(), body, &mut report);
    }
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            pool.taskloop_into(0..len, grain, mode.clone(), body, &mut report);
            t.elapsed().as_nanos() as u64
        })
        .collect()
}

struct LatencyRow {
    wake: &'static str,
    mask_nodes: usize,
    workers: usize,
    p10: u64,
    median: u64,
    p90: u64,
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_runtime_overhead.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out = p,
                None => usage(),
            },
            _ => usage(),
        }
    }
    let reps = if quick { 40 } else { 200 };
    let topo = presets::epyc_9354_2s();
    let num_nodes = topo.num_nodes();
    let cores_per_node = topo.num_cores() / num_nodes;

    // ---- 1. Launch latency vs mask width, Targeted vs Broadcast ----------
    eprintln!(
        "launch latency ({reps} reps per point, {} workers) ...",
        topo.num_cores()
    );
    let mut latency: Vec<LatencyRow> = Vec::new();
    for (wake, name) in [
        (WakeMode::Targeted, "targeted"),
        (WakeMode::Broadcast, "broadcast"),
    ] {
        // inline_threshold(0): the narrow masks use short ranges that would
        // otherwise take the sequential inline path — this section measures
        // the *dispatch* path. The inline path is measured separately below.
        let pool = ThreadPool::new(
            PoolConfig::new(topo.clone())
                .pin(PinMode::Never)
                .wake(wake)
                .inline_threshold(0),
        )
        .expect("pool");
        for width in [1usize, 2, 4, 8] {
            let mode = ExecMode::Hierarchical {
                mask: NodeMask::first_n(width),
                threads: 0,
                strict_fraction: 1.0,
                policy: StealPolicy::Strict,
            };
            // Two chunks per masked worker: enough to occupy everyone the
            // dispatcher wakes, small enough that wakeup cost dominates.
            let len = 2 * width * cores_per_node;
            let mut ns = time_launches(&pool, len, Grain::Size(1), &mode, reps);
            let (p10, median, p90) = percentiles(&mut ns);
            eprintln!("  {name:9} mask={width} median {median} ns");
            latency.push(LatencyRow {
                wake: name,
                mask_nodes: width,
                workers: width * cores_per_node,
                p10,
                median,
                p90,
            });
        }
    }
    let median_of = |wake: &str, width: usize| {
        latency
            .iter()
            .find(|r| r.wake == wake && r.mask_nodes == width)
            .map(|r| r.median)
            .unwrap_or(0)
    };

    // ---- 1b. Inline fast path vs dispatch for a tiny loop ----------------
    eprintln!("inline fast path ...");
    let inline_pool =
        ThreadPool::new(PoolConfig::new(topo.clone()).pin(PinMode::Never)).expect("pool");
    let dispatch_pool = ThreadPool::new(
        PoolConfig::new(topo.clone())
            .pin(PinMode::Never)
            .inline_threshold(0),
    )
    .expect("pool");
    let tiny_mode = ExecMode::Hierarchical {
        mask: NodeMask::first_n(1),
        threads: 0,
        strict_fraction: 1.0,
        policy: StealPolicy::Strict,
    };
    let mut ns = time_launches(&inline_pool, 16, Grain::Size(4), &tiny_mode, reps);
    let (_, inline_median, _) = percentiles(&mut ns);
    let mut ns = time_launches(&dispatch_pool, 16, Grain::Size(4), &tiny_mode, reps);
    let (_, tiny_dispatch_median, _) = percentiles(&mut ns);
    eprintln!("  inline {inline_median} ns, dispatch {tiny_dispatch_median} ns");

    // ---- 2. Steal throughput, Strict vs Full -----------------------------
    eprintln!("steal throughput ...");
    let pool = ThreadPool::new(PoolConfig::new(topo.clone()).pin(PinMode::Never)).expect("pool");
    let chunks = if quick { 2_048 } else { 8_192 };
    let mut throughput = Vec::new();
    for (policy, name) in [(StealPolicy::Strict, "strict"), (StealPolicy::Full, "full")] {
        let mode = ExecMode::Hierarchical {
            mask: topo.all_nodes(),
            threads: 0,
            strict_fraction: 0.5,
            policy,
        };
        let mut ns = time_launches(&pool, chunks, Grain::Size(1), &mode, reps.div_ceil(4));
        let (_, median, _) = percentiles(&mut ns);
        let per_sec = chunks as f64 / (median as f64 / 1e9);
        eprintln!("  {name:6} {per_sec:.0} chunks/s");
        throughput.push((name, median, per_sec));
    }

    // ---- 3. Warm vs cold -------------------------------------------------
    eprintln!("warm vs cold ...");
    let shape_len = 8 * topo.num_cores();
    let cold_reps = if quick { 3 } else { 8 };
    let mut cold: Vec<u64> = (0..cold_reps)
        .map(|_| {
            let pool =
                ThreadPool::new(PoolConfig::new(topo.clone()).pin(PinMode::Never)).expect("pool");
            let t = Instant::now();
            pool.taskloop(0..shape_len, 1, ExecMode::Flat, |r| {
                std::hint::black_box(r.len());
            });
            t.elapsed().as_nanos() as u64
        })
        .collect();
    let (_, cold_median, _) = percentiles(&mut cold);
    let pool = ThreadPool::new(PoolConfig::new(topo.clone()).pin(PinMode::Never)).expect("pool");
    let mut warm = time_launches(&pool, shape_len, Grain::Size(1), &ExecMode::Flat, reps);
    let (_, warm_median, _) = percentiles(&mut warm);
    eprintln!("  cold {cold_median} ns, warm {warm_median} ns");

    // ---- JSON ------------------------------------------------------------
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"runtime_overhead\",");
    let _ = writeln!(j, "  \"preset\": \"epyc_9354_2s\",");
    let _ = writeln!(j, "  \"workers\": {},", topo.num_cores());
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"reps\": {reps},");
    let _ = writeln!(j, "  \"launch_latency_ns\": [");
    for (i, r) in latency.iter().enumerate() {
        let comma = if i + 1 < latency.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"wake\": \"{}\", \"mask_nodes\": {}, \"workers_active\": {}, \
             \"p10\": {}, \"median\": {}, \"p90\": {}}}{comma}",
            r.wake, r.mask_nodes, r.workers, r.p10, r.median, r.p90
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"broadcast_over_targeted_latency\": {{");
    for (i, width) in [1usize, 2, 4, 8].iter().enumerate() {
        let t = median_of("targeted", *width).max(1);
        let b = median_of("broadcast", *width);
        let comma = if i < 3 { "," } else { "" };
        let _ = writeln!(j, "    \"mask_{width}\": {:.3}{comma}", b as f64 / t as f64);
    }
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"inline_fast_path_ns\": {{");
    let _ = writeln!(j, "    \"inline_median\": {inline_median},");
    let _ = writeln!(j, "    \"dispatch_median\": {tiny_dispatch_median},");
    let _ = writeln!(
        j,
        "    \"dispatch_over_inline\": {:.3}",
        tiny_dispatch_median as f64 / inline_median.max(1) as f64
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"steal_throughput\": [");
    for (i, (name, median, per_sec)) in throughput.iter().enumerate() {
        let comma = if i + 1 < throughput.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"policy\": \"{name}\", \"chunks\": {chunks}, \
             \"median_ns\": {median}, \"chunks_per_sec\": {per_sec:.1}}}{comma}"
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"warm_vs_cold\": {{");
    let _ = writeln!(j, "    \"cold_first_invocation_ns\": {cold_median},");
    let _ = writeln!(j, "    \"warm_median_ns\": {warm_median},");
    let _ = writeln!(
        j,
        "    \"cold_over_warm\": {:.3}",
        cold_median as f64 / warm_median.max(1) as f64
    );
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");

    if let Err(e) = std::fs::write(&out, &j) {
        eprintln!("overhead: cannot write {out}: {e}");
    } else {
        eprintln!("wrote {out}");
    }
    print!("{j}");
}
