//! Probe: single-site diagnostics under the four execution shapes.
use ilan::driver::{active_cores, build_plan};
use ilan::{Decision, StealPolicy};
use ilan_numasim::{MachineParams, PlacementPlan, SimMachine};
use ilan_topology::presets;
use ilan_workloads::{Scale, ALL_WORKLOADS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let topo = presets::epyc_9354_2s();
    for w in ALL_WORKLOADS {
        if !args.is_empty() && !args.iter().any(|n| n.eq_ignore_ascii_case(w.name())) {
            continue;
        }
        let app = w.sim_app(&topo, Scale::Paper);
        println!("### {}", w.name());
        for (si, site) in app.sites.iter().enumerate() {
            let tasks = &site.tasks;
            let ideal: f64 = tasks.iter().map(|t| t.ideal_ns(22.0)).sum::<f64>() / 64.0;
            print!(
                "  site{si} {:<16} ideal64={:>8.0}us |",
                site.name,
                ideal / 1e3
            );
            let all = topo.cpuset_of_mask(topo.all_nodes());
            for (label, plan, cores) in [
                ("flat", PlacementPlan::Flat, all.clone()),
                ("static", PlacementPlan::Static, all.clone()),
            ] {
                let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
                let out = m.run_taskloop(&cores, &plan, tasks);
                print!(" {label}={:.0}us", out.makespan_ns / 1e3);
            }
            for threads in [64usize, 48, 40, 32, 24] {
                let mask = ilan::nodemask::select_mask(&topo, None, threads);
                let d = Decision::Hierarchical {
                    threads,
                    mask,
                    steal: StealPolicy::Full,
                    strict_fraction: 0.5,
                };
                let cores = active_cores(&topo, mask, threads);
                let plan = build_plan(&d, tasks.len());
                let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
                let out = m.run_taskloop(&cores, &plan, tasks);
                print!(" h{threads}={:.0}us", out.makespan_ns / 1e3);
            }
            println!();
        }
    }
}
