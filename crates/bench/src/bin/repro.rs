//! `repro` — regenerate the ILAN paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ilan-bench --bin repro -- all
//! cargo run --release -p ilan-bench --bin repro -- fig2 --runs 30
//! cargo run --release -p ilan-bench --bin repro -- table1 --quick --out results/
//! ```
//!
//! Artifacts: `fig2` (speedup), `fig3` (thread counts), `fig4`
//! (no-moldability ablation), `fig5` (scheduling overhead), `fig6`
//! (work-sharing comparison), `table1` (variance), `colo` (multi-tenant
//! co-scheduling: one job stream under three sharing policies), `chaos`
//! (fault-injection conformance: the seeded chaos sweep, the native-vs-sim
//! differential placement oracle, and a faulty serving run), `metrics`
//! (observability overhead: metrics-on vs metrics-off dispatch latency plus
//! the flight-recorder smoke, written to `BENCH_metrics_overhead.json`),
//! `all`.
//!
//! Options: `--runs N` (default 30, the paper's repetition count),
//! `--quick` (scaled-down workloads for a fast smoke pass),
//! `--out DIR` (also write CSVs), `--topology zen4|rome|xeon` or a spec
//! like `2x4x8:ccd=4` (see `ilan_topology::parse_spec`). The `colo`
//! artifact additionally takes `--jobs N` (stream length, default 16) and
//! `--seed S` (stream + machine seed, default 1).

use ilan_bench::{collect, figures, Scheduler, ALL_SCHEDULERS};
use ilan_topology::{presets, Topology};
use ilan_workloads::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    artifact: String,
    runs: usize,
    scale: Scale,
    out: Option<PathBuf>,
    topology: Topology,
    jobs: usize,
    seed: u64,
}

fn usage() -> &'static str {
    "usage: repro <fig2|fig3|fig4|fig5|fig6|table1|sites|converge|bandwidth|colo|trace|chaos|metrics|all> \
     [--runs N] [--quick] [--out DIR] [--topology zen4|rome|xeon|SxNxC[:ccd=K]] \
     [--jobs N] [--seed S]"
}

fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let artifact = argv.next().ok_or_else(|| usage().to_string())?;
    let mut args = Args {
        artifact,
        runs: 30,
        scale: Scale::Paper,
        out: None,
        topology: presets::epyc_9354_2s(),
        jobs: 16,
        seed: 1,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--runs" => {
                let v = argv.next().ok_or("--runs needs a value")?;
                args.runs = v.parse().map_err(|_| format!("bad --runs value {v}"))?;
                if args.runs == 0 {
                    return Err("--runs must be positive".into());
                }
            }
            "--quick" => args.scale = Scale::Quick,
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                args.out = Some(PathBuf::from(v));
            }
            "--topology" => {
                let v = argv.next().ok_or("--topology needs a name")?;
                args.topology = match v.as_str() {
                    "zen4" => presets::epyc_9354_2s(),
                    "rome" => presets::epyc_7742_1s_nps4(),
                    "xeon" => presets::xeon_8280_2s(),
                    spec => ilan_topology::parse_spec(spec)
                        .map_err(|e| format!("bad topology `{spec}`: {e}"))?,
                };
            }
            "--jobs" => {
                let v = argv.next().ok_or("--jobs needs a value")?;
                args.jobs = v.parse().map_err(|_| format!("bad --jobs value {v}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be positive".into());
                }
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let valid = [
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "table1",
        "sites",
        "converge",
        "bandwidth",
        "colo",
        "trace",
        "chaos",
        "metrics",
        "all",
    ];
    if !valid.contains(&args.artifact.as_str()) {
        eprintln!("unknown artifact {}\n{}", args.artifact, usage());
        return ExitCode::FAILURE;
    }

    if args.artifact == "sites" {
        // Per-site settled configurations need no collection pass.
        println!("{}", figures::fig3_details(&args.topology, args.scale));
        return ExitCode::SUCCESS;
    }
    if args.artifact == "converge" {
        println!("{}", figures::converge(&args.topology, args.scale));
        return ExitCode::SUCCESS;
    }
    if args.artifact == "trace" {
        // Fully traced CG run: per-invocation audits, steal matrix, and
        // (with --out) the Chrome-trace JSON for chrome://tracing.
        print!(
            "{}",
            figures::trace_artifact(&args.topology, args.scale, args.seed, args.out.as_deref())
        );
        return ExitCode::SUCCESS;
    }
    if args.artifact == "chaos" {
        // Fault-injection conformance: runs on the tiny functional topology
        // regardless of --topology (chaos plans target the native pool).
        // --runs controls the number of seeded plans; --seed the base seed.
        let plans = if args.scale == Scale::Quick {
            8
        } else {
            args.runs.max(8)
        };
        let summary = ilan_bench::run_chaos(&ilan_bench::ChaosConfig::new(args.seed, plans));
        println!("{summary}");
        println!();
        println!("differential placement oracle (native pool vs colocation simulator):");
        for s in args.seed..args.seed + 4 {
            println!("  seed={s}: {}", ilan_bench::differential_placement(s));
        }
        println!();
        println!("{}", ilan_bench::run_server_chaos(args.seed));
        if let Some(dir) = &args.out {
            std::fs::create_dir_all(dir).expect("create --out dir");
            let path = dir.join("chaos.txt");
            std::fs::write(&path, format!("{summary}\n")).expect("write chaos summary");
            eprintln!("wrote {}", path.display());
        }
        return ExitCode::SUCCESS;
    }
    if args.artifact == "metrics" {
        // Observability overhead: metrics-on vs metrics-off dispatch latency
        // on the 64-worker preset, plus the flight-recorder smoke. Always a
        // measurement on the paper preset, regardless of --topology. Writes
        // BENCH_metrics_overhead.json (under --out when given).
        let report = ilan_bench::metrics_overhead(args.scale == Scale::Quick);
        print!(
            "{}",
            report.publish(args.scale == Scale::Quick, args.out.as_deref())
        );
        return ExitCode::SUCCESS;
    }
    if args.artifact == "colo" {
        // Multi-tenant co-scheduling: one seeded job stream, three sharing
        // policies, served by ilan-server on the colocation simulator.
        let mut experiment = ilan_server::ColoExperiment::new(&args.topology, args.jobs, args.seed);
        experiment.scale = args.scale;
        print!("{}", ilan_server::compare_policies(&experiment));
        return ExitCode::SUCCESS;
    }

    // Which schedulers does the requested artifact need?
    let schedulers: Vec<Scheduler> = match args.artifact.as_str() {
        "fig2" | "table1" | "fig5" | "bandwidth" => {
            vec![Scheduler::Baseline, Scheduler::Ilan]
        }
        "fig3" => vec![Scheduler::Baseline, Scheduler::Ilan],
        "fig4" => vec![Scheduler::Baseline, Scheduler::Ilan, Scheduler::IlanNoMold],
        "fig6" => vec![Scheduler::Baseline, Scheduler::Ilan, Scheduler::WorkSharing],
        _ => ALL_SCHEDULERS.to_vec(),
    };

    eprintln!(
        "machine: {} | runs: {} | scale: {:?}",
        args.topology.summary(),
        args.runs,
        args.scale
    );
    let started = std::time::Instant::now();
    let c = collect(&args.topology, &schedulers, args.scale, args.runs);
    eprintln!("collection took {:.1}s", started.elapsed().as_secs_f64());

    let out = args.out.as_deref();
    let render = |name: &str| match name {
        "fig2" => figures::fig2(&c, out),
        "fig3" => figures::fig3(&c, out),
        "fig4" => figures::fig4(&c, out),
        "fig5" => figures::fig5(&c, out),
        "fig6" => figures::fig6(&c, out),
        "table1" => figures::table1(&c, out),
        "bandwidth" => figures::bandwidth(&c, out),
        _ => unreachable!(),
    };

    if args.artifact == "all" {
        for name in [
            "fig2",
            "fig3",
            "fig4",
            "table1",
            "fig5",
            "fig6",
            "bandwidth",
        ] {
            println!("{}", render(name));
        }
    } else {
        println!("{}", render(&args.artifact));
    }
    ExitCode::SUCCESS
}
