//! `stress` — randomized stress-audit soak for the native runtime.
//!
//! Draws seeded random taskloop shapes, executes each traced, and replays
//! the event logs through the `ilan-trace` auditor. Prints the
//! seed-deterministic summary and exits non-zero on any invariant
//! violation.
//!
//! ```text
//! cargo run --release -p ilan-bench --bin stress -- --seed 42 --iters 50
//! ```

use ilan_bench::stress::{run_stress, StressConfig};

fn usage() -> ! {
    eprintln!("usage: stress [--seed N] [--iters N]");
    std::process::exit(2);
}

fn main() {
    let mut seed = 42u64;
    let mut iters = 50usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => usage(),
            },
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => usage(),
            },
            _ => usage(),
        }
    }
    let summary = run_stress(&StressConfig::new(seed, iters));
    println!("{summary}");
    if !summary.ok() {
        std::process::exit(1);
    }
}
