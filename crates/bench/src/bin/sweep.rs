//! `sweep` — scheduler-response diagnostics and ablation sweeps.
//!
//! For each benchmark, prints the per-run wall time under:
//! * the four schedulers of the paper (baseline / ILAN / no-mold / static),
//! * fixed hierarchical configurations across the thread-count range
//!   (8, 16, …, 64 threads, strict policy) — the response curve the
//!   moldability search navigates.
//!
//! This is the tool used to calibrate the simulator profiles (DESIGN.md) and
//! doubles as the granularity/threads ablation for the extended evaluation.
//!
//! ```text
//! cargo run --release -p ilan-bench --bin sweep -- [--quick] [bench ...]
//! ```

use ilan::{Decision, FixedPolicy, StealPolicy};
use ilan_numasim::{MachineParams, SimMachine};
use ilan_topology::presets;
use ilan_workloads::{Scale, Workload, ALL_WORKLOADS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();

    let topo = presets::epyc_9354_2s();
    let workloads: Vec<Workload> = ALL_WORKLOADS
        .into_iter()
        .filter(|w| names.is_empty() || names.iter().any(|n| n.eq_ignore_ascii_case(w.name())))
        .collect();

    for w in workloads {
        let app = w.sim_app(&topo, scale);
        println!(
            "### {} ({} sites, {} steps)",
            w.name(),
            app.sites.len(),
            app.steps
        );

        for s in ilan_bench::ALL_SCHEDULERS {
            let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
            let mut policy = s.make_policy(&topo);
            let stats = app.run(&mut machine, policy.as_mut());
            println!(
                "  {:<12} wall {:>8.4}s  ovh {:>7.4}s  thr {:>5.1}  loc {:>5.2}  migr {}",
                s.name(),
                stats.wall_time_ns() * 1e-9,
                stats.total_overhead_ns * 1e-9,
                stats.weighted_avg_threads(),
                stats.weighted_avg_locality(),
                stats.migrations,
            );
        }

        // Fixed-thread response curve (strict hierarchical).
        print!("  response: ");
        for threads in [8usize, 16, 24, 32, 40, 48, 56, 64] {
            let mask = ilan::nodemask::select_mask(&topo, None, threads);
            let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
            let mut policy = FixedPolicy::new(Decision::Hierarchical {
                threads,
                mask,
                steal: StealPolicy::Strict,
                strict_fraction: 1.0,
            });
            let stats = app.run(&mut machine, &mut policy);
            print!("{}t={:.4}s ", threads, stats.wall_time_ns() * 1e-9);
        }
        println!("\n");
    }
}
