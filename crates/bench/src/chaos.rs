//! Chaos conformance suite: the scheduler's invariants under injected
//! faults, across all three substrates.
//!
//! Three instruments, all seed-deterministic:
//!
//! * [`run_chaos`] — the native-runtime sweep: one [`FaultPlan`] per seeded
//!   round (worker stalls — including permanent ones rescued by the pool
//!   watchdog — slow nodes, dropped wakeups, steal refusals), each executed
//!   traced across the execution modes, then held to the *full* invariant
//!   set: every iteration runs exactly once, the event log passes the
//!   `ilan-trace` auditor (including the degradation bookkeeping rules),
//!   and the chunk→node assignment fingerprint matches the fault-free
//!   placement — faults may slow the loop, never move its placement.
//! * [`differential_placement`] — the cross-substrate oracle: the native
//!   pool and the [`ColoMachine`] execute the same strict hierarchical
//!   placement under the *same* [`FaultConfig::sim_safe`] plan; both must
//!   report identical chunk→node placements and full coverage.
//! * [`run_server_chaos`] — the serving path under a plan with loop
//!   failures, PTT corruption, bursts and admission shedding; returns the
//!   deterministic degradation report line.
//!
//! Like [`StressSummary`](crate::stress::StressSummary), a
//! [`ChaosSummary`] records only seed-determined facts (shapes, plan
//! descriptions, audit verdicts, fingerprints) — never wall-clock
//! quantities or schedule-dependent counters — so the same seed renders
//! byte-identical text. The `repro -- chaos` artifact prints it and the
//! other two instruments.

use crate::stress::{assignment_fingerprint, audit_invocation};
use ilan_faults::{FaultConfig, FaultPlan};
use ilan_numasim::{ColoMachine, Locality, MachineParams, NodeAssignment, PlacementPlan, TaskSpec};
use ilan_runtime::trace::{EventKind, EventLog};
use ilan_runtime::{ChunkAssignment, ExecMode, PinMode, PoolConfig, StealPolicy, ThreadPool};
use ilan_server::{
    generate_stream, run_colocation_faulty, ServerConfig, SharingPolicy, StreamParams,
};
use ilan_topology::{presets, NodeMask};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Configuration of one chaos sweep.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Base seed; round `i` draws its fault plan from `seed + i`.
    pub seed: u64,
    /// Number of seeded fault plans to sweep.
    pub plans: usize,
}

impl ChaosConfig {
    /// A sweep of `plans` rounds from `seed`.
    pub fn new(seed: u64, plans: usize) -> Self {
        ChaosConfig { seed, plans }
    }
}

/// One chaos round: the plan, the drawn shape, and every verdict.
pub struct ChaosRound {
    /// The fault plan's deterministic description.
    pub plan: String,
    /// The executed shape line (mode, length, fingerprint).
    pub shape: String,
    /// Chunks the invocations executed.
    pub chunks: usize,
    /// Invariant violations (empty on a clean round).
    pub violations: Vec<String>,
}

/// Deterministic summary of a chaos sweep (see module docs).
pub struct ChaosSummary {
    /// The sweep's configuration.
    pub config: ChaosConfig,
    /// Per-round outcomes, in order.
    pub rounds: Vec<ChaosRound>,
}

impl ChaosSummary {
    /// Total violations across all rounds.
    pub fn violations(&self) -> usize {
        self.rounds.iter().map(|r| r.violations.len()).sum()
    }

    /// Whether every round held every invariant.
    pub fn ok(&self) -> bool {
        self.violations() == 0
    }
}

impl fmt::Display for ChaosSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos seed={} plans={}",
            self.config.seed, self.config.plans
        )?;
        for (i, r) in self.rounds.iter().enumerate() {
            let verdict = if r.violations.is_empty() {
                "ok".to_string()
            } else {
                format!("FAIL({})", r.violations.len())
            };
            writeln!(f, "  [{i:03}] {}", r.plan)?;
            writeln!(
                f,
                "        {} chunks={} verdict={verdict}",
                r.shape, r.chunks
            )?;
            for v in &r.violations {
                writeln!(f, "        ! {v}")?;
            }
        }
        write!(
            f,
            "total: {} rounds, {} violations",
            self.rounds.len(),
            self.violations()
        )
    }
}

/// The chaos fault envelope: every native fault class, with stalls capped
/// low enough that a 64-plan sweep stays inside a test budget.
fn chaos_config() -> FaultConfig {
    FaultConfig {
        max_stall_ns: 200_000,
        ..FaultConfig::chaos()
    }
}

/// Sweeps `config.plans` seeded fault plans over the native runtime and
/// checks the full invariant set per round (see module docs).
pub fn run_chaos(config: &ChaosConfig) -> ChaosSummary {
    let topo = presets::tiny_2x4();
    let workers = topo.num_cores() as u32;
    let nodes = topo.num_nodes() as u32;
    let mut rounds = Vec::with_capacity(config.plans);

    for i in 0..config.plans {
        let plan_seed = config.seed.wrapping_add(i as u64);
        let plan = FaultPlan::new(plan_seed, workers, nodes, chaos_config());
        // Derive the shape from the plan seed, not an RNG stream, so a
        // round's line depends only on its own seed.
        let len = 120 + (plan_seed % 7) as usize * 40;
        let grain = 3;
        let num_chunks = len.div_ceil(grain);
        let strict_fraction = [0.0, 0.5, 1.0][(plan_seed % 3) as usize];
        let policy = if plan_seed.is_multiple_of(2) {
            StealPolicy::Strict
        } else {
            StealPolicy::Full
        };
        let (mode, shape) = match plan_seed % 4 {
            0 => (ExecMode::Flat, format!("flat len={len} grain={grain}")),
            1 => (
                ExecMode::WorkSharing,
                format!("worksharing len={len} grain={grain}"),
            ),
            _ => (
                ExecMode::Hierarchical {
                    mask: topo.all_nodes(),
                    threads: 0,
                    strict_fraction,
                    policy,
                },
                format!("hier strict={strict_fraction} policy={policy:?} len={len} grain={grain}"),
            ),
        };

        // A tight watchdog keeps permanently-stalled rounds fast; every
        // plan arms it (plans without permanent stalls must stay quiet).
        let pool = ThreadPool::new(
            PoolConfig::new(topo.clone())
                .pin(PinMode::Never)
                .faults(plan.clone())
                .watchdog(Duration::from_millis(5)),
        )
        .expect("pool");

        let mut violations = Vec::new();
        let mut chunks = 0usize;
        let mut fingerprints = Vec::new();
        // Two invocations per plan: dropped wakeups are per-invocation, and
        // a permanently stalled worker must be rescued repeatedly.
        for _ in 0..2 {
            let count = AtomicUsize::new(0);
            let (report, log) = pool.taskloop_traced(0..len, grain, mode.clone(), |r| {
                count.fetch_add(r.len(), Ordering::Relaxed);
                let mut acc = 0u64;
                for k in 0..2_000u64 {
                    acc = acc.wrapping_add(std::hint::black_box(k));
                }
                std::hint::black_box(acc);
            });
            let audit = audit_invocation(&report, &log);
            violations.extend(audit.violations);
            if count.load(Ordering::Relaxed) != len {
                violations.push(format!(
                    "coverage: {} of {len} iterations ran",
                    count.load(Ordering::Relaxed)
                ));
            }
            if report.tasks_executed() != num_chunks {
                violations.push(format!(
                    "chunk accounting: {} of {num_chunks} chunks reported",
                    report.tasks_executed()
                ));
            }
            chunks += report.tasks_executed();
            fingerprints.push(assignment_fingerprint(&log));
        }
        // Placement must ignore the faults entirely: identical across the
        // plan's invocations and identical to a fault-free pool's.
        if fingerprints.windows(2).any(|w| w[0] != w[1]) {
            violations.push("assignment fingerprint varies across invocations".into());
        }
        rounds.push(ChaosRound {
            plan: plan.describe(),
            shape: format!("{shape} assign={:#018x}", fingerprints[0]),
            chunks,
            violations,
        });
    }

    ChaosSummary {
        config: config.clone(),
        rounds,
    }
}

/// Outcome of one differential-oracle round (see [`differential_placement`]).
pub struct DifferentialOutcome {
    /// The shared plan's description.
    pub plan: String,
    /// Chunk→node placement fingerprint reported by the native pool.
    pub native_fp: u64,
    /// Chunk→node placement fingerprint reported by the simulator.
    pub sim_fp: u64,
    /// Chunks the native pool executed.
    pub native_chunks: usize,
    /// Chunks the simulator executed.
    pub sim_chunks: usize,
    /// Whether every native chunk started on its enqueued home node.
    pub native_strict: bool,
    /// Whether every simulated chunk started on its enqueued home node.
    pub sim_strict: bool,
}

impl DifferentialOutcome {
    /// Whether the two substrates agree on placement and coverage.
    pub fn agree(&self) -> bool {
        self.native_fp == self.sim_fp
            && self.native_chunks == self.sim_chunks
            && self.native_strict
            && self.sim_strict
    }
}

impl fmt::Display for DifferentialOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "native fp={:#018x} chunks={} strict={} | sim fp={:#018x} chunks={} strict={} | {}",
            self.native_fp,
            self.native_chunks,
            self.native_strict,
            self.sim_fp,
            self.sim_chunks,
            self.sim_strict,
            if self.agree() { "AGREE" } else { "DIVERGE" }
        )
    }
}

/// Every `ChunkStart` in `log` landed on the node its `ChunkEnqueue` named.
fn starts_match_homes(log: &EventLog) -> bool {
    let mut home = std::collections::HashMap::new();
    for e in log.iter() {
        if let EventKind::ChunkEnqueue { chunk, home: h, .. } = e.kind {
            home.insert(chunk, h);
        }
    }
    log.iter().all(|e| match e.kind {
        EventKind::ChunkStart { chunk } => home.get(&chunk) == Some(&e.node),
        _ => true,
    })
}

/// The cross-substrate differential oracle: executes one strict blocked
/// placement on the native pool and on the [`ColoMachine`], both under the
/// same [`FaultConfig::sim_safe`] plan drawn from `seed`, and reports
/// whether placements and coverage agree. Temporary stalls and slow nodes
/// reshuffle *when* chunks run in both substrates; under a fully strict
/// hierarchical plan neither may change *where*.
pub fn differential_placement(seed: u64) -> DifferentialOutcome {
    let topo = presets::tiny_2x4();
    let num_chunks = 96usize;
    let plan = FaultPlan::new(
        seed,
        topo.num_cores() as u32,
        topo.num_nodes() as u32,
        FaultConfig::sim_safe(),
    );

    // Native: strict hierarchical over the whole machine, grain 1, so the
    // chunk index space matches the simulator's task indices one to one.
    let pool = ThreadPool::new(
        PoolConfig::new(topo.clone())
            .pin(PinMode::Never)
            .faults(plan.clone()),
    )
    .expect("pool");
    let mode = ExecMode::Hierarchical {
        mask: topo.all_nodes(),
        threads: 0,
        strict_fraction: 1.0,
        policy: StealPolicy::Strict,
    };
    let (native_report, native_log) = pool.taskloop_traced(0..num_chunks, 1, mode, |_| {
        let mut acc = 0u64;
        for k in 0..1_000u64 {
            acc = acc.wrapping_add(std::hint::black_box(k));
        }
        std::hint::black_box(acc);
    });

    // Simulator: the same blocked assignment as an explicit fully-strict
    // hierarchical placement plan, under the same fault plan.
    let assignment = ChunkAssignment::new(topo.all_nodes(), num_chunks);
    let mut tasks: Vec<TaskSpec> = (0..num_chunks)
        .map(|_| TaskSpec {
            compute_ns: 2_000.0,
            mem_bytes: 10_000.0,
            home_node: ilan_topology::NodeId::new(0),
            locality: Locality::Chunked,
            data_mask: topo.all_nodes(),
            cache_reuse: 0.0,
            fits_l3: false,
        })
        .collect();
    let mut assignments = Vec::new();
    for (rank, node) in topo.all_nodes().iter().enumerate() {
        let idxs: Vec<usize> = assignment.chunks_of_rank(rank).collect();
        for &c in &idxs {
            tasks[c].home_node = node;
            tasks[c].data_mask = NodeMask::single(node);
        }
        let strict_count = idxs.len();
        assignments.push(NodeAssignment {
            node,
            tasks: idxs,
            strict_count,
        });
    }
    let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 7);
    colo.set_tracing(true);
    colo.set_fault_plan(plan.clone());
    let lane = colo.add_lane();
    colo.start_loop(
        lane,
        &topo.cpuset_of_mask(topo.all_nodes()),
        &PlacementPlan::Hierarchical { assignments },
        tasks,
        0.0,
    );
    let (_, sim_out) = colo
        .run_until_next_completion()
        .expect("one loop in flight");

    DifferentialOutcome {
        plan: plan.describe(),
        native_fp: assignment_fingerprint(&native_log),
        sim_fp: assignment_fingerprint(&sim_out.events),
        native_chunks: native_report.tasks_executed(),
        sim_chunks: sim_out.tasks_executed(),
        native_strict: starts_match_homes(&native_log),
        sim_strict: starts_match_homes(&sim_out.events),
    }
}

/// The serving path under chaos: loop failures, PTT corruption, a burst,
/// and a capped admission queue. Returns the deterministic report line
/// ([`ilan_server::ColoRunReport`]'s rendering prefixed with the seed).
pub fn run_server_chaos(seed: u64) -> String {
    let topo = presets::tiny_2x4();
    let cfg = ServerConfig::new(&topo, SharingPolicy::InterferenceAware);
    let stream = generate_stream(seed, &StreamParams::mixed(6, 1e6));
    let config = FaultConfig {
        max_loop_failures: 2,
        loop_failure_denom: 4,
        ptt_corruption_denom: 2,
        max_bursts: 1,
        max_burst_jobs: 2,
        shed_queue_limit: Some(3),
        ..FaultConfig::none()
    };
    let plan = FaultPlan::new(seed ^ 0x00C0_FFEE, 8, 2, config);
    let report = run_colocation_faulty(&cfg, &stream, seed, &plan);
    format!("server chaos seed={seed}: {report}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_suite_holds_invariants_across_64_plans() {
        let summary = run_chaos(&ChaosConfig::new(1, 64));
        assert!(summary.ok(), "chaos violations:\n{summary}");
        assert_eq!(summary.rounds.len(), 64);
    }

    #[test]
    fn chaos_summaries_are_byte_identical_for_a_seed() {
        let a = run_chaos(&ChaosConfig::new(7, 8)).to_string();
        let b = run_chaos(&ChaosConfig::new(7, 8)).to_string();
        assert_eq!(a, b, "same seed must render byte-identical summaries");
        let c = run_chaos(&ChaosConfig::new(8, 8)).to_string();
        assert_ne!(a, c, "different seeds should draw different plans");
    }

    #[test]
    fn differential_oracle_agrees_across_seeds() {
        for seed in 0..8u64 {
            let out = differential_placement(seed);
            assert!(out.agree(), "substrates diverged at seed {seed}: {out}");
        }
    }

    #[test]
    fn server_chaos_line_is_deterministic_and_degrades() {
        let a = run_server_chaos(3);
        let b = run_server_chaos(3);
        assert_eq!(a, b);
        // The chosen config injects failures with denom 4 across 6+ jobs of
        // several invocations each; at least one degradation must register.
        assert!(
            !a.contains("retries=0") || !a.contains("corrupted-saves=0"),
            "chaos run absorbed no faults: {a}"
        );
    }
}
