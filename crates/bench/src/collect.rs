//! Running the benchmark × scheduler × seed matrix.

use ilan::{BaselinePolicy, IlanParams, IlanScheduler, Policy, RunStats, WorkSharingPolicy};
use ilan_numasim::{MachineParams, SimMachine};
use ilan_topology::Topology;
use ilan_workloads::{Scale, Workload, ALL_WORKLOADS};
use std::collections::HashMap;

/// The schedulers compared in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheduler {
    /// Default LLVM-style flat tasking (the paper's baseline).
    Baseline,
    /// Full ILAN: hierarchical distribution + moldability + steal trial.
    Ilan,
    /// ILAN without moldability (Figure 4 ablation).
    IlanNoMold,
    /// OpenMP static work-sharing (Figure 6 comparison).
    WorkSharing,
}

/// All four schedulers in presentation order.
pub const ALL_SCHEDULERS: [Scheduler; 4] = [
    Scheduler::Baseline,
    Scheduler::Ilan,
    Scheduler::IlanNoMold,
    Scheduler::WorkSharing,
];

impl Scheduler {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Baseline => "baseline",
            Scheduler::Ilan => "ilan",
            Scheduler::IlanNoMold => "ilan-nomold",
            Scheduler::WorkSharing => "worksharing",
        }
    }

    /// Instantiates the policy for a topology.
    pub fn make_policy(self, topology: &Topology) -> Box<dyn Policy> {
        match self {
            Scheduler::Baseline => Box::new(BaselinePolicy),
            Scheduler::Ilan => Box::new(IlanScheduler::new(IlanParams::for_topology(topology))),
            Scheduler::IlanNoMold => {
                Box::new(IlanScheduler::new(IlanParams::no_moldability(topology)))
            }
            Scheduler::WorkSharing => Box::new(WorkSharingPolicy),
        }
    }
}

/// Outcome of one complete application run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total wall time (taskloops + serial), seconds.
    pub wall_s: f64,
    /// Accumulated scheduling overhead, seconds.
    pub overhead_s: f64,
    /// Time-weighted average thread count.
    pub weighted_threads: f64,
    /// Time-weighted average locality fraction.
    pub locality: f64,
    /// Total inter-node migrations.
    pub migrations: u64,
    /// Average delivered DRAM bandwidth over taskloop time, bytes/ns (GB/s).
    pub bandwidth_gbps: f64,
}

impl RunResult {
    fn from_stats(stats: &RunStats) -> RunResult {
        RunResult {
            wall_s: stats.wall_time_ns() * 1e-9,
            overhead_s: stats.total_overhead_ns * 1e-9,
            weighted_threads: stats.weighted_avg_threads(),
            locality: stats.weighted_avg_locality(),
            migrations: stats.migrations,
            bandwidth_gbps: stats.avg_bandwidth(),
        }
    }
}

/// Executes one run: one workload, one scheduler, one machine seed.
pub fn run_once(
    workload: Workload,
    scheduler: Scheduler,
    topology: &Topology,
    scale: Scale,
    seed: u64,
) -> RunResult {
    let app = workload.sim_app(topology, scale);
    let mut machine = SimMachine::new(MachineParams::for_topology(topology), seed);
    let mut policy = scheduler.make_policy(topology);
    let stats = app.run(&mut machine, policy.as_mut());
    RunResult::from_stats(&stats)
}

/// All runs of the evaluation matrix.
pub struct Collection {
    /// Results per (workload, scheduler), one entry per seed, same order.
    pub runs: HashMap<(Workload, Scheduler), Vec<RunResult>>,
    /// Number of seeds per cell.
    pub num_runs: usize,
    /// Workloads included, in presentation order.
    pub workloads: Vec<Workload>,
    /// Core count of the collected machine (64 on the paper's platform).
    pub machine_cores: usize,
}

impl Collection {
    /// The runs for one cell (panics if the cell was not collected — a
    /// harness bug).
    pub fn cell(&self, w: Workload, s: Scheduler) -> &[RunResult] {
        &self.runs[&(w, s)]
    }

    /// Wall-time samples of one cell, seconds.
    pub fn wall_times(&self, w: Workload, s: Scheduler) -> Vec<f64> {
        self.cell(w, s).iter().map(|r| r.wall_s).collect()
    }

    /// Mean wall time of one cell, seconds.
    pub fn mean_wall(&self, w: Workload, s: Scheduler) -> f64 {
        let t = self.wall_times(w, s);
        t.iter().sum::<f64>() / t.len() as f64
    }

    /// Normalized speedup of `s` over the baseline for workload `w`
    /// (>1 = faster than baseline), as plotted in Figures 2/4/6.
    pub fn speedup(&self, w: Workload, s: Scheduler) -> f64 {
        self.mean_wall(w, Scheduler::Baseline) / self.mean_wall(w, s)
    }
}

/// One seeded run reduced to its *simulated* duration — the measurement the
/// Criterion benches report (`iter_custom`), so `cargo bench` prints the
/// paper's quantity (simulated wall time) with statistics across seeds.
///
/// `max_steps` truncates the application so a bench sample stays cheap.
pub fn simulated_duration(
    workload: Workload,
    scheduler: Scheduler,
    topology: &Topology,
    scale: Scale,
    max_steps: usize,
    seed: u64,
) -> std::time::Duration {
    let mut app = workload.sim_app(topology, scale);
    app.steps = app.steps.min(max_steps);
    let mut machine = SimMachine::new(MachineParams::for_topology(topology), seed);
    let mut policy = scheduler.make_policy(topology);
    let stats = app.run(&mut machine, policy.as_mut());
    std::time::Duration::from_nanos(stats.wall_time_ns() as u64)
}

/// Runs the full matrix: every workload × the given schedulers × `num_runs`
/// seeds. Progress goes to stderr (this is minutes of work at paper scale).
pub fn collect(
    topology: &Topology,
    schedulers: &[Scheduler],
    scale: Scale,
    num_runs: usize,
) -> Collection {
    let mut runs = HashMap::new();
    for &w in ALL_WORKLOADS.iter() {
        for &s in schedulers {
            let mut cell = Vec::with_capacity(num_runs);
            for seed in 0..num_runs as u64 {
                cell.push(run_once(w, s, topology, scale, 0x11A4 + seed));
            }
            eprintln!(
                "  collected {:>7} / {:<12} {} runs, mean {:.3}s",
                w.name(),
                s.name(),
                num_runs,
                cell.iter().map(|r| r.wall_s).sum::<f64>() / num_runs as f64
            );
            runs.insert((w, s), cell);
        }
    }
    Collection {
        runs,
        num_runs,
        workloads: ALL_WORKLOADS.to_vec(),
        machine_cores: topology.num_cores(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_topology::presets;

    #[test]
    fn run_once_is_deterministic_per_seed() {
        let topo = presets::epyc_9354_2s();
        let a = run_once(
            Workload::Matmul,
            Scheduler::Baseline,
            &topo,
            Scale::Quick,
            3,
        );
        let b = run_once(
            Workload::Matmul,
            Scheduler::Baseline,
            &topo,
            Scale::Quick,
            3,
        );
        assert_eq!(a.wall_s, b.wall_s);
        let c = run_once(
            Workload::Matmul,
            Scheduler::Baseline,
            &topo,
            Scale::Quick,
            4,
        );
        assert_ne!(a.wall_s, c.wall_s);
    }

    #[test]
    fn scheduler_policies_have_expected_names() {
        let topo = presets::tiny_2x4();
        for s in ALL_SCHEDULERS {
            let p = s.make_policy(&topo);
            assert!(!p.name().is_empty());
        }
        assert_eq!(Scheduler::Ilan.make_policy(&topo).name(), "ilan");
        assert_eq!(
            Scheduler::IlanNoMold.make_policy(&topo).name(),
            "ilan-nomold"
        );
    }
}
