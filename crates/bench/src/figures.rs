//! Regeneration of every table and figure of the paper's evaluation.
//!
//! Each function renders one artifact from a [`Collection`] and returns the
//! text (also saving a CSV when `out` is given). Paper reference values are
//! printed alongside so the shape comparison is immediate.

use crate::collect::{Collection, Scheduler};
use crate::format::{bar, pct, Table};
use ilan::stats::distribution;
use ilan_workloads::Workload;
use std::path::Path;

/// The paper's Figure 2 speedups (ILAN vs baseline), for the shape columns.
fn paper_fig2(w: Workload) -> &'static str {
    match w {
        Workload::Ft => "+12.3%",
        Workload::Bt => "+16.9%",
        Workload::Cg => "+8.0%",
        Workload::Lu => "~+10%",
        Workload::Sp => "+45.8%",
        Workload::Matmul => "~-2%",
        Workload::Lulesh => "~+5%",
    }
}

/// The paper's Figure 3 average thread counts.
fn paper_fig3(w: Workload) -> &'static str {
    match w {
        Workload::Cg => "25",
        Workload::Sp => "reduced",
        _ => "64",
    }
}

/// The paper's Figure 4 (no-moldability) speedups.
fn paper_fig4(w: Workload) -> &'static str {
    match w {
        Workload::Cg => "-8.6%",
        Workload::Sp => "+ (below full ILAN)",
        _ => "≈ full ILAN",
    }
}

/// The paper's Table 1 standard deviations (baseline, ILAN).
fn paper_table1(w: Workload) -> (&'static str, &'static str) {
    match w {
        Workload::Ft => ("0.0117", "0.0037"),
        Workload::Bt => ("0.0133", "0.0197"),
        Workload::Cg => ("0.0094", "0.0239"),
        Workload::Lu => ("0.0169", "0.0045"),
        Workload::Sp => ("0.0554", "0.0258"),
        Workload::Matmul => ("0.0050", "0.0158"),
        Workload::Lulesh => ("0.0065", "0.0074"),
    }
}

/// Figure 2: normalized speedup of ILAN vs the baseline, with run-to-run
/// variation over the collection's seeds.
pub fn fig2(c: &Collection, out: Option<&Path>) -> String {
    let mut t = Table::new(
        "Figure 2 — ILAN speedup over default work-stealing baseline",
        &[
            "bench",
            "baseline(s)",
            "ilan(s)",
            "speedup",
            "base ±sd",
            "ilan ±sd",
            "paper",
            "",
        ],
    );
    let mut ratios = Vec::new();
    let mut rows = Vec::new();
    for &w in &c.workloads {
        let base = distribution(&c.wall_times(w, Scheduler::Baseline));
        let ilan = distribution(&c.wall_times(w, Scheduler::Ilan));
        let speedup = base.mean / ilan.mean;
        ratios.push(speedup);
        rows.push((w, base, ilan, speedup));
    }
    let max_gain = ratios.iter().fold(0.02f64, |a, r| a.max(r - 1.0));
    for (w, base, ilan, speedup) in rows {
        t.row(vec![
            w.name().into(),
            format!("{:.4}", base.mean),
            format!("{:.4}", ilan.mean),
            pct(speedup),
            format!("{:.4}", base.stddev),
            format!("{:.4}", ilan.stddev),
            paper_fig2(w).into(),
            bar(speedup - 1.0, max_gain, 18),
        ]);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    t.row(vec![
        "average".into(),
        String::new(),
        String::new(),
        pct(avg),
        String::new(),
        String::new(),
        "+13.2%".into(),
        String::new(),
    ]);
    t.row(vec![
        "max".into(),
        String::new(),
        String::new(),
        pct(max),
        String::new(),
        String::new(),
        "+45.8%".into(),
        String::new(),
    ]);
    if let Some(dir) = out {
        t.save_csv(dir, "fig2_speedup");
    }
    t.render()
}

/// Figure 3: time-weighted average thread count selected by ILAN.
pub fn fig3(c: &Collection, out: Option<&Path>) -> String {
    let cores = c.machine_cores as f64;
    let mut t = Table::new(
        &format!(
            "Figure 3 — weighted average threads selected by ILAN (of {})",
            c.machine_cores
        ),
        &["bench", "avg threads", "paper", ""],
    );
    for &w in &c.workloads {
        let mean: f64 = c
            .cell(w, Scheduler::Ilan)
            .iter()
            .map(|r| r.weighted_threads)
            .sum::<f64>()
            / c.num_runs as f64;
        t.row(vec![
            w.name().into(),
            format!("{mean:.1}"),
            paper_fig3(w).into(),
            bar(mean, cores, 16),
        ]);
    }
    if let Some(dir) = out {
        t.save_csv(dir, "fig3_threads");
    }
    t.render()
}

/// Figure 4: the no-moldability ablation vs the baseline.
pub fn fig4(c: &Collection, out: Option<&Path>) -> String {
    let mut t = Table::new(
        "Figure 4 — ILAN without moldability vs baseline",
        &[
            "bench",
            "speedup(nomold)",
            "speedup(full ILAN)",
            "paper(nomold)",
        ],
    );
    let mut ratios = Vec::new();
    for &w in &c.workloads {
        let nomold = c.speedup(w, Scheduler::IlanNoMold);
        let full = c.speedup(w, Scheduler::Ilan);
        ratios.push(nomold);
        t.row(vec![
            w.name().into(),
            pct(nomold),
            pct(full),
            paper_fig4(w).into(),
        ]);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    t.row(vec![
        "average".into(),
        pct(avg),
        String::new(),
        "+7.9%".into(),
    ]);
    if let Some(dir) = out {
        t.save_csv(dir, "fig4_nomold");
    }
    t.render()
}

/// Table 1: standard deviation of execution time over the runs.
pub fn table1(c: &Collection, out: Option<&Path>) -> String {
    let mut t = Table::new(
        "Table 1 — std-dev of execution time (s) over runs",
        &[
            "bench",
            "baseline sd",
            "ilan sd",
            "paper base",
            "paper ilan",
        ],
    );
    for &w in &c.workloads {
        let base = distribution(&c.wall_times(w, Scheduler::Baseline));
        let ilan = distribution(&c.wall_times(w, Scheduler::Ilan));
        let (pb, pi) = paper_table1(w);
        t.row(vec![
            w.name().into(),
            format!("{:.4}", base.stddev),
            format!("{:.4}", ilan.stddev),
            pb.into(),
            pi.into(),
        ]);
    }
    if let Some(dir) = out {
        t.save_csv(dir, "table1_stddev");
    }
    t.render()
}

/// Figure 5: accumulated scheduling overhead, normalized to the baseline
/// (lower is better).
pub fn fig5(c: &Collection, out: Option<&Path>) -> String {
    let mut t = Table::new(
        "Figure 5 — accumulated scheduling overhead (normalized to baseline, lower is better)",
        &["bench", "baseline", "ilan", "paper"],
    );
    for &w in &c.workloads {
        let mean_ovh = |s: Scheduler| {
            c.cell(w, s).iter().map(|r| r.overhead_s).sum::<f64>() / c.num_runs as f64
        };
        let base = mean_ovh(Scheduler::Baseline);
        let ilan = mean_ovh(Scheduler::Ilan);
        let expect = match w {
            Workload::Cg => "ILAN much lower",
            Workload::Matmul => "ILAN higher",
            _ => "ILAN lower in 4/7",
        };
        t.row(vec![
            w.name().into(),
            "1.00".into(),
            format!("{:.2}", ilan / base),
            expect.into(),
        ]);
    }
    if let Some(dir) = out {
        t.save_csv(dir, "fig5_overhead");
    }
    t.render()
}

/// Figure 6: ILAN and static work-sharing, both normalized to the baseline.
pub fn fig6(c: &Collection, out: Option<&Path>) -> String {
    let mut t = Table::new(
        "Figure 6 — ILAN and OpenMP work-sharing vs baseline",
        &["bench", "ilan", "worksharing", "paper"],
    );
    for &w in &c.workloads {
        let expect = match w {
            Workload::Ft => "work-sharing wins",
            Workload::Cg => "ILAN wins clearly",
            _ => "ILAN ≥ work-sharing",
        };
        t.row(vec![
            w.name().into(),
            pct(c.speedup(w, Scheduler::Ilan)),
            pct(c.speedup(w, Scheduler::WorkSharing)),
            expect.into(),
        ]);
    }
    if let Some(dir) = out {
        t.save_csv(dir, "fig6_worksharing");
    }
    t.render()
}

/// Figure 3 detail: per-site settled configurations of one ILAN run per
/// benchmark (threads, node mask, steal policy) — the data behind the
/// per-benchmark averages.
pub fn fig3_details(topology: &ilan_topology::Topology, scale: ilan_workloads::Scale) -> String {
    use ilan::driver::run_sim_invocation;
    use ilan::{IlanParams, IlanScheduler, SiteId};
    use ilan_numasim::{MachineParams, SimMachine};

    let mut out = String::from("== Figure 3 detail — settled configuration per taskloop site ==\n");
    for w in ilan_workloads::ALL_WORKLOADS {
        let app = w.sim_app(topology, scale);
        let mut machine = SimMachine::new(MachineParams::for_topology(topology), 1);
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(topology));
        // Drive every site to settlement.
        for round in 0..16 {
            for (idx, site) in app.sites.iter().enumerate() {
                let id = SiteId::new(idx as u64);
                if round > 0 && ilan.settled_decision(id).is_some() {
                    continue;
                }
                run_sim_invocation(&mut machine, &mut ilan, id, &site.tasks);
            }
        }
        out.push_str(&format!("{}\n", w.name()));
        for (idx, site) in app.sites.iter().enumerate() {
            let id = SiteId::new(idx as u64);
            match ilan.settled_decision(id) {
                Some(d) => out.push_str(&format!(
                    "  {:<18} threads={:<3} steal={:<6} mask={:?}\n",
                    site.name,
                    d.threads().unwrap_or(0),
                    format!("{:?}", d.steal().unwrap()),
                    d.mask().unwrap(),
                )),
                None => out.push_str(&format!("  {:<18} (unsettled)\n", site.name)),
            }
        }
    }
    out
}

/// Extension artifact: delivered DRAM bandwidth per benchmark and
/// scheduler — the machine-level view of why moldability and locality pay
/// (measured by the simulator's PERF_COUNTERS analogue).
pub fn bandwidth(c: &Collection, out: Option<&Path>) -> String {
    let mut t = Table::new(
        "Delivered DRAM bandwidth (GB/s, machine peak 640) — higher means the \
         memory system is being used, not necessarily well",
        &[
            "bench",
            "baseline",
            "ilan",
            "locality base",
            "locality ilan",
        ],
    );
    for &w in &c.workloads {
        let mean = |s: Scheduler, f: &dyn Fn(&crate::collect::RunResult) -> f64| -> f64 {
            c.cell(w, s).iter().map(f).sum::<f64>() / c.num_runs as f64
        };
        t.row(vec![
            w.name().into(),
            format!("{:.0}", mean(Scheduler::Baseline, &|r| r.bandwidth_gbps)),
            format!("{:.0}", mean(Scheduler::Ilan, &|r| r.bandwidth_gbps)),
            format!("{:.2}", mean(Scheduler::Baseline, &|r| r.locality)),
            format!("{:.2}", mean(Scheduler::Ilan, &|r| r.locality)),
        ]);
    }
    if let Some(dir) = out {
        t.save_csv(dir, "bandwidth");
    }
    t.render()
}

/// Extension artifact: per-invocation convergence of the dominant taskloop
/// site under ILAN vs the baseline — the exploration phase's cost and the
/// settled configuration's payoff, invocation by invocation.
pub fn converge(topology: &ilan_topology::Topology, scale: ilan_workloads::Scale) -> String {
    use crate::format::bar;
    use ilan::driver::run_sim_invocation;
    use ilan::{IlanParams, IlanScheduler, Policy, SiteId};
    use ilan_numasim::{MachineParams, SimMachine};
    use ilan_workloads::Workload;

    let mut out = String::from(
        "== Convergence — per-invocation time of the dominant site (ILAN vs baseline) ==\n",
    );
    for w in [Workload::Cg, Workload::Sp] {
        let app = w.sim_app(topology, scale);
        let (idx, site) = app
            .sites
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let wa: f64 = a.tasks.iter().map(|t| t.ideal_ns(22.0)).sum();
                let wb: f64 = b.tasks.iter().map(|t| t.ideal_ns(22.0)).sum();
                wa.partial_cmp(&wb).unwrap()
            })
            .expect("sites");
        out.push_str(&format!("{} — site `{}`\n", w.name(), site.name));

        let mut base_machine = SimMachine::new(MachineParams::for_topology(topology), 9);
        let mut base: Box<dyn Policy> = Box::new(ilan::BaselinePolicy);
        let mut ilan_machine = SimMachine::new(MachineParams::for_topology(topology), 9);
        let mut ilan: Box<dyn Policy> =
            Box::new(IlanScheduler::new(IlanParams::for_topology(topology)));

        let id = SiteId::new(idx as u64);
        let mut rows = Vec::new();
        let mut max_t = 0.0f64;
        for k in 1..=12 {
            let (_, rb) = run_sim_invocation(&mut base_machine, base.as_mut(), id, &site.tasks);
            let (d, ri) = run_sim_invocation(&mut ilan_machine, ilan.as_mut(), id, &site.tasks);
            max_t = max_t.max(rb.time_ns).max(ri.time_ns);
            rows.push((k, rb.time_ns, ri.time_ns, d.threads().unwrap_or(0)));
        }
        for (k, tb, ti, threads) in rows {
            out.push_str(&format!(
                "  k={k:>2}  baseline {:>7.2}ms {:<14}  ilan({threads:>2}t) {:>7.2}ms {}\n",
                tb / 1e6,
                bar(tb, max_t, 14),
                ti / 1e6,
                bar(ti, max_t, 14),
            ));
        }
    }
    out
}

/// Extension artifact: a fully traced CG run under ILAN — every invocation's
/// scheduler event log is audited against its outcome, the merged log's
/// inter-node steal matrix is printed, and with `out` the Chrome-trace JSON
/// (`chrome://tracing` / Perfetto) is written as `trace_cg.json`.
pub fn trace_artifact(
    topology: &ilan_topology::Topology,
    scale: ilan_workloads::Scale,
    seed: u64,
    out: Option<&Path>,
) -> String {
    use ilan::driver::{active_cores, build_plan};
    use ilan::{Decision, IlanParams, IlanScheduler, Policy, SiteId, TaskloopReport};
    use ilan_numasim::trace::{audit, AuditExpect, EventLog, NodeTally};
    use ilan_numasim::{MachineParams, SimMachine};

    let app = Workload::Cg.sim_app(topology, scale);
    let mut machine = SimMachine::new(MachineParams::for_topology(topology), seed);
    let mut sched = IlanScheduler::new(IlanParams::for_topology(topology));

    let mut merged = EventLog::default();
    let mut invocations = 0usize;
    let mut clean = 0usize;
    let mut violations = Vec::new();
    for step in 0..app.steps {
        for &site_idx in &app.schedule {
            let site = SiteId::new(site_idx as u64);
            let tasks = &app.sites[site_idx].tasks;
            let decision = sched.decide(site);
            let cores = match &decision {
                Decision::Flat | Decision::WorkSharing => {
                    topology.cpuset_of_mask(topology.all_nodes())
                }
                Decision::Hierarchical { mask, threads, .. } => {
                    active_cores(topology, *mask, *threads)
                }
            };
            let plan = build_plan(&decision, tasks.len());
            let outcome = machine.run_taskloop_traced(&cores, &plan, tasks);
            let expect = AuditExpect {
                migrations: Some(outcome.migrations),
                latch_releases: Some(outcome.threads),
                per_node: Some(
                    outcome
                        .nodes
                        .iter()
                        .map(|n| NodeTally {
                            tasks: n.tasks,
                            local_tasks: None,
                        })
                        .collect(),
                ),
            };
            let report = audit(&outcome.events, &expect);
            invocations += 1;
            if report.ok() {
                clean += 1;
            } else {
                for v in &report.violations {
                    violations.push(format!("step {step} site {site_idx}: {v}"));
                }
            }
            merged.merge(&outcome.events);

            let mut tr = TaskloopReport::from(&outcome);
            let cost = sched.decision_overhead_ns();
            tr.time_ns += cost;
            tr.sched_overhead_ns += cost;
            machine.advance_serial(cost);
            sched.record(site, &decision, &tr);
        }
        machine.advance_serial(app.serial_ns);
    }

    let mut out_text = format!(
        "== Trace — CG under ILAN, every invocation audited (seed {seed}) ==\n\
         invocations: {invocations}  audited clean: {clean}  events: {}\n\
         local pops: {}  intra-node steals: {}  inter-node steals: {}\n",
        merged.len(),
        merged.local_pops(),
        merged.intra_node_steals(),
        merged.inter_node_steals(),
    );
    for v in &violations {
        out_text.push_str(&format!("  ! {v}\n"));
    }
    out_text.push_str(&merged.render_steal_matrix());
    if let Some(dir) = out {
        let path = dir.join("trace_cg.json");
        match std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&path, merged.chrome_trace_json()))
        {
            Ok(()) => out_text.push_str(&format!("chrome trace: {}\n", path.display())),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    out_text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect;
    use ilan_topology::presets;
    use ilan_workloads::Scale;

    /// A tiny end-to-end render pass over all artifacts (2 runs, quick
    /// scale) — checks plumbing, not shapes.
    #[test]
    fn all_figures_render() {
        let topo = presets::epyc_9354_2s();
        let c = collect(&topo, &crate::ALL_SCHEDULERS, Scale::Quick, 2);
        for text in [
            fig2(&c, None),
            fig3(&c, None),
            fig4(&c, None),
            fig5(&c, None),
            fig6(&c, None),
            table1(&c, None),
        ] {
            assert!(text.contains("CG"));
            assert!(text.contains("Matmul"));
            assert!(text.lines().count() >= 9);
        }
    }

    #[test]
    fn trace_artifact_audits_clean() {
        let topo = presets::epyc_9354_2s();
        let text = trace_artifact(&topo, Scale::Quick, 7, None);
        assert!(text.contains("steal matrix"), "{text}");
        assert!(!text.contains('!'), "audit violations:\n{text}");
        // Every invocation audited clean.
        let line = text.lines().nth(1).unwrap();
        let grab = |key: &str| {
            let rest = &line[line.find(key).unwrap() + key.len()..];
            rest.split_whitespace()
                .next()
                .unwrap()
                .parse::<usize>()
                .unwrap()
        };
        assert_eq!(grab("invocations:"), grab("clean:"));
        assert!(grab("events:") > 0);
    }

    #[test]
    fn converge_renders_both_series() {
        let topo = ilan_topology::presets::epyc_9354_2s();
        let text = converge(&topo, ilan_workloads::Scale::Quick);
        assert!(text.contains("CG"));
        assert!(text.contains("SP"));
        assert!(text.contains("k=12"));
    }

    #[test]
    fn fig3_details_settles_every_site() {
        let topo = ilan_topology::presets::epyc_9354_2s();
        let text = fig3_details(&topo, ilan_workloads::Scale::Quick);
        assert!(text.contains("cg/spmv"));
        assert!(text.contains("sp/z-solve"));
        assert!(
            !text.contains("unsettled"),
            "all sites must settle:\n{text}"
        );
    }
}
