//! Table and CSV formatting for the reproduction output.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table with a title, printed like the paper's rows.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(s, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(s, "  {:>w$}", c, w = widths[i]);
                }
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (no alignment, comma-separated).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV next to the printed output (best effort; IO errors are
    /// reported on stderr, not fatal — the printed table is the artifact).
    pub fn save_csv(&self, dir: &Path, name: &str) {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) =
            std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, self.to_csv()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Formats a ratio as a percentage delta: `1.132` → `+13.2%`.
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// An ASCII bar visualizing `value` against `max` in `width` columns —
/// the printed tables double as the paper's bar charts.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if !(value.is_finite() && max.is_finite()) || max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let cols = ((value / max) * width as f64).round() as usize;
    "█".repeat(cols.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["bench", "speedup"]);
        t.row(vec!["FT".into(), "1.12".into()]);
        t.row(vec!["LULESH".into(), "1.02".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("bench"));
        assert!(s.contains("LULESH"));
        // Alignment: both data rows same width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["has,comma".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1.132), "+13.2%");
        assert_eq!(pct(0.914), "-8.6%");
    }

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
        assert_eq!(bar(f64::NAN, 10.0, 10), "");
    }
}
