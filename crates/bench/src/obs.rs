//! Observability overhead measurement and flight-recorder smoke.
//!
//! `repro -- metrics` answers two questions about the always-on
//! instrumentation added with `ilan-metrics`:
//!
//! 1. **What does it cost?** Dispatch latency of a trivial-body taskloop on
//!    the paper's 64-worker EPYC preset, measured externally on two
//!    otherwise identical pools — metrics+flight on (the default) vs
//!    metrics off — plus the metrics-on pool's own `dispatch_ns` histogram
//!    median as a cross-check. The budget is 5%: medians within noise of
//!    each other on an oversubscribed CI machine.
//! 2. **Does the flight recorder work end to end?** A fault plan permanently
//!    stalls one worker on a small watchdogged pool; the run must degrade,
//!    park a dump whose ring-buffer log passes the `ilan-trace` auditor,
//!    and render a well-formed Chrome trace.
//!
//! Results are written as machine-readable JSON
//! (`BENCH_metrics_overhead.json`) and summarized as text. Like the other
//! overhead benches this is a measurement, not a gate: the JSON carries a
//! `within_budget` verdict but the exit status never fails on it.

use ilan_runtime::metrics_core::FlightReason;
use ilan_runtime::{ExecMode, Grain, LoopReport, PinMode, PoolConfig, StealPolicy, ThreadPool};
use ilan_topology::presets;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Relative dispatch-latency budget for metrics-on vs metrics-off.
pub const METRICS_OVERHEAD_BUDGET: f64 = 0.05;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// `"on"` or `"off"`.
    pub metrics: &'static str,
    /// External p10 dispatch latency, ns.
    pub p10: u64,
    /// External median dispatch latency, ns.
    pub median: u64,
    /// External p90 dispatch latency, ns.
    pub p90: u64,
}

/// Outcome of the flight-recorder smoke.
#[derive(Clone, Debug)]
pub struct FlightSmoke {
    /// The run degraded (the stall was detected by the watchdog).
    pub degraded: bool,
    /// A dump was parked.
    pub dumped: bool,
    /// The dump's event log passed the trace auditor.
    pub audit_ok: bool,
    /// The rendered Chrome trace contains a `traceEvents` array.
    pub chrome_ok: bool,
    /// Display form of the dump's trigger reason.
    pub reason: String,
}

/// Everything `repro -- metrics` reports.
#[derive(Clone, Debug)]
pub struct MetricsOverheadReport {
    /// Worker count of the measured preset.
    pub workers: usize,
    /// Repetitions per configuration.
    pub reps: usize,
    /// Measured configurations (`on` first).
    pub rows: Vec<OverheadRow>,
    /// Metrics-on pool's own dispatch histogram median (nearest-rank bucket
    /// upper bound), ns — the internal cross-check of the external timing.
    pub internal_median_ns: u64,
    /// Median of per-pair `on/off` latency ratios (each pair measured
    /// back-to-back, so common-mode machine noise divides out).
    pub ratio: f64,
    /// Whether the ratio stays within [`METRICS_OVERHEAD_BUDGET`].
    pub within_budget: bool,
    /// The flight-recorder smoke outcome.
    pub flight: FlightSmoke,
}

/// Times `reps` dispatches on each pool, *interleaved* rep by rep so the
/// two configurations see the same machine drift (frequency scaling, CI
/// neighbours). Returns `(a_samples, b_samples)`.
fn time_paired(
    a: &ThreadPool,
    b: &ThreadPool,
    len: usize,
    mode: &ExecMode,
    reps: usize,
) -> (Vec<u64>, Vec<u64>) {
    let sink = AtomicUsize::new(0);
    let body = |r: std::ops::Range<usize>| {
        sink.fetch_add(std::hint::black_box(r.len()), Ordering::Relaxed);
    };
    let mut report = LoopReport::default();
    let mut one = |pool: &ThreadPool| {
        let t = Instant::now();
        pool.taskloop_into(0..len, Grain::Size(1), mode.clone(), body, &mut report);
        t.elapsed().as_nanos() as u64
    };
    // Warm-up both pools to their arena steady state before the clock counts.
    for _ in 0..reps.div_ceil(4).max(3) {
        one(a);
        one(b);
    }
    // ABBA ordering: whichever pool runs first in a pair absorbs the colder
    // OS-scheduler state after the pause, so alternate which one that is.
    let mut sa = Vec::with_capacity(reps);
    let mut sb = Vec::with_capacity(reps);
    for rep in 0..reps {
        if rep % 2 == 0 {
            sa.push(one(a));
            sb.push(one(b));
        } else {
            sb.push(one(b));
            sa.push(one(a));
        }
    }
    (sa, sb)
}

fn percentiles(samples: &mut [u64]) -> (u64, u64, u64) {
    samples.sort_unstable();
    let pick = |p: usize| samples[(samples.len() - 1) * p / 100];
    (pick(10), pick(50), pick(90))
}

/// Runs the flight-recorder smoke on a small watchdogged pool with one
/// permanently stalled worker.
pub fn flight_smoke() -> FlightSmoke {
    use ilan_faults::{FaultConfig, FaultPlan};
    let topo = presets::tiny_2x4();
    let config = FaultConfig {
        max_worker_stalls: 1,
        permanent_stalls: true,
        max_stall_ns: 1_000_000,
        ..FaultConfig::none()
    };
    let plan = (0..10_000u64)
        .map(|seed| {
            FaultPlan::new(
                seed,
                topo.num_cores() as u32,
                topo.num_nodes() as u32,
                config,
            )
        })
        .find(|p| p.stalls().len() == 1 && p.stalls().values().next().unwrap().permanent)
        .expect("a permanently stalling plan");
    let pool = ThreadPool::new(
        PoolConfig::new(topo)
            .pin(PinMode::Never)
            .watchdog(Duration::from_millis(10))
            .faults(plan),
    )
    .expect("pool");
    let report = pool.taskloop(0..500, 5, ExecMode::Flat, |r| {
        std::hint::black_box(r.sum::<usize>());
    });
    let Some(dump) = pool.take_flight_dump() else {
        return FlightSmoke {
            degraded: report.degraded,
            dumped: false,
            audit_ok: false,
            chrome_ok: false,
            reason: String::new(),
        };
    };
    let expect = ilan_runtime::trace::AuditExpect {
        migrations: Some(report.migrations),
        latch_releases: Some(report.threads),
        per_node: Some(
            report
                .nodes
                .iter()
                .map(|n| ilan_runtime::trace::NodeTally {
                    tasks: n.tasks,
                    local_tasks: Some(n.local_tasks),
                })
                .collect(),
        ),
    };
    let audit = ilan_runtime::trace::audit(&dump.log, &expect);
    FlightSmoke {
        degraded: report.degraded,
        dumped: true,
        audit_ok: audit.ok(),
        chrome_ok: dump.chrome_json.contains("\"traceEvents\""),
        reason: match dump.reason {
            FlightReason::Degraded { stage } => format!("degraded_stage{stage}"),
            FlightReason::FaultInjected { count } => format!("fault_injected_{count}"),
            FlightReason::TailBreach { .. } => "tail_breach".to_string(),
        },
    }
}

/// Measures metrics-on vs metrics-off dispatch latency on the paper's
/// 64-worker preset and runs the flight-recorder smoke.
pub fn metrics_overhead(quick: bool) -> MetricsOverheadReport {
    let reps = if quick { 600 } else { 2_000 };
    let topo = presets::epyc_9354_2s();
    // Full-machine hierarchical mode, one single-iteration chunk per worker:
    // the pure dispatch path (arena fill + wakeup posting + per-worker
    // flush), with no steal traffic to confound it.
    let mode = ExecMode::Hierarchical {
        mask: topo.all_nodes(),
        threads: 0,
        strict_fraction: 1.0,
        policy: StealPolicy::Strict,
    };
    let len = topo.num_cores();

    let build = |metrics: bool| {
        ThreadPool::new(
            PoolConfig::new(topo.clone())
                .pin(PinMode::Never)
                .inline_threshold(0)
                .metrics(metrics),
        )
        .expect("pool")
    };
    let pool_on = build(true);
    let pool_off = build(false);
    let (mut ns_on, mut ns_off) = time_paired(&pool_on, &pool_off, len, &mode, reps);
    let internal = pool_on
        .metrics()
        .map(|m| m.dispatch_ns().snapshot().quantile(0.5));
    let row = |metrics, ns: &mut [u64]| {
        let (p10, median, p90) = percentiles(ns);
        OverheadRow {
            metrics,
            p10,
            median,
            p90,
        }
    };
    // Headline ratio: the median of per-pair ratios. Each pair ran
    // back-to-back under the same machine conditions, so common-mode noise
    // (CI neighbours, frequency steps) divides out; the median of 60+ pairs
    // is far more stable than the ratio of two independent medians.
    let mut pair_ratios: Vec<f64> = ns_on
        .iter()
        .zip(&ns_off)
        .map(|(&on, &off)| on as f64 / off.max(1) as f64)
        .collect();
    pair_ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = pair_ratios[pair_ratios.len() / 2];
    let on = row("on", &mut ns_on);
    let off = row("off", &mut ns_off);
    MetricsOverheadReport {
        workers: topo.num_cores(),
        reps,
        internal_median_ns: internal.unwrap_or(0),
        ratio,
        within_budget: ratio <= 1.0 + METRICS_OVERHEAD_BUDGET,
        rows: vec![on, off],
        flight: flight_smoke(),
    }
}

impl MetricsOverheadReport {
    /// Machine-readable JSON (the `BENCH_metrics_overhead.json` payload).
    pub fn to_json(&self, quick: bool) -> String {
        let mut j = String::new();
        let _ = writeln!(j, "{{");
        let _ = writeln!(j, "  \"bench\": \"metrics_overhead\",");
        let _ = writeln!(j, "  \"preset\": \"epyc_9354_2s\",");
        let _ = writeln!(j, "  \"workers\": {},", self.workers);
        let _ = writeln!(j, "  \"quick\": {quick},");
        let _ = writeln!(j, "  \"reps\": {},", self.reps);
        let _ = writeln!(j, "  \"dispatch_latency_ns\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "    {{\"metrics\": \"{}\", \"p10\": {}, \"median\": {}, \"p90\": {}}}{comma}",
                r.metrics, r.p10, r.median, r.p90
            );
        }
        let _ = writeln!(j, "  ],");
        let _ = writeln!(j, "  \"internal_median_ns\": {},", self.internal_median_ns);
        let _ = writeln!(j, "  \"on_over_off\": {:.3},", self.ratio);
        let _ = writeln!(j, "  \"budget\": {:.2},", 1.0 + METRICS_OVERHEAD_BUDGET);
        let _ = writeln!(j, "  \"within_budget\": {},", self.within_budget);
        let _ = writeln!(j, "  \"flight_smoke\": {{");
        let _ = writeln!(j, "    \"degraded\": {},", self.flight.degraded);
        let _ = writeln!(j, "    \"dumped\": {},", self.flight.dumped);
        let _ = writeln!(j, "    \"audit_ok\": {},", self.flight.audit_ok);
        let _ = writeln!(j, "    \"chrome_ok\": {},", self.flight.chrome_ok);
        let _ = writeln!(j, "    \"reason\": \"{}\"", self.flight.reason);
        let _ = writeln!(j, "  }}");
        let _ = writeln!(j, "}}");
        j
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "metrics overhead ({} workers, {} reps per configuration):",
            self.workers, self.reps
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "  metrics={:<3} dispatch p10={} median={} p90={} ns",
                r.metrics, r.p10, r.median, r.p90
            );
        }
        let _ = writeln!(
            out,
            "  on/off median ratio {:.3} (budget {:.2}) -> {}",
            self.ratio,
            1.0 + METRICS_OVERHEAD_BUDGET,
            if self.within_budget {
                "within budget"
            } else {
                "OVER budget (noisy machines exceed this; see the JSON)"
            }
        );
        let _ = writeln!(
            out,
            "  internal dispatch_ns median (bucket upper bound): {} ns",
            self.internal_median_ns
        );
        let f = &self.flight;
        let _ = writeln!(
            out,
            "flight-recorder smoke: degraded={} dumped={} audit_ok={} chrome_ok={} reason={}",
            f.degraded, f.dumped, f.audit_ok, f.chrome_ok, f.reason
        );
        out
    }

    /// Writes the JSON next to `dir` (or the working directory when absent)
    /// and returns the rendered summary.
    pub fn publish(&self, quick: bool, dir: Option<&Path>) -> String {
        let path = match dir {
            Some(d) => {
                let _ = std::fs::create_dir_all(d);
                d.join("BENCH_metrics_overhead.json")
            }
            None => Path::new("BENCH_metrics_overhead.json").to_path_buf(),
        };
        match std::fs::write(&path, self.to_json(quick)) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("metrics_overhead: cannot write {}: {e}", path.display()),
        }
        self.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_smoke_passes_end_to_end() {
        let smoke = flight_smoke();
        assert!(smoke.degraded, "the stall must degrade the run");
        assert!(smoke.dumped, "an anomaly must park a dump");
        assert!(smoke.audit_ok, "the dump must audit clean");
        assert!(smoke.chrome_ok, "the dump must render a Chrome trace");
        assert!(smoke.reason.starts_with("degraded_stage"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        // A tiny deterministic report (no timing run in unit tests).
        let report = MetricsOverheadReport {
            workers: 64,
            reps: 2,
            rows: vec![
                OverheadRow {
                    metrics: "on",
                    p10: 1,
                    median: 2,
                    p90: 3,
                },
                OverheadRow {
                    metrics: "off",
                    p10: 1,
                    median: 2,
                    p90: 3,
                },
            ],
            internal_median_ns: 2,
            ratio: 1.0,
            within_budget: true,
            flight: FlightSmoke {
                degraded: true,
                dumped: true,
                audit_ok: true,
                chrome_ok: true,
                reason: "degraded_stage1".into(),
            },
        };
        let j = report.to_json(true);
        assert!(j.contains("\"bench\": \"metrics_overhead\""));
        assert!(j.contains("\"within_budget\": true"));
        assert!(j.contains("\"reason\": \"degraded_stage1\""));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces in:\n{j}"
        );
        assert!(report.render().contains("within budget"));
    }
}
