//! Randomized stress-audit harness for the native runtime.
//!
//! Each iteration draws a taskloop shape from a seeded RNG — ragged range
//! lengths, skewed body weights, every execution mode, every steal policy
//! and strict fraction, and (halfway through the run) a mid-run topology
//! restriction to a single node — executes it traced on a shared
//! [`ThreadPool`], and replays the event log through the `ilan-trace`
//! auditor against the invocation's [`LoopReport`].
//!
//! The summary is **deterministic for a given seed**: it records only the
//! drawn shapes and the audit verdicts, never wall-clock quantities or
//! schedule-dependent counters (which worker stole what varies run to run;
//! whether the log is *consistent* does not). The `stress` binary prints it
//! and exits non-zero on any violation; a test byte-compares two runs.

use ilan_runtime::trace::{audit, AuditExpect, AuditReport, EventKind, EventLog, NodeTally};
use ilan_runtime::{ExecMode, LoopReport, PinMode, PoolConfig, StealPolicy, ThreadPool};
use ilan_topology::{presets, NodeMask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration for one stress run.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// RNG seed; fixes every drawn shape.
    pub seed: u64,
    /// Number of randomized taskloop iterations.
    pub iters: usize,
}

impl StressConfig {
    /// A stress run with `iters` iterations from `seed`.
    pub fn new(seed: u64, iters: usize) -> Self {
        StressConfig { seed, iters }
    }
}

/// One iteration's drawn shape and audit verdict.
pub struct IterOutcome {
    /// The shape line (deterministic for the seed).
    pub shape: String,
    /// Chunks the invocation executed.
    pub chunks: usize,
    /// Audit violations (empty on a clean iteration).
    pub violations: Vec<String>,
}

/// Deterministic summary of a whole stress run (see module docs).
pub struct StressSummary {
    /// The run's configuration.
    pub config: StressConfig,
    /// Per-iteration outcomes, in order.
    pub iterations: Vec<IterOutcome>,
}

impl StressSummary {
    /// Total audit violations across all iterations.
    pub fn violations(&self) -> usize {
        self.iterations.iter().map(|i| i.violations.len()).sum()
    }

    /// Total chunks executed across all iterations.
    pub fn chunks(&self) -> usize {
        self.iterations.iter().map(|i| i.chunks).sum()
    }

    /// Whether every iteration audited clean.
    pub fn ok(&self) -> bool {
        self.violations() == 0
    }
}

impl fmt::Display for StressSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stress seed={} iters={}",
            self.config.seed, self.config.iters
        )?;
        for (i, it) in self.iterations.iter().enumerate() {
            let verdict = if it.violations.is_empty() {
                "ok".to_string()
            } else {
                format!("FAIL({})", it.violations.len())
            };
            writeln!(
                f,
                "  [{i:03}] {} chunks={} audit={verdict}",
                it.shape, it.chunks
            )?;
            for v in &it.violations {
                writeln!(f, "        ! {v}")?;
            }
        }
        write!(
            f,
            "total: {} chunks, {} violations",
            self.chunks(),
            self.violations()
        )
    }
}

/// The audit expectations implied by a [`LoopReport`].
pub fn expect_from(report: &LoopReport) -> AuditExpect {
    AuditExpect {
        migrations: Some(report.migrations),
        latch_releases: Some(report.threads),
        per_node: Some(
            report
                .nodes
                .iter()
                .map(|n| NodeTally {
                    tasks: n.tasks,
                    local_tasks: Some(n.local_tasks),
                })
                .collect(),
        ),
    }
}

/// Audits a traced native invocation against its report.
pub fn audit_invocation(report: &LoopReport, log: &EventLog) -> AuditReport {
    audit(log, &expect_from(report))
}

/// FNV-1a fingerprint of an invocation's chunk→node assignment, taken from
/// the dispatcher's `ChunkEnqueue` events (chunk index, home node, strict
/// flag, in chunk order). The assignment is a pure function of the loop
/// shape — §3.3's deterministic blocked mapping — so the fingerprint must be
/// identical across runs, schedules, wake modes and refactors; only the
/// *placement policy itself* changing may move it.
pub fn assignment_fingerprint(log: &EventLog) -> u64 {
    let mut placed: Vec<(u32, u32, bool)> = log
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::ChunkEnqueue {
                chunk,
                home,
                strict,
            } => Some((chunk, home, strict)),
            _ => None,
        })
        .collect();
    placed.sort_unstable();
    placement_fingerprint(&placed)
}

/// The fingerprint over an explicit `(chunk, home, strict)` placement list
/// (which must be sorted by chunk index). Exposed so tests can recompute the
/// expected value from [`ChunkAssignment`](ilan_runtime::ChunkAssignment)
/// independently of the runtime's dispatch path.
pub fn placement_fingerprint(placed: &[(u32, u32, bool)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &(chunk, home, strict) in placed {
        mix(u64::from(chunk));
        mix(u64::from(home));
        mix(u64::from(strict));
    }
    h
}

/// Runs the randomized stress-audit loop (see module docs).
pub fn run_stress(config: &StressConfig) -> StressSummary {
    let topo = presets::tiny_2x4();
    let num_nodes = topo.num_nodes();
    let pool = ThreadPool::new(PoolConfig::new(topo).pin(PinMode::Never)).expect("pool");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut iterations = Vec::with_capacity(config.iters);

    for iter in 0..config.iters {
        // Ragged shapes: lengths that don't divide evenly into chunks.
        let mut len = rng.random_range(1usize..2_000);
        let mut grain = rng.random_range(1usize..40);
        // Batch-heavy shapes: single-iteration chunks over a long range put
        // maximum pressure on the batched injector/deque transfers (hundreds
        // of chunks moving in MAX_BATCH-sized gulps).
        let batchy = rng.random_range(0u32..4) == 0;
        if batchy {
            len = rng.random_range(1_000usize..3_000);
            grain = 1;
        }
        let tag = if batchy { "batch " } else { "" };
        // Mid-run topology restriction: the second half of the run confines
        // hierarchical invocations to node 0.
        let restricted = iter >= config.iters / 2;
        let mask = if restricted {
            NodeMask::first_n(1)
        } else {
            NodeMask::from_bits(rng.random_range(1u64..(1 << num_nodes)))
        };
        let strict_fraction = [0.0, 0.25, 0.5, 0.75, 1.0][rng.random_range(0usize..5)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StealPolicy::Strict
        } else {
            StealPolicy::Full
        };
        let threads = [0, 0, 2, 4][rng.random_range(0usize..4)];
        let (mode, shape) = match rng.random_range(0u32..4) {
            0 => (ExecMode::Flat, format!("{tag}flat len={len} grain={grain}")),
            1 => (
                ExecMode::WorkSharing,
                format!("{tag}worksharing len={len} grain={grain}"),
            ),
            _ => (
                ExecMode::Hierarchical {
                    mask,
                    threads,
                    strict_fraction,
                    policy,
                },
                format!(
                    "{tag}hier mask={mask:?} threads={threads} strict={strict_fraction} \
                     policy={policy:?} len={len} grain={grain}"
                ),
            ),
        };
        // Skewed bodies: a seeded subset of iterations spin ~50× longer,
        // manufacturing imbalance that provokes steals.
        let skew_stride = rng.random_range(3usize..17);
        let count = AtomicUsize::new(0);
        let (report, log) = pool.taskloop_traced(0..len, grain, mode, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
            let spins = if r.start % skew_stride == 0 {
                50_000
            } else {
                1_000
            };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
        });
        let mut violations = audit_invocation(&report, &log).violations;
        if count.load(Ordering::Relaxed) != len {
            violations.push(format!(
                "body coverage: {} of {len} iterations ran",
                count.load(Ordering::Relaxed)
            ));
        }
        // The chunk→node assignment is deterministic for the shape, so its
        // fingerprint belongs in the byte-compared summary.
        let shape = format!("{shape} assign={:#018x}", assignment_fingerprint(&log));
        iterations.push(IterOutcome {
            shape,
            chunks: report.tasks_executed(),
            violations,
        });
    }

    StressSummary {
        config: config.clone(),
        iterations,
    }
}

/// A workload engineered to make node 1 finish early and (policy permitting)
/// steal node 0's slow chunks across the socket: all chunks stealable, node
/// 0's chunks ~100× heavier. Under [`StealPolicy::Full`] the event log shows
/// inter-node steals; under [`StealPolicy::Strict`] it cannot.
pub fn forced_steal_demo(policy: StealPolicy) -> (LoopReport, EventLog) {
    let topo = presets::tiny_2x4();
    let pool = ThreadPool::new(PoolConfig::new(topo.clone()).pin(PinMode::Never)).expect("pool");
    let mode = ExecMode::Hierarchical {
        mask: topo.all_nodes(),
        threads: 0,
        strict_fraction: 0.0,
        policy,
    };
    // 64 chunks of one iteration each; chunks 0..32 are homed on node 0 by
    // the blocked assignment and carry the heavy bodies.
    pool.taskloop_traced(0..64, 1, mode, |r| {
        let spins = if r.start < 32 { 400_000 } else { 4_000 };
        let mut acc = 0u64;
        for i in 0..spins {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(acc);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_seeded_runs_are_byte_identical() {
        let a = run_stress(&StressConfig::new(42, 12)).to_string();
        let b = run_stress(&StressConfig::new(42, 12)).to_string();
        assert_eq!(a, b, "same seed must give byte-identical summaries");
        assert!(a.contains("0 violations"), "clean run expected:\n{a}");
        let c = run_stress(&StressConfig::new(43, 12)).to_string();
        assert_ne!(a, c, "different seeds should draw different shapes");
    }

    /// The exact placement `run_stress` shapes rely on: chunk→node via the
    /// blocked assignment, strict prefix per node via the policy's strict
    /// fraction. Mirrors the dispatcher's enqueue loop.
    fn expected_placement(
        mask: ilan_topology::NodeMask,
        num_chunks: usize,
        strict_fraction: f64,
    ) -> Vec<(u32, u32, bool)> {
        let assignment = ilan_runtime::ChunkAssignment::new(mask, num_chunks);
        let mut placed = Vec::new();
        for (rank, node) in mask.iter().enumerate() {
            let idxs = assignment.chunks_of_rank(rank);
            let strict_count = ((idxs.len() as f64) * strict_fraction).round() as usize;
            for (j, idx) in idxs.enumerate() {
                placed.push((idx as u32, node.index() as u32, j < strict_count));
            }
        }
        placed.sort_unstable();
        placed
    }

    #[test]
    fn chunk_assignment_fingerprint_is_deterministic_and_golden() {
        let topo = presets::tiny_2x4();
        let pool =
            ThreadPool::new(PoolConfig::new(topo.clone()).pin(PinMode::Never)).expect("pool");
        let mode = ExecMode::Hierarchical {
            mask: topo.all_nodes(),
            threads: 0,
            strict_fraction: 0.5,
            policy: StealPolicy::Full,
        };
        // 130 iterations at grain 2 → 65 chunks: odd count, so the blocked
        // split and the strict-fraction rounding both exercise remainders.
        let (_, log_a) = pool.taskloop_traced(0..130, 2, mode.clone(), |_| {});
        let (_, log_b) = pool.taskloop_traced(0..130, 2, mode, |_| {});
        let fp = assignment_fingerprint(&log_a);
        assert_eq!(
            fp,
            assignment_fingerprint(&log_b),
            "assignment must not depend on the thread schedule"
        );

        // The same fingerprint recomputed from ChunkAssignment alone, without
        // running anything: the runtime's enqueue order is pure policy.
        let expected = expected_placement(topo.all_nodes(), 65, 0.5);
        assert_eq!(fp, placement_fingerprint(&expected));

        // Golden value: pins the §3.3 blocked mapping itself. If this moves,
        // the placement policy changed — not just the schedule.
        assert_eq!(
            fp, 0xcdc0_a445_4a8e_29b4,
            "chunk→node placement policy changed"
        );
    }

    #[test]
    fn forced_steal_demo_matches_policy() {
        // Full: node 1 drains its light chunks and must cross the socket.
        // Retry a few times — the thread schedule decides *when* node 1's
        // workers go idle, not whether crossing is permitted.
        let mut crossed = 0;
        for _ in 0..5 {
            let (report, log) = forced_steal_demo(StealPolicy::Full);
            let audit = audit_invocation(&report, &log);
            assert!(audit.ok(), "{audit}");
            crossed = log.inter_node_steals();
            if crossed > 0 {
                break;
            }
        }
        assert!(
            crossed > 0,
            "Full policy never produced an inter-node steal"
        );

        // Strict: crossing is forbidden regardless of imbalance.
        let (report, log) = forced_steal_demo(StealPolicy::Strict);
        let audit = audit_invocation(&report, &log);
        assert!(audit.ok(), "{audit}");
        assert_eq!(log.inter_node_steals(), 0);
        assert_eq!(report.migrations, 0);
    }
}
