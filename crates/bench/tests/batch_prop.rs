//! Property test: batched chunk acquisition preserves the runtime's
//! execution invariants.
//!
//! The dispatch arena moves chunks in `MAX_BATCH`-sized gulps between the
//! per-node injectors and worker deques. For randomized hierarchical shapes
//! (including hundreds-of-chunks batch-heavy ones) this must never break:
//!
//! * **exactly-once** — every chunk starts exactly once, every iteration of
//!   the range runs exactly once;
//! * **strict confinement** — NUMA-strict chunks never cross nodes, no
//!   matter how imbalanced the schedule gets;
//! * **placement determinism** — the chunk→node fingerprint of a shape is
//!   independent of the thread schedule.
//!
//! The `ilan-trace` auditor checks the first two from the event log; this
//! test additionally recounts them by hand so a bug in the auditor cannot
//! mask a bug in the runtime.

use ilan_bench::stress::{assignment_fingerprint, audit_invocation};
use ilan_runtime::trace::EventKind;
use ilan_runtime::{ExecMode, PinMode, PoolConfig, StealPolicy, ThreadPool};
use ilan_topology::{presets, NodeMask};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).expect("pool")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn batched_acquisition_is_exactly_once_and_strict_confined(
        len in 64usize..2048,
        grain in 1usize..8,
        mask_bits in 1u64..4, // tiny_2x4 has 2 nodes
        strict_idx in 0usize..5,
        full in any::<bool>(),
        threads_idx in 0usize..3,
    ) {
        let strict_fraction = [0.0, 0.25, 0.5, 0.75, 1.0][strict_idx];
        let policy = if full { StealPolicy::Full } else { StealPolicy::Strict };
        let threads = [0, 2, 4][threads_idx];
        let mode = ExecMode::Hierarchical {
            mask: NodeMask::from_bits(mask_bits),
            threads,
            strict_fraction,
            policy,
        };
        let num_chunks = len.div_ceil(grain);
        let count = AtomicUsize::new(0);
        let (report, log) = pool().taskloop_traced(0..len, grain, mode.clone(), |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });

        // Every iteration ran (the body tally is the ground truth the trace
        // cannot fake) and the report agrees on the chunk count.
        prop_assert_eq!(count.load(Ordering::Relaxed), len);
        prop_assert_eq!(report.tasks_executed(), num_chunks);

        // Full replay through the auditor: exactly-once start/end pairing,
        // strict confinement, migrations == inter-node steals, per-node
        // tallies matching the report.
        let audit = audit_invocation(&report, &log);
        prop_assert!(audit.ok(), "{}", audit);

        // Recount by hand, independent of the auditor. First pass: the
        // placement; second pass: starts and cross-node steals.
        let mut strict_of: HashMap<u32, bool> = HashMap::new();
        for e in log.iter() {
            if let EventKind::ChunkEnqueue { chunk, strict, .. } = e.kind {
                prop_assert!(
                    strict_of.insert(chunk, strict).is_none(),
                    "chunk {} enqueued twice", chunk
                );
            }
        }
        prop_assert_eq!(strict_of.len(), num_chunks);
        let mut started: HashMap<u32, usize> = HashMap::new();
        for e in log.iter() {
            match e.kind {
                EventKind::ChunkStart { chunk } => {
                    *started.entry(chunk).or_insert(0) += 1;
                }
                EventKind::InterNodeSteal { chunk, .. } => {
                    prop_assert!(
                        !strict_of[&chunk],
                        "strict chunk {} crossed nodes in a steal", chunk
                    );
                }
                _ => {}
            }
        }
        prop_assert_eq!(started.len(), num_chunks);
        prop_assert!(started.values().all(|&c| c == 1), "a chunk started twice");

        // Placement determinism: re-running the same shape yields the same
        // chunk→node fingerprint regardless of how the schedule unfolded.
        let (_, log2) = pool().taskloop_traced(0..len, grain, mode, |_| {});
        prop_assert_eq!(assignment_fingerprint(&log), assignment_fingerprint(&log2));
    }
}
