//! Taskloop configuration selection — the paper's Algorithm 1.
//!
//! Given the PTT state of one site, the configuration used by the previous
//! invocation, the invocation counter `k` and the thread-count granularity
//! `g`, [`select_threads`] produces the thread count to explore next and
//! whether the search has converged. The exploration is binary-search-like:
//!
//! * invocations 1 and 2 (handled by the scheduler, not here) prime the PTT
//!   with `m_max` and `m_max/2` threads;
//! * at `k = 3`, if the half-machine configuration won, the smallest
//!   configuration (`g` threads) is explored, opening the lower half of the
//!   search space;
//! * otherwise the midpoint between the fastest and second-fastest explored
//!   configurations is tried, rounded down to the granularity;
//! * the search finishes when the two best configurations are within one
//!   granularity step, or when the midpoint has already just been executed.
//!
//! One transcription note: the paper's pseudocode reads
//! `cfg_cur.threads ← g; if cfg_cur.threads = g then search_finished ← true`
//! in the `k = 3` branch, which as written would always finish immediately
//! without measuring `g`. We implement the evidently intended semantics:
//! finish only if the *best* configuration already uses `g` threads (nothing
//! below it exists to explore); otherwise explore `g` and continue searching.

use crate::ptt::SiteTable;

/// Inputs to one selection step (invocation `k ≥ 3`).
#[derive(Clone, Copy, Debug)]
pub struct SelectionInput<'a> {
    /// The site's PTT table (must contain at least two configurations).
    pub table: &'a SiteTable,
    /// Thread count used by the immediately preceding invocation.
    pub current_threads: usize,
    /// The 1-based index of the invocation being configured.
    pub k: u64,
    /// Thread-count granularity `g` (paper default: the NUMA node size).
    pub granularity: usize,
    /// What the search minimizes (the paper uses [`Objective::Time`]).
    ///
    /// [`Objective::Time`]: crate::Objective::Time
    pub objective: crate::Objective,
}

/// Result of one selection step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Selection {
    /// Thread count for the next invocation.
    pub threads: usize,
    /// Whether the search has converged (the returned `threads` is the final
    /// choice, and the steal-policy trial may begin).
    pub search_finished: bool,
}

/// Runs one step of Algorithm 1.
///
/// # Panics
/// Panics if the table has fewer than two explored configurations (the two
/// priming runs must precede the search) or if `granularity == 0`.
pub fn select_threads(input: SelectionInput<'_>) -> Selection {
    let g = input.granularity;
    assert!(g > 0, "granularity must be positive");
    let best = input
        .table
        .best_by(input.objective)
        .expect("Algorithm 1 requires two prior executions");
    let second = input
        .table
        .second_by(input.objective)
        .expect("Algorithm 1 requires two prior executions");

    let threads_diff = best.threads.abs_diff(second.threads);
    let lower_bound = best.threads.min(second.threads);
    // Midpoint rounded down to meet the granularity.
    let midpoint_threads = lower_bound + (threads_diff / 2) / g * g;

    if input.k == 3 && best.threads < second.threads {
        // Best previous cfg is the smallest in the PTT: explore the smallest
        // possible configuration (g threads) — unless it is already the best.
        if best.threads == g {
            Selection {
                threads: best.threads,
                search_finished: true,
            }
        } else {
            Selection {
                threads: g,
                search_finished: false,
            }
        }
    } else if threads_diff <= g {
        // Thread counts within one granularity step: optimum found.
        Selection {
            threads: best.threads,
            search_finished: true,
        }
    } else if input.current_threads == midpoint_threads {
        // The midpoint was just executed: settle on the best.
        Selection {
            threads: best.threads,
            search_finished: true,
        }
    } else {
        Selection {
            threads: midpoint_threads,
            search_finished: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptt::Ptt;
    use crate::report::TaskloopReport;
    use crate::site::SiteId;
    use ilan_runtime::StealPolicy;
    use ilan_topology::NodeMask;

    const SITE: SiteId = SiteId::new(0);

    fn table_with(times: &[(usize, f64)]) -> Ptt {
        let mut ptt = Ptt::new();
        for &(threads, t) in times {
            ptt.record(
                SITE,
                threads,
                NodeMask::first_n(8),
                StealPolicy::Strict,
                &TaskloopReport::synthetic(t, threads),
            );
        }
        ptt
    }

    fn step(ptt: &Ptt, current: usize, k: u64, g: usize) -> Selection {
        select_threads(SelectionInput {
            table: ptt.site(SITE).unwrap(),
            current_threads: current,
            k,
            granularity: g,
            objective: crate::Objective::Time,
        })
    }

    #[test]
    fn k3_explores_smallest_when_half_won() {
        // 32 faster than 64: probe the lowest configuration.
        let ptt = table_with(&[(64, 100.0), (32, 60.0)]);
        let s = step(&ptt, 32, 3, 8);
        assert_eq!(
            s,
            Selection {
                threads: 8,
                search_finished: false
            }
        );
    }

    #[test]
    fn k3_finishes_if_best_is_already_g() {
        // Two-node machine: m_max/2 == g == 8 and it won.
        let ptt = table_with(&[(16, 100.0), (8, 60.0)]);
        let s = step(&ptt, 8, 3, 8);
        assert_eq!(
            s,
            Selection {
                threads: 8,
                search_finished: true
            }
        );
    }

    #[test]
    fn k3_midpoint_upward_when_full_machine_won() {
        // 64 faster than 32: general case at k=3 → midpoint 48.
        let ptt = table_with(&[(64, 60.0), (32, 100.0)]);
        let s = step(&ptt, 32, 3, 8);
        assert_eq!(
            s,
            Selection {
                threads: 48,
                search_finished: false
            }
        );
    }

    #[test]
    fn finishes_when_within_one_granularity() {
        let ptt = table_with(&[(64, 60.0), (56, 70.0), (32, 100.0)]);
        let s = step(&ptt, 56, 5, 8);
        assert_eq!(
            s,
            Selection {
                threads: 64,
                search_finished: true
            }
        );
    }

    #[test]
    fn finishes_when_midpoint_already_executed() {
        // best 8 (40), second 32 (60): midpoint = 8 + (24/2)/8*8 = 16.
        // If 16 was just executed and ranks third, settle on 8.
        let ptt = table_with(&[(64, 100.0), (32, 60.0), (8, 40.0), (16, 62.0)]);
        let s = step(&ptt, 16, 5, 8);
        assert_eq!(
            s,
            Selection {
                threads: 8,
                search_finished: true
            }
        );
    }

    #[test]
    fn explores_midpoint_between_best_two() {
        // best 8 (40), second 32 (60): midpoint 16.
        let ptt = table_with(&[(64, 100.0), (32, 60.0), (8, 40.0)]);
        let s = step(&ptt, 8, 4, 8);
        assert_eq!(
            s,
            Selection {
                threads: 16,
                search_finished: false
            }
        );
    }

    #[test]
    fn full_search_sequence_memory_bound() {
        // Times strictly improve as threads shrink to 8.
        // Priming: 64 → 100, 32 → 60 (recorded before the search starts).
        let mut ptt = table_with(&[(64, 100.0), (32, 60.0)]);
        // k=3: explore g=8.
        let s3 = step(&ptt, 32, 3, 8);
        assert_eq!(s3.threads, 8);
        ptt.record(
            SITE,
            8,
            NodeMask::first_n(1),
            StealPolicy::Strict,
            &TaskloopReport::synthetic(40.0, 8),
        );
        // k=4: best 8, second 32 → midpoint 16.
        let s4 = step(&ptt, 8, 4, 8);
        assert_eq!(s4.threads, 16);
        ptt.record(
            SITE,
            16,
            NodeMask::first_n(2),
            StealPolicy::Strict,
            &TaskloopReport::synthetic(45.0, 16),
        );
        // k=5: best 8, second 16, diff ≤ g → finished at 8.
        let s5 = step(&ptt, 16, 5, 8);
        assert_eq!(
            s5,
            Selection {
                threads: 8,
                search_finished: true
            }
        );
    }

    #[test]
    fn full_search_sequence_compute_bound() {
        // Times strictly improve with more threads.
        let mut ptt = table_with(&[(64, 60.0), (32, 100.0)]);
        let s3 = step(&ptt, 32, 3, 8);
        assert_eq!(s3.threads, 48); // midpoint of 32..64
        ptt.record(
            SITE,
            48,
            NodeMask::first_n(6),
            StealPolicy::Strict,
            &TaskloopReport::synthetic(75.0, 48),
        );
        // best 64, second 48 → midpoint 56.
        let s4 = step(&ptt, 48, 4, 8);
        assert_eq!(s4.threads, 56);
        ptt.record(
            SITE,
            56,
            NodeMask::first_n(7),
            StealPolicy::Strict,
            &TaskloopReport::synthetic(65.0, 56),
        );
        // best 64, second 56 → within g → settle on 64.
        let s5 = step(&ptt, 56, 5, 8);
        assert_eq!(
            s5,
            Selection {
                threads: 64,
                search_finished: true
            }
        );
    }

    #[test]
    fn interior_optimum_converges() {
        // Optimum at 16 threads: t(8)=50, t(16)=35, t(32)=60, t(64)=100.
        let mut ptt = table_with(&[(64, 100.0), (32, 60.0)]);
        assert_eq!(step(&ptt, 32, 3, 8).threads, 8);
        ptt.record(
            SITE,
            8,
            NodeMask::first_n(1),
            StealPolicy::Strict,
            &TaskloopReport::synthetic(50.0, 8),
        );
        // best 8(50), second 32(60) → midpoint 16.
        assert_eq!(step(&ptt, 8, 4, 8).threads, 16);
        ptt.record(
            SITE,
            16,
            NodeMask::first_n(2),
            StealPolicy::Strict,
            &TaskloopReport::synthetic(35.0, 16),
        );
        // best 16(35), second 8(50): diff ≤ g → settle on 16.
        let s = step(&ptt, 16, 5, 8);
        assert_eq!(
            s,
            Selection {
                threads: 16,
                search_finished: true
            }
        );
    }

    #[test]
    #[should_panic(expected = "two prior executions")]
    fn requires_two_entries() {
        let ptt = table_with(&[(64, 100.0)]);
        step(&ptt, 64, 3, 8);
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn rejects_zero_granularity() {
        let ptt = table_with(&[(64, 100.0), (32, 60.0)]);
        step(&ptt, 32, 3, 0);
    }

    #[test]
    fn granularity_one_fine_search() {
        // g = 1 on a small machine: midpoints at single-thread resolution.
        let ptt = table_with(&[(8, 100.0), (4, 60.0)]);
        let s = step(&ptt, 4, 3, 1);
        assert_eq!(
            s,
            Selection {
                threads: 1,
                search_finished: false
            }
        );
    }
}
