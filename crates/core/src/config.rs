//! Scheduling decisions.

use ilan_runtime::{ExecMode, StealPolicy};
use ilan_topology::NodeMask;

/// What a [`Policy`](crate::Policy) decided for one taskloop invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Decision {
    /// Default flat tasking: one shared queue, all workers.
    Flat,
    /// OpenMP static work-sharing: fixed slices, all workers.
    WorkSharing,
    /// ILAN hierarchical execution with an explicit taskloop configuration
    /// (the paper's `(num_threads, node_mask, steal_policy)` triple).
    Hierarchical {
        /// Active thread count (`num_threads`).
        threads: usize,
        /// Eligible NUMA nodes (`node_mask`).
        mask: NodeMask,
        /// Inter-node stealing policy (`steal_policy`).
        steal: StealPolicy,
        /// Fraction of each node's chunks that are NUMA-strict when
        /// `steal == Full` (implementation-specific per the paper §3.1).
        strict_fraction: f64,
    },
}

impl Decision {
    /// The thread count, if the decision pins one (hierarchical only).
    pub fn threads(&self) -> Option<usize> {
        match self {
            Decision::Hierarchical { threads, .. } => Some(*threads),
            _ => None,
        }
    }

    /// The node mask, if the decision pins one.
    pub fn mask(&self) -> Option<NodeMask> {
        match self {
            Decision::Hierarchical { mask, .. } => Some(*mask),
            _ => None,
        }
    }

    /// The steal policy, if the decision pins one.
    pub fn steal(&self) -> Option<StealPolicy> {
        match self {
            Decision::Hierarchical { steal, .. } => Some(*steal),
            _ => None,
        }
    }

    /// Translates the decision into the native runtime's execution mode.
    pub fn to_exec_mode(&self) -> ExecMode {
        match self {
            Decision::Flat => ExecMode::Flat,
            Decision::WorkSharing => ExecMode::WorkSharing,
            Decision::Hierarchical {
                threads,
                mask,
                steal,
                strict_fraction,
            } => ExecMode::Hierarchical {
                mask: *mask,
                threads: *threads,
                strict_fraction: *strict_fraction,
                policy: *steal,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Decision::Flat.threads(), None);
        assert_eq!(Decision::WorkSharing.mask(), None);
        let d = Decision::Hierarchical {
            threads: 16,
            mask: NodeMask::first_n(2),
            steal: StealPolicy::Strict,
            strict_fraction: 1.0,
        };
        assert_eq!(d.threads(), Some(16));
        assert_eq!(d.mask(), Some(NodeMask::first_n(2)));
        assert_eq!(d.steal(), Some(StealPolicy::Strict));
    }

    #[test]
    fn exec_mode_translation() {
        assert!(matches!(Decision::Flat.to_exec_mode(), ExecMode::Flat));
        assert!(matches!(
            Decision::WorkSharing.to_exec_mode(),
            ExecMode::WorkSharing
        ));
        let d = Decision::Hierarchical {
            threads: 8,
            mask: NodeMask::first_n(1),
            steal: StealPolicy::Full,
            strict_fraction: 0.5,
        };
        match d.to_exec_mode() {
            ExecMode::Hierarchical {
                threads,
                mask,
                strict_fraction,
                policy,
            } => {
                assert_eq!(threads, 8);
                assert_eq!(mask, NodeMask::first_n(1));
                assert_eq!(strict_fraction, 0.5);
                assert_eq!(policy, StealPolicy::Full);
            }
            other => panic!("wrong mode {other:?}"),
        }
    }
}
