//! Drivers: connect a [`Policy`] to an execution backend.
//!
//! A driver performs one decide → execute → record round per taskloop
//! invocation. Two backends exist:
//!
//! * [`run_sim_invocation`] — the simulated NUMA machine (`ilan-numasim`),
//!   used by the paper-reproduction harness (the evaluation platform, a
//!   64-core EPYC 9354, is simulated in this repository);
//! * [`run_native_invocation`] — the native work-stealing runtime
//!   (`ilan-runtime`), used by the examples and functional tests.
//!
//! Both charge the policy's decision cost to the invocation's critical path
//! and overhead accounting, mirroring where configuration selection sits in
//! the LLVM implementation.

use crate::config::Decision;
use crate::policy::Policy;
use crate::report::TaskloopReport;
use crate::site::SiteId;
use ilan_numasim::{NodeAssignment, PlacementPlan, SimMachine, TaskSpec};
use ilan_runtime::{ChunkAssignment, StealPolicy, ThreadPool};
use ilan_topology::{CpuSet, NodeMask, Topology};
use std::ops::Range;

/// Resolves the active core set for a hierarchical decision: `threads`
/// cores spread evenly over the mask's nodes, lowest cores first in each
/// node (the same rule the native runtime applies internally).
pub fn active_cores(topology: &Topology, mask: NodeMask, threads: usize) -> CpuSet {
    assert!(!mask.is_empty(), "active_cores needs a non-empty mask");
    let k = mask.count();
    let max_threads = k * topology.cores_per_node();
    let want = if threads == 0 {
        max_threads
    } else {
        threads.min(max_threads)
    };
    let mut set = CpuSet::new();
    for (rank, node) in mask.iter().enumerate() {
        let per = want / k + usize::from(rank < want % k);
        for core in topology.cores_of_node(node).take(per) {
            set.insert(core);
        }
    }
    if set.is_empty() {
        set.insert(topology.primary_core(mask.first().unwrap()));
    }
    set
}

/// Builds the simulator placement plan realizing a decision over
/// `num_tasks` chunks.
pub fn build_plan(decision: &Decision, num_tasks: usize) -> PlacementPlan {
    match decision {
        Decision::Flat => PlacementPlan::Flat,
        Decision::WorkSharing => PlacementPlan::Static,
        Decision::Hierarchical {
            mask,
            steal,
            strict_fraction,
            ..
        } => {
            let assignment = ChunkAssignment::new(*mask, num_tasks.max(1));
            let assignments = assignment
                .per_node()
                .into_iter()
                .map(|(node, tasks)| {
                    let strict_count = match steal {
                        StealPolicy::Strict => tasks.len(),
                        StealPolicy::Full => {
                            ((tasks.len() as f64) * strict_fraction).round() as usize
                        }
                    };
                    NodeAssignment {
                        node,
                        tasks,
                        strict_count,
                    }
                })
                .collect();
            PlacementPlan::Hierarchical { assignments }
        }
    }
}

/// One decide → simulate → record round on the simulated machine.
///
/// Returns the decision taken and the normalized report (after the policy
/// recorded it).
pub fn run_sim_invocation(
    machine: &mut SimMachine,
    policy: &mut dyn Policy,
    site: SiteId,
    tasks: &[TaskSpec],
) -> (Decision, TaskloopReport) {
    let decision = policy.decide(site);
    let topo = machine.topology();
    let cores = match &decision {
        Decision::Flat | Decision::WorkSharing => topo.cpuset_of_mask(topo.all_nodes()),
        Decision::Hierarchical { mask, threads, .. } => active_cores(topo, *mask, *threads),
    };
    let plan = build_plan(&decision, tasks.len());
    let outcome = machine.run_taskloop(&cores, &plan, tasks);
    let mut report = TaskloopReport::from(&outcome);
    let decision_cost = policy.decision_overhead_ns();
    report.time_ns += decision_cost;
    report.sched_overhead_ns += decision_cost;
    machine.advance_serial(decision_cost);
    policy.record(site, &decision, &report);
    (decision, report)
}

/// One decide → execute → record round on the native runtime.
pub fn run_native_invocation<F>(
    pool: &ThreadPool,
    policy: &mut dyn Policy,
    site: SiteId,
    range: Range<usize>,
    grainsize: usize,
    body: F,
) -> (Decision, TaskloopReport)
where
    F: Fn(Range<usize>) + Sync,
{
    let decision = policy.decide(site);
    let native = pool.taskloop(range, grainsize, decision.to_exec_mode(), body);
    let mut report = TaskloopReport::from(&native);
    let decision_cost = policy.decision_overhead_ns();
    report.time_ns += decision_cost;
    report.sched_overhead_ns += decision_cost;
    policy.record(site, &decision, &report);
    (decision, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BaselinePolicy, WorkSharingPolicy};
    use crate::scheduler::{IlanParams, IlanScheduler};
    use ilan_numasim::{Locality, MachineParams};
    use ilan_runtime::{PinMode, PoolConfig};
    use ilan_topology::{presets, NodeId};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sim_tasks(n: usize, nodes: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec {
                compute_ns: 10_000.0,
                mem_bytes: 100_000.0,
                home_node: NodeId::new(i * nodes / n),
                locality: Locality::Chunked,
                data_mask: NodeMask::first_n(nodes),
                cache_reuse: 0.3,
                fits_l3: true,
            })
            .collect()
    }

    #[test]
    fn active_cores_even_spread() {
        let t = presets::epyc_9354_2s();
        let set = active_cores(&t, NodeMask::first_n(4), 16);
        assert_eq!(set.count(), 16);
        // 4 cores per node, the lowest of each.
        assert!(set.contains(ilan_topology::CoreId::new(0)));
        assert!(set.contains(ilan_topology::CoreId::new(11)));
        assert!(!set.contains(ilan_topology::CoreId::new(4)));
    }

    #[test]
    fn active_cores_uneven_remainder() {
        let t = presets::epyc_9354_2s();
        let set = active_cores(&t, NodeMask::first_n(3), 10);
        assert_eq!(set.count(), 10);
        // 4 + 3 + 3.
        let per_node: Vec<usize> = (0..3)
            .map(|n| {
                t.cores_of_node(NodeId::new(n))
                    .filter(|c| set.contains(*c))
                    .count()
            })
            .collect();
        assert_eq!(per_node, vec![4, 3, 3]);
    }

    #[test]
    fn active_cores_zero_means_all() {
        let t = presets::tiny_2x4();
        assert_eq!(active_cores(&t, t.all_nodes(), 0).count(), 8);
    }

    #[test]
    fn active_cores_clamps_excess_threads() {
        // More threads than the mask can host: clamp to its capacity.
        let t = presets::epyc_9354_2s();
        let mask = NodeMask::first_n(2); // 16 cores
        assert_eq!(active_cores(&t, mask, 1000).count(), 16);
        assert_eq!(active_cores(&t, t.all_nodes(), usize::MAX).count(), 64);
    }

    #[test]
    fn active_cores_single_node_mask() {
        let t = presets::epyc_9354_2s();
        let mask = NodeMask::single(NodeId::new(5));
        let set = active_cores(&t, mask, 3);
        assert_eq!(set.count(), 3);
        // All three cores live on node 5.
        for core in set.iter() {
            assert_eq!(t.node_of_core(core), NodeId::new(5));
        }
        // Requesting the whole node (or more) yields exactly its cores.
        assert_eq!(active_cores(&t, mask, 8).count(), 8);
        assert_eq!(active_cores(&t, mask, 9).count(), 8);
    }

    #[test]
    fn build_plan_strict_fraction() {
        let d = Decision::Hierarchical {
            threads: 8,
            mask: NodeMask::first_n(2),
            steal: StealPolicy::Full,
            strict_fraction: 0.5,
        };
        match build_plan(&d, 8) {
            PlacementPlan::Hierarchical { assignments } => {
                assert_eq!(assignments.len(), 2);
                for a in &assignments {
                    assert_eq!(a.tasks.len(), 4);
                    assert_eq!(a.strict_count, 2);
                }
            }
            other => panic!("wrong plan {other:?}"),
        }
    }

    #[test]
    fn sim_driver_runs_baseline_and_worksharing() {
        let topo = presets::tiny_2x4();
        let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
        let tasks = sim_tasks(32, 2);
        let mut base = BaselinePolicy;
        let (d, r) = run_sim_invocation(&mut m, &mut base, SiteId::new(0), &tasks);
        assert_eq!(d, Decision::Flat);
        assert!(r.time_ns > 0.0);
        let mut ws = WorkSharingPolicy;
        let (d, r2) = run_sim_invocation(&mut m, &mut ws, SiteId::new(0), &tasks);
        assert_eq!(d, Decision::WorkSharing);
        assert!(r2.sched_overhead_ns < r.sched_overhead_ns);
    }

    #[test]
    fn sim_driver_advances_ilan_lifecycle() {
        let topo = presets::tiny_2x4();
        let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
        let tasks = sim_tasks(64, 2);
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        let site = SiteId::new(0);
        let (d1, _) = run_sim_invocation(&mut m, &mut ilan, site, &tasks);
        assert_eq!(d1.threads(), Some(8));
        let (d2, _) = run_sim_invocation(&mut m, &mut ilan, site, &tasks);
        assert_eq!(d2.threads(), Some(4));
        // Run the site to settlement.
        for _ in 0..6 {
            run_sim_invocation(&mut m, &mut ilan, site, &tasks);
        }
        assert_eq!(ilan.phase(site), crate::scheduler::SearchPhase::Settled);
        assert_eq!(ilan.ptt().invocations(site), 8);
    }

    #[test]
    fn native_driver_executes_all_iterations() {
        let topo = presets::tiny_2x4();
        let pool = ThreadPool::new(PoolConfig::new(topo.clone()).pin(PinMode::Never)).unwrap();
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        let site = SiteId::new(0);
        for _ in 0..4 {
            let count = AtomicUsize::new(0);
            let (_, report) = run_native_invocation(&pool, &mut ilan, site, 0..400, 10, |r| {
                count.fetch_add(r.len(), Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 400);
            assert!(report.time_ns > 0.0);
        }
        assert_eq!(ilan.ptt().invocations(site), 4);
    }
}
