//! **ILAN** — the Interference- and Locality-Aware NUMA taskloop scheduler.
//!
//! This crate is the paper's primary contribution (Mellberg, Carlsson, Chen,
//! Pericàs, *ILAN: The Interference- and Locality-Aware NUMA Scheduler*,
//! SC Workshops '25). For every taskloop *site* the scheduler controls three
//! parameters:
//!
//! 1. **`num_threads`** — the *moldability* knob. Chosen by the binary-search
//!    style exploration of the paper's Algorithm 1 ([`algorithm1`]) over a
//!    [Performance Trace Table](ptt::Ptt) of past executions, at a
//!    thread-count granularity `g` (default: the NUMA node size).
//! 2. **`node_mask`** — which NUMA nodes execute the loop. The fastest node
//!    observed in the PTT seeds the mask; further nodes are added
//!    topology-near-first (same socket before cross-socket) — [`nodemask`].
//! 3. **`steal_policy`** — `strict` (intra-node stealing only) during the
//!    search; once the search finishes, `full` (inter-node stealing of a
//!    stealable tail) is trialled once and the faster policy is kept.
//!
//! Task *distribution* is hierarchical (§3.3): chunks map deterministically
//! to the mask's nodes by logical iteration index, so adjacent iterations
//! stay collocated; distribution inside a node is work-stealing.
//!
//! The policy is a pure state machine ([`Policy`]): `decide` returns a
//! [`Decision`], `record` feeds back a normalized [`TaskloopReport`]. Two
//! drivers execute decisions: [`driver::run_sim_invocation`] on the
//! simulated NUMA machine (`ilan-numasim`) and
//! [`driver::run_native_invocation`] on the native work-stealing runtime
//! (`ilan-runtime`). Baselines ship alongside: [`BaselinePolicy`] (default
//! LLVM-style flat tasking), [`WorkSharingPolicy`] (OpenMP static
//! work-sharing) and [`FixedPolicy`]. The ablation of the paper's Figure 4
//! (ILAN without moldability) is [`IlanParams::no_moldability`].
//!
//! # Example: the policy state machine on its own
//!
//! ```
//! use ilan::{IlanScheduler, IlanParams, Policy, Decision, SiteId, TaskloopReport};
//! use ilan_topology::presets;
//!
//! let topo = presets::epyc_9354_2s();
//! let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
//! let site = SiteId::new(0);
//!
//! // First decision always uses the whole machine.
//! let d = ilan.decide(site);
//! assert_eq!(d.threads(), Some(64));
//! // Feed a report back; the second decision explores half the machine.
//! let report = TaskloopReport::synthetic(1_000_000.0, 64);
//! ilan.record(site, &d, &report);
//! assert_eq!(ilan.decide(site).threads(), Some(32));
//! ```

#![warn(missing_docs)]

pub mod algorithm1;
mod config;
pub mod driver;
pub mod metrics;
pub mod nodemask;
mod objective;
mod policy;
pub mod ptt;
mod report;
mod scheduler;
mod site;
pub mod stats;
pub mod trace;

pub use config::Decision;
pub use ilan_runtime::StealPolicy;
pub use metrics::SchedulerMetrics;
pub use objective::Objective;
pub use policy::{BaselinePolicy, FixedPolicy, Policy, WorkSharingPolicy};
pub use report::TaskloopReport;
pub use scheduler::{IlanParams, IlanScheduler, SearchPhase};
pub use site::{SiteId, SiteRegistry};
pub use stats::RunStats;
pub use trace::RecordingPolicy;
