//! Scheduler-side instruments: Algorithm-1 lifecycle gauges, PTT traffic
//! counters and per-site decision histograms.
//!
//! A [`SchedulerMetrics`] is a cheap-clone handle over an `ilan-metrics`
//! [`Registry`]. Attach one to an [`IlanScheduler`](crate::IlanScheduler)
//! with [`attach_metrics`](crate::IlanScheduler::attach_metrics) and (for
//! the per-site decision history) to a
//! [`RecordingPolicy`](crate::RecordingPolicy) with
//! [`with_metrics`](crate::RecordingPolicy::with_metrics). The split keeps
//! the accounting single-sourced:
//!
//! * the **scheduler** owns the lifecycle view — how many sites sit in each
//!   [`SearchPhase`](crate::SearchPhase), settled-decision hit/miss traffic,
//!   PTT record counts and warm-started sites;
//! * the **recording wrapper** owns the per-invocation view — thread-count
//!   and invocation-time histograms per site, emitted at the same point the
//!   [`TraceEntry`](crate::trace::TraceEntry) is pushed, so the trace
//!   (`moldability_trace`, `thread_trajectory`) and the exposition can never
//!   disagree.
//!
//! Metric families (all prefixed `ilan_sched_`):
//!
//! | family | kind | meaning |
//! |---|---|---|
//! | `sites` | gauge (`phase`) | sites currently in each lifecycle phase |
//! | `decide` | counter (`outcome`=`hit`/`miss`) | decisions served settled vs still exploring |
//! | `ptt_records` | counter | invocation reports folded into the PTT |
//! | `warm_started_sites` | counter | sites seeded Settled from a saved PTT |
//! | `decision_threads` | histogram (`site`) | decided thread counts per site |
//! | `invocation_ns` | histogram (`site`) | measured invocation times per site |

use crate::site::SiteId;
use ilan_metrics::{Counter, Gauge, Registry};

/// Instruments for one scheduler (see module docs). Clones alias the same
/// underlying series.
#[derive(Clone)]
pub struct SchedulerMetrics {
    registry: Registry,
    sites_searching: Gauge,
    sites_steal_trial: Gauge,
    sites_settled: Gauge,
    decide_hit: Counter,
    decide_miss: Counter,
    ptt_records: Counter,
    warm_started_sites: Counter,
}

impl SchedulerMetrics {
    /// Instruments registered into a fresh registry.
    pub fn new() -> Self {
        Self::with_registry(Registry::new())
    }

    /// Instruments registered into `registry` — share one registry across
    /// layers (e.g. with a server's) to render a single exposition.
    pub fn with_registry(registry: Registry) -> Self {
        let phase = |phase: &str| {
            registry.gauge_with(
                "ilan_sched_sites",
                "Taskloop sites currently in each lifecycle phase",
                &[("phase", phase)],
            )
        };
        let decide = |outcome: &str| {
            registry.counter_with(
                "ilan_sched_decide",
                "Decisions by settled-configuration outcome",
                &[("outcome", outcome)],
            )
        };
        SchedulerMetrics {
            sites_searching: phase("searching"),
            sites_steal_trial: phase("steal_trial"),
            sites_settled: phase("settled"),
            decide_hit: decide("hit"),
            decide_miss: decide("miss"),
            ptt_records: registry.counter(
                "ilan_sched_ptt_records",
                "Invocation reports recorded into the Performance Trace Table",
            ),
            warm_started_sites: registry.counter(
                "ilan_sched_warm_started_sites",
                "Sites seeded Settled from a previously saved PTT",
            ),
            registry,
        }
    }

    /// The underlying registry: snapshot it, delta it, render it.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The current OpenMetrics exposition.
    pub fn render(&self) -> String {
        self.registry.render()
    }

    /// One `decide` call: `hit` when the site was already Settled (the
    /// decision came straight from the frozen configuration).
    pub fn note_decide(&self, hit: bool) {
        if hit {
            self.decide_hit.inc();
        } else {
            self.decide_miss.inc();
        }
    }

    /// One invocation report folded into the PTT.
    pub fn note_ptt_record(&self) {
        self.ptt_records.inc();
    }

    /// `n` sites seeded Settled from a saved PTT.
    pub fn note_warm_sites(&self, n: usize) {
        self.warm_started_sites.add(n as u64);
    }

    /// Refreshes the lifecycle gauges from a full phase census.
    pub fn set_phase_counts(&self, searching: usize, steal_trial: usize, settled: usize) {
        self.sites_searching.set(searching as i64);
        self.sites_steal_trial.set(steal_trial as i64);
        self.sites_settled.set(settled as i64);
    }

    /// One decided-and-measured invocation for `site`: feeds the per-site
    /// decision histograms. Called by
    /// [`RecordingPolicy`](crate::RecordingPolicy) at the trace-entry push
    /// point (single-sourced with the trace — see module docs).
    pub fn note_invocation(&self, site: SiteId, threads: usize, time_ns: f64) {
        let label = site.to_string();
        let labels: &[(&str, &str)] = &[("site", label.as_str())];
        self.registry
            .histogram_with(
                "ilan_sched_decision_threads",
                "Decided thread counts per taskloop site",
                labels,
            )
            .record(threads as u64);
        self.registry
            .histogram_with(
                "ilan_sched_invocation_ns",
                "Measured invocation times per taskloop site, ns",
                labels,
            )
            .record(time_ns.max(0.0) as u64);
    }
}

impl Default for SchedulerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_metrics::SampleValue;

    #[test]
    fn phase_census_and_decide_outcomes_render() {
        let m = SchedulerMetrics::new();
        m.set_phase_counts(2, 1, 3);
        m.note_decide(true);
        m.note_decide(false);
        m.note_decide(false);
        m.note_ptt_record();
        m.note_warm_sites(3);
        let snap = m.registry().snapshot();
        assert_eq!(
            snap.get_with("ilan_sched_sites", &[("phase", "settled")]),
            Some(&SampleValue::Gauge(3))
        );
        assert_eq!(
            snap.get_with("ilan_sched_decide", &[("outcome", "hit")]),
            Some(&SampleValue::Counter(1))
        );
        assert_eq!(
            snap.get_with("ilan_sched_decide", &[("outcome", "miss")]),
            Some(&SampleValue::Counter(2))
        );
        assert_eq!(snap.counter_total("ilan_sched_warm_started_sites"), 3);
        let text = m.render();
        assert!(text.contains("ilan_sched_sites"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn per_site_histograms_key_by_site_label() {
        let m = SchedulerMetrics::new();
        m.note_invocation(SiteId::new(7), 32, 1_000_000.0);
        m.note_invocation(SiteId::new(7), 16, 2_000_000.0);
        m.note_invocation(SiteId::new(8), 64, 500_000.0);
        let snap = m.registry().snapshot();
        let hist = |site: &str| match snap
            .get_with("ilan_sched_decision_threads", &[("site", site)])
        {
            Some(SampleValue::Histogram(h)) => h.clone(),
            other => panic!("expected histogram for {site}, got {other:?}"),
        };
        assert_eq!(hist("site7").count, 2);
        assert_eq!(hist("site8").count, 1);
        assert_eq!(hist("site8").sum, 64);
    }
}
