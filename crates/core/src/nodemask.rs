//! Node-mask selection (paper §3.2).
//!
//! "The fastest NUMA node is retrieved from the PTT and is selected as the
//! first node of the node mask. To maintain good data locality and efficient
//! inter-node data communication, any additional nodes are chosen according
//! to the NUMA topology — nodes within the same socket are prioritized over
//! nodes crossing socket domains."

use crate::ptt::SiteTable;
use ilan_topology::{NodeMask, Topology};

/// Number of nodes needed to host `threads` threads at node granularity.
pub fn nodes_needed(topology: &Topology, threads: usize) -> usize {
    threads
        .div_ceil(topology.cores_per_node())
        .clamp(1, topology.num_nodes())
}

/// Selects the node mask for a configuration with `threads` threads.
///
/// The seed node is the fastest node recorded in the site's PTT (falling
/// back to node 0 before any history exists); the mask grows around it
/// nearest-first via the topology's distance matrix.
pub fn select_mask(topology: &Topology, table: Option<&SiteTable>, threads: usize) -> NodeMask {
    select_mask_within(topology, topology.all_nodes(), table, threads)
}

/// Like [`select_mask`], but confined to the `allowed` partition: the seed
/// is the fastest *allowed* node and the mask grows nearest-first over
/// allowed nodes only. Used by multi-tenant co-scheduling, where each tenant
/// owns a disjoint slice of the machine.
///
/// # Panics
/// Panics if `allowed` is empty.
pub fn select_mask_within(
    topology: &Topology,
    allowed: NodeMask,
    table: Option<&SiteTable>,
    threads: usize,
) -> NodeMask {
    assert!(
        !allowed.is_empty(),
        "partition must contain at least one node"
    );
    let want = threads
        .div_ceil(topology.cores_per_node())
        .clamp(1, allowed.count());
    if want >= allowed.count() {
        return allowed;
    }
    let seed = table
        .and_then(|t| t.fastest_node())
        .filter(|n| allowed.contains(*n))
        .unwrap_or_else(|| allowed.first().expect("allowed is non-empty"));
    let mut mask = NodeMask::single(seed);
    for n in topology.distances().neighbors_by_distance(seed) {
        if mask.count() >= want {
            break;
        }
        if allowed.contains(n) {
            mask.insert(n);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptt::Ptt;
    use crate::report::TaskloopReport;
    use crate::site::SiteId;
    use ilan_runtime::StealPolicy;
    use ilan_topology::{presets, NodeId};

    #[test]
    fn nodes_needed_rounds_up() {
        let t = presets::epyc_9354_2s();
        assert_eq!(nodes_needed(&t, 1), 1);
        assert_eq!(nodes_needed(&t, 8), 1);
        assert_eq!(nodes_needed(&t, 9), 2);
        assert_eq!(nodes_needed(&t, 64), 8);
        assert_eq!(nodes_needed(&t, 1000), 8);
    }

    #[test]
    fn full_machine_uses_all_nodes() {
        let t = presets::epyc_9354_2s();
        assert_eq!(select_mask(&t, None, 64), t.all_nodes());
    }

    #[test]
    fn no_history_seeds_node_zero() {
        let t = presets::epyc_9354_2s();
        let m = select_mask(&t, None, 16);
        assert_eq!(m.count(), 2);
        assert!(m.contains(NodeId::new(0)));
        assert!(m.contains(NodeId::new(1))); // same socket neighbour
    }

    #[test]
    fn seeds_fastest_node_and_stays_on_socket() {
        let t = presets::epyc_9354_2s();
        let mut ptt = Ptt::new();
        let site = SiteId::new(0);
        // Node 6 (socket 1) is observed fastest.
        let mut speeds = vec![0.5; 8];
        speeds[6] = 0.95;
        let report = TaskloopReport {
            node_speed: speeds,
            ..TaskloopReport::synthetic(100.0, 64)
        };
        ptt.record(site, 64, t.all_nodes(), StealPolicy::Strict, &report);
        let m = select_mask(&t, ptt.site(site), 24);
        assert_eq!(m.count(), 3);
        assert!(m.contains(NodeId::new(6)));
        for n in m.iter() {
            assert_eq!(t.socket_of_node(n).index(), 1, "mask must stay on socket 1");
        }
    }

    #[test]
    fn within_partition_stays_inside() {
        let t = presets::epyc_9354_2s();
        // Partition: socket 1 (nodes 4..8).
        let allowed = NodeMask::from_bits(0b1111_0000);
        for threads in [1, 8, 16, 24, 32, 64] {
            let m = select_mask_within(&t, allowed, None, threads);
            assert!(
                m.is_subset(allowed),
                "threads={threads}: {m:?} escapes partition"
            );
            assert!(!m.is_empty());
        }
        // Full partition demand (or more) returns the whole partition.
        assert_eq!(select_mask_within(&t, allowed, None, 32), allowed);
        assert_eq!(select_mask_within(&t, allowed, None, 64), allowed);
    }

    #[test]
    fn within_partition_ignores_foreign_fastest_node() {
        let t = presets::epyc_9354_2s();
        let mut ptt = Ptt::new();
        let site = SiteId::new(0);
        // Node 1 (outside the partition) is observed fastest.
        let mut speeds = vec![0.5; 8];
        speeds[1] = 0.95;
        let report = TaskloopReport {
            node_speed: speeds,
            ..TaskloopReport::synthetic(100.0, 64)
        };
        ptt.record(site, 64, t.all_nodes(), StealPolicy::Strict, &report);
        let allowed = NodeMask::from_bits(0b1111_0000);
        let m = select_mask_within(&t, allowed, ptt.site(site), 8);
        assert_eq!(m.count(), 1);
        assert!(
            m.is_subset(allowed),
            "foreign fastest node must not leak in"
        );
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn within_empty_partition_panics() {
        let t = presets::tiny_2x4();
        select_mask_within(&t, NodeMask::EMPTY, None, 4);
    }

    #[test]
    fn spills_cross_socket_only_when_needed() {
        let t = presets::epyc_9354_2s();
        let m = select_mask(&t, None, 40); // 5 nodes
        assert_eq!(m.count(), 5);
        let same_socket = m
            .iter()
            .filter(|&n| t.socket_of_node(n).index() == 0)
            .count();
        assert_eq!(same_socket, 4, "first socket fully used before crossing");
    }
}
