//! Optimization objectives for configuration selection.
//!
//! The paper samples only execution time, but notes (§3.5) that the PTT
//! machinery "can, for example, instead be used to locate and employ the
//! optimal configuration based on other metrics, such as energy efficiency"
//! (citing JOSS and SWEEP). This module implements that extension: the
//! scheduler scores PTT entries through an [`Objective`], so the same
//! Algorithm-1 search can minimize time, an energy proxy, or energy-delay
//! product.
//!
//! Without per-core power telemetry the energy proxy assumes active cores
//! draw roughly constant power, so `E ∝ threads × time` — the classic
//! first-order CMP model (Suleman et al.'s FDT uses the same reasoning).

/// What the configuration search minimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Objective {
    /// Wall time — the paper's configuration.
    #[default]
    Time,
    /// Energy proxy: active threads × time (core-seconds).
    Energy,
    /// Energy-delay product: threads × time².
    EnergyDelay,
}

impl Objective {
    /// The score of a configuration (lower is better).
    pub fn score(self, threads: usize, time_ns: f64) -> f64 {
        match self {
            Objective::Time => time_ns,
            Objective::Energy => threads as f64 * time_ns,
            Objective::EnergyDelay => threads as f64 * time_ns * time_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ignores_threads() {
        assert_eq!(Objective::Time.score(64, 100.0), 100.0);
        assert_eq!(Objective::Time.score(8, 100.0), 100.0);
    }

    #[test]
    fn energy_prefers_fewer_threads_at_equal_time() {
        let full = Objective::Energy.score(64, 100.0);
        let half = Objective::Energy.score(32, 100.0);
        assert!(half < full);
        // But not at any cost: 32 threads twice as slow loses.
        assert!(Objective::Energy.score(32, 210.0) > full);
    }

    #[test]
    fn edp_is_between_time_and_energy() {
        // 32 threads, 1.3× slower: time says worse, energy says better.
        let t64 = 100.0;
        let t32 = 130.0;
        assert!(Objective::Time.score(32, t32) > Objective::Time.score(64, t64));
        assert!(Objective::Energy.score(32, t32) < Objective::Energy.score(64, t64));
        // EDP: 32·130² = 540k vs 64·100² = 640k → still prefers 32 here,
        // but flips at 1.42× slower (32·142² ≈ 645k).
        assert!(Objective::EnergyDelay.score(32, t32) < Objective::EnergyDelay.score(64, t64));
        assert!(Objective::EnergyDelay.score(32, 143.0) > Objective::EnergyDelay.score(64, t64));
    }

    #[test]
    fn default_is_time() {
        assert_eq!(Objective::default(), Objective::Time);
    }
}
