//! The policy abstraction and the paper's comparison baselines.

use crate::config::Decision;
use crate::report::TaskloopReport;
use crate::site::SiteId;

/// A scheduling policy: decides a configuration for each taskloop
/// invocation and learns from the resulting report.
///
/// Policies are pure state machines — they never execute anything. The
/// drivers in [`crate::driver`] connect a policy to an execution backend.
pub trait Policy {
    /// Chooses the configuration for the next invocation of `site`.
    fn decide(&mut self, site: SiteId) -> Decision;

    /// Feeds back the measured outcome of an invocation that ran under
    /// `decision`.
    fn record(&mut self, site: SiteId, decision: &Decision, report: &TaskloopReport);

    /// Short human-readable name for harness output.
    fn name(&self) -> &'static str;

    /// Time the policy spends making one decision, charged to the critical
    /// path by the drivers (ILAN's configuration-selection cost; zero for
    /// the baselines).
    fn decision_overhead_ns(&self) -> f64 {
        0.0
    }
}

/// The default LLVM-style tasking scheduler: flat queue, all workers, random
/// placement. The paper's baseline.
#[derive(Debug, Default, Clone)]
pub struct BaselinePolicy;

impl Policy for BaselinePolicy {
    fn decide(&mut self, _site: SiteId) -> Decision {
        Decision::Flat
    }

    fn record(&mut self, _site: SiteId, _decision: &Decision, _report: &TaskloopReport) {}

    fn name(&self) -> &'static str {
        "baseline"
    }
}

/// OpenMP `for schedule(static)` work-sharing (paper §5.6 comparison).
#[derive(Debug, Default, Clone)]
pub struct WorkSharingPolicy;

impl Policy for WorkSharingPolicy {
    fn decide(&mut self, _site: SiteId) -> Decision {
        Decision::WorkSharing
    }

    fn record(&mut self, _site: SiteId, _decision: &Decision, _report: &TaskloopReport) {}

    fn name(&self) -> &'static str {
        "worksharing"
    }
}

/// Always returns one fixed decision. Useful for sweeps and ablations
/// ("what if every loop ran with 24 threads on nodes {0,1,2}?").
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    decision: Decision,
}

impl FixedPolicy {
    /// A policy that always decides `decision`.
    pub fn new(decision: Decision) -> Self {
        FixedPolicy { decision }
    }
}

impl Policy for FixedPolicy {
    fn decide(&mut self, _site: SiteId) -> Decision {
        self.decision.clone()
    }

    fn record(&mut self, _site: SiteId, _decision: &Decision, _report: &TaskloopReport) {}

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_runtime::StealPolicy;
    use ilan_topology::NodeMask;

    #[test]
    fn baseline_always_flat() {
        let mut p = BaselinePolicy;
        for i in 0..5 {
            assert_eq!(p.decide(SiteId::new(i)), Decision::Flat);
        }
        assert_eq!(p.decision_overhead_ns(), 0.0);
        assert_eq!(p.name(), "baseline");
    }

    #[test]
    fn worksharing_always_static() {
        let mut p = WorkSharingPolicy;
        assert_eq!(p.decide(SiteId::new(0)), Decision::WorkSharing);
    }

    #[test]
    fn fixed_returns_its_decision() {
        let d = Decision::Hierarchical {
            threads: 24,
            mask: NodeMask::first_n(3),
            steal: StealPolicy::Full,
            strict_fraction: 0.5,
        };
        let mut p = FixedPolicy::new(d.clone());
        assert_eq!(p.decide(SiteId::new(7)), d);
        // record is a no-op but must not panic.
        p.record(SiteId::new(7), &d, &TaskloopReport::synthetic(1.0, 24));
    }
}
