//! The Performance Trace Table (PTT).
//!
//! The PTT links taskloop configurations to measured execution times
//! (paper §3.1): per site it stores one entry per explored
//! `(num_threads, steal_policy)` pair with a running mean of observed wall
//! times, plus per-node speed statistics that drive the node-mask selection
//! ("the fastest NUMA node is retrieved from the PTT", §3.2).

use crate::report::TaskloopReport;
use crate::site::SiteId;
use ilan_runtime::StealPolicy;
use ilan_topology::{NodeId, NodeMask};
use std::collections::HashMap;

/// Incremental mean.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningMean {
    count: u64,
    mean: f64,
}

impl RunningMean {
    /// Reconstructs a mean from its stored parts (PTT persistence).
    pub fn from_parts(count: u64, mean: f64) -> Self {
        RunningMean { count, mean }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
    }

    /// The mean so far (0 if no samples).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// PTT entry: one explored configuration of one site.
#[derive(Clone, Debug)]
pub struct ConfigEntry {
    /// Active thread count of the configuration.
    pub threads: usize,
    /// Steal policy the configuration ran with.
    pub steal: StealPolicy,
    /// Node mask most recently used with this configuration.
    pub mask: NodeMask,
    /// Running mean of wall times, ns.
    pub time: RunningMean,
}

/// Per-site table.
#[derive(Clone, Debug, Default)]
pub struct SiteTable {
    entries: Vec<ConfigEntry>,
    node_speed: Vec<RunningMean>,
    invocations: u64,
}

impl SiteTable {
    /// All explored configurations.
    pub fn entries(&self) -> &[ConfigEntry] {
        &self.entries
    }

    /// Number of recorded invocations of the site.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The entry for `(threads, steal)`, if explored.
    pub fn entry(&self, threads: usize, steal: StealPolicy) -> Option<&ConfigEntry> {
        self.entries
            .iter()
            .find(|e| e.threads == threads && e.steal == steal)
    }

    /// The fastest configuration by mean time (ties: fewer threads, then
    /// strict before full).
    pub fn fastest(&self) -> Option<&ConfigEntry> {
        self.best_by(crate::Objective::Time)
    }

    /// The second fastest configuration.
    pub fn second_fastest(&self) -> Option<&ConfigEntry> {
        self.ranked(crate::Objective::Time).into_iter().nth(1)
    }

    /// The best configuration under an arbitrary [`Objective`]
    /// (ties: fewer threads, then strict before full).
    ///
    /// [`Objective`]: crate::Objective
    pub fn best_by(&self, objective: crate::Objective) -> Option<&ConfigEntry> {
        self.ranked(objective).into_iter().next()
    }

    /// The runner-up configuration under an arbitrary objective.
    pub fn second_by(&self, objective: crate::Objective) -> Option<&ConfigEntry> {
        self.ranked(objective).into_iter().nth(1)
    }

    fn ranked(&self, objective: crate::Objective) -> Vec<&ConfigEntry> {
        let mut v: Vec<&ConfigEntry> = self.entries.iter().collect();
        v.sort_by(|a, b| {
            objective
                .score(a.threads, a.time.mean())
                .partial_cmp(&objective.score(b.threads, b.time.mean()))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.threads.cmp(&b.threads))
                .then((a.steal == StealPolicy::Full).cmp(&(b.steal == StealPolicy::Full)))
        });
        v
    }

    /// Renders the table for debugging: one line per explored configuration,
    /// best first under the time objective.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "PTT ({} invocations)", self.invocations);
        for e in self.ranked(crate::Objective::Time) {
            let _ = writeln!(
                out,
                "  threads={:<3} steal={:<6} mask={:?} mean={:.3}ms over {} run(s)",
                e.threads,
                format!("{:?}", e.steal),
                e.mask,
                e.time.mean() / 1e6,
                e.time.count(),
            );
        }
        out
    }

    /// The node with the best mean observed speed for this site, if any.
    pub fn fastest_node(&self) -> Option<NodeId> {
        self.node_speed
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count() > 0 && s.mean() > 0.0)
            .max_by(|(ia, a), (ib, b)| {
                a.mean()
                    .partial_cmp(&b.mean())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| NodeId::new(i))
    }
}

/// The Performance Trace Table: one [`SiteTable`] per taskloop site.
#[derive(Clone, Debug, Default)]
pub struct Ptt {
    sites: HashMap<SiteId, SiteTable>,
}

impl Ptt {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invocation of `site` under the given configuration.
    pub fn record(
        &mut self,
        site: SiteId,
        threads: usize,
        mask: NodeMask,
        steal: StealPolicy,
        report: &TaskloopReport,
    ) {
        let table = self.sites.entry(site).or_default();
        table.invocations += 1;
        match table
            .entries
            .iter_mut()
            .find(|e| e.threads == threads && e.steal == steal)
        {
            Some(e) => {
                e.time.push(report.time_ns);
                e.mask = mask;
            }
            None => {
                let mut time = RunningMean::default();
                time.push(report.time_ns);
                table.entries.push(ConfigEntry {
                    threads,
                    steal,
                    mask,
                    time,
                });
            }
        }
        if table.node_speed.len() < report.node_speed.len() {
            table
                .node_speed
                .resize(report.node_speed.len(), RunningMean::default());
        }
        for (i, &s) in report.node_speed.iter().enumerate() {
            if s > 0.0 {
                table.node_speed[i].push(s);
            }
        }
    }

    /// The table for `site`, if it has been recorded.
    pub fn site(&self, site: SiteId) -> Option<&SiteTable> {
        self.sites.get(&site)
    }

    /// Number of invocations recorded for `site`.
    pub fn invocations(&self, site: SiteId) -> u64 {
        self.sites.get(&site).map_or(0, |t| t.invocations)
    }

    /// Number of distinct sites seen.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// All recorded site ids, ascending.
    pub fn site_ids(&self) -> Vec<SiteId> {
        let mut ids: Vec<SiteId> = self.sites.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Serializes the table to a plain-text format (see [`load_text`]).
    ///
    /// The format is line-based and human-diffable; floating-point values
    /// use Rust's shortest round-trip representation, so
    /// `load_text(save_text())` reproduces the table exactly. Sites are
    /// emitted in ascending id order, making the output deterministic.
    ///
    /// [`load_text`]: Ptt::load_text
    pub fn save_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("ptt v1\n");
        for id in self.site_ids() {
            let table = &self.sites[&id];
            let _ = writeln!(out, "site {} invocations={}", id.raw(), table.invocations);
            for e in &table.entries {
                let steal = match e.steal {
                    StealPolicy::Strict => "strict",
                    StealPolicy::Full => "full",
                };
                let _ = writeln!(
                    out,
                    "config threads={} steal={} mask={:#x} count={} mean={}",
                    e.threads,
                    steal,
                    e.mask.bits(),
                    e.time.count(),
                    e.time.mean(),
                );
            }
            for (i, s) in table.node_speed.iter().enumerate() {
                let _ = writeln!(out, "node {} count={} mean={}", i, s.count(), s.mean());
            }
        }
        out
    }

    /// Parses a table previously produced by [`save_text`](Ptt::save_text).
    ///
    /// Returns a descriptive error for any malformed line; an empty or
    /// header-only document yields an empty table.
    pub fn load_text(text: &str) -> Result<Ptt, String> {
        fn field<'a>(tok: &'a str, key: &str, line: usize) -> Result<&'a str, String> {
            tok.strip_prefix(key)
                .and_then(|t| t.strip_prefix('='))
                .ok_or_else(|| format!("line {line}: expected `{key}=...`, got `{tok}`"))
        }
        fn parse<T: std::str::FromStr>(s: &str, what: &str, line: usize) -> Result<T, String> {
            s.parse()
                .map_err(|_| format!("line {line}: invalid {what} `{s}`"))
        }

        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == "ptt v1" => {}
            other => {
                return Err(format!(
                    "missing `ptt v1` header (got {:?})",
                    other.map(|(_, l)| l)
                ))
            }
        }

        let mut ptt = Ptt::new();
        let mut current: Option<SiteId> = None;
        for (idx, raw) in lines {
            let line = idx + 1; // 1-based for messages
            let l = raw.trim();
            if l.is_empty() || l.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = l.split_whitespace().collect();
            match toks[0] {
                "site" => {
                    if toks.len() != 3 {
                        return Err(format!("line {line}: malformed site line"));
                    }
                    let id = SiteId::new(parse(toks[1], "site id", line)?);
                    let inv: u64 = parse(field(toks[2], "invocations", line)?, "count", line)?;
                    let table = ptt.sites.entry(id).or_default();
                    table.invocations = inv;
                    current = Some(id);
                }
                "config" => {
                    let site = current
                        .ok_or_else(|| format!("line {line}: `config` before any `site` line"))?;
                    if toks.len() != 6 {
                        return Err(format!("line {line}: malformed config line"));
                    }
                    let threads: usize =
                        parse(field(toks[1], "threads", line)?, "thread count", line)?;
                    let steal = match field(toks[2], "steal", line)? {
                        "strict" => StealPolicy::Strict,
                        "full" => StealPolicy::Full,
                        other => {
                            return Err(format!("line {line}: unknown steal policy `{other}`"))
                        }
                    };
                    let bits_str = field(toks[3], "mask", line)?;
                    let bits =
                        u64::from_str_radix(bits_str.strip_prefix("0x").unwrap_or(bits_str), 16)
                            .map_err(|_| format!("line {line}: invalid mask `{bits_str}`"))?;
                    let count: u64 = parse(field(toks[4], "count", line)?, "count", line)?;
                    let mean: f64 = parse(field(toks[5], "mean", line)?, "mean", line)?;
                    let table = ptt.sites.get_mut(&site).expect("site exists");
                    if table
                        .entries
                        .iter()
                        .any(|e| e.threads == threads && e.steal == steal)
                    {
                        return Err(format!(
                            "line {line}: duplicate config ({threads}, {steal:?})"
                        ));
                    }
                    table.entries.push(ConfigEntry {
                        threads,
                        steal,
                        mask: NodeMask::from_bits(bits),
                        time: RunningMean::from_parts(count, mean),
                    });
                }
                "node" => {
                    let site = current
                        .ok_or_else(|| format!("line {line}: `node` before any `site` line"))?;
                    if toks.len() != 4 {
                        return Err(format!("line {line}: malformed node line"));
                    }
                    let i: usize = parse(toks[1], "node index", line)?;
                    let count: u64 = parse(field(toks[2], "count", line)?, "count", line)?;
                    let mean: f64 = parse(field(toks[3], "mean", line)?, "mean", line)?;
                    let table = ptt.sites.get_mut(&site).expect("site exists");
                    if table.node_speed.len() <= i {
                        table.node_speed.resize(i + 1, RunningMean::default());
                    }
                    table.node_speed[i] = RunningMean::from_parts(count, mean);
                }
                other => return Err(format!("line {line}: unknown record `{other}`")),
            }
        }
        Ok(ptt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time: f64, speeds: &[f64]) -> TaskloopReport {
        TaskloopReport {
            time_ns: time,
            threads: 8,
            node_speed: speeds.to_vec(),
            sched_overhead_ns: 0.0,
            migrations: 0,
            locality: 1.0,
            dram_bytes: 0.0,
        }
    }

    #[test]
    fn running_mean() {
        let mut m = RunningMean::default();
        assert_eq!(m.mean(), 0.0);
        m.push(10.0);
        m.push(20.0);
        m.push(30.0);
        assert!((m.mean() - 20.0).abs() < 1e-12);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn fastest_and_second() {
        let mut ptt = Ptt::new();
        let s = SiteId::new(1);
        let mask = NodeMask::first_n(8);
        ptt.record(s, 64, mask, StealPolicy::Strict, &report(100.0, &[]));
        ptt.record(s, 32, mask, StealPolicy::Strict, &report(60.0, &[]));
        ptt.record(s, 8, mask, StealPolicy::Strict, &report(80.0, &[]));
        let t = ptt.site(s).unwrap();
        assert_eq!(t.fastest().unwrap().threads, 32);
        assert_eq!(t.second_fastest().unwrap().threads, 8);
        assert_eq!(t.invocations(), 3);
    }

    #[test]
    fn repeated_config_averages() {
        let mut ptt = Ptt::new();
        let s = SiteId::new(0);
        let mask = NodeMask::first_n(2);
        ptt.record(s, 16, mask, StealPolicy::Strict, &report(100.0, &[]));
        ptt.record(s, 16, mask, StealPolicy::Strict, &report(200.0, &[]));
        let e = ptt.site(s).unwrap().entry(16, StealPolicy::Strict).unwrap();
        assert!((e.time.mean() - 150.0).abs() < 1e-12);
        assert_eq!(e.time.count(), 2);
        assert_eq!(ptt.site(s).unwrap().entries().len(), 1);
    }

    #[test]
    fn strict_and_full_are_distinct_entries() {
        let mut ptt = Ptt::new();
        let s = SiteId::new(0);
        let mask = NodeMask::first_n(2);
        ptt.record(s, 16, mask, StealPolicy::Strict, &report(100.0, &[]));
        ptt.record(s, 16, mask, StealPolicy::Full, &report(90.0, &[]));
        let t = ptt.site(s).unwrap();
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.fastest().unwrap().steal, StealPolicy::Full);
    }

    #[test]
    fn tie_prefers_fewer_threads() {
        let mut ptt = Ptt::new();
        let s = SiteId::new(0);
        let mask = NodeMask::first_n(8);
        ptt.record(s, 64, mask, StealPolicy::Strict, &report(100.0, &[]));
        ptt.record(s, 32, mask, StealPolicy::Strict, &report(100.0, &[]));
        assert_eq!(ptt.site(s).unwrap().fastest().unwrap().threads, 32);
    }

    #[test]
    fn fastest_node_tracks_speeds() {
        let mut ptt = Ptt::new();
        let s = SiteId::new(0);
        let mask = NodeMask::first_n(4);
        ptt.record(
            s,
            32,
            mask,
            StealPolicy::Strict,
            &report(100.0, &[0.5, 0.9, 0.7, 0.0]),
        );
        ptt.record(
            s,
            32,
            mask,
            StealPolicy::Strict,
            &report(100.0, &[0.6, 0.8, 0.7, 0.0]),
        );
        assert_eq!(ptt.site(s).unwrap().fastest_node(), Some(NodeId::new(1)));
    }

    #[test]
    fn unknown_site_is_empty() {
        let ptt = Ptt::new();
        assert!(ptt.site(SiteId::new(9)).is_none());
        assert_eq!(ptt.invocations(SiteId::new(9)), 0);
    }

    #[test]
    fn render_lists_configs_best_first() {
        let mut ptt = Ptt::new();
        let s = SiteId::new(0);
        let mask = NodeMask::first_n(8);
        ptt.record(s, 64, mask, StealPolicy::Strict, &report(2e6, &[]));
        ptt.record(s, 32, mask, StealPolicy::Strict, &report(1e6, &[]));
        let text = ptt.site(s).unwrap().render();
        assert!(text.contains("PTT (2 invocations)"));
        let pos32 = text.find("threads=32").unwrap();
        let pos64 = text.find("threads=64").unwrap();
        assert!(pos32 < pos64, "best config must render first:\n{text}");
    }

    #[test]
    fn save_load_round_trip() {
        let mut ptt = Ptt::new();
        let a = SiteId::new(0);
        let b = SiteId::new(7);
        let mask = NodeMask::from_bits(0b1010);
        ptt.record(
            a,
            64,
            mask,
            StealPolicy::Strict,
            &report(1e6 / 3.0, &[0.5, 0.9]),
        );
        ptt.record(
            a,
            32,
            mask,
            StealPolicy::Strict,
            &report(0.7e6, &[0.6, 0.0]),
        );
        ptt.record(a, 32, mask, StealPolicy::Full, &report(0.65e6, &[]));
        ptt.record(
            b,
            8,
            NodeMask::first_n(1),
            StealPolicy::Strict,
            &report(5e5, &[0.4]),
        );

        let text = ptt.save_text();
        let loaded = Ptt::load_text(&text).expect("round trip");
        assert_eq!(loaded.num_sites(), 2);
        for site in [a, b] {
            let orig = ptt.site(site).unwrap();
            let copy = loaded.site(site).unwrap();
            assert_eq!(copy.invocations(), orig.invocations());
            assert_eq!(copy.entries().len(), orig.entries().len());
            for (eo, ec) in orig.entries().iter().zip(copy.entries()) {
                assert_eq!(ec.threads, eo.threads);
                assert_eq!(ec.steal, eo.steal);
                assert_eq!(ec.mask, eo.mask);
                assert_eq!(ec.time.count(), eo.time.count());
                assert_eq!(ec.time.mean(), eo.time.mean(), "exact float round trip");
            }
            assert_eq!(copy.fastest_node(), orig.fastest_node());
            assert_eq!(
                copy.fastest().unwrap().threads,
                orig.fastest().unwrap().threads
            );
        }
        // Serialization is deterministic and stable under a round trip.
        assert_eq!(loaded.save_text(), text);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Ptt::load_text("").is_err(), "missing header");
        assert!(Ptt::load_text("ptt v2\n").is_err(), "wrong version");
        assert!(
            Ptt::load_text("ptt v1\nconfig threads=8 steal=strict mask=0x1 count=1 mean=1")
                .is_err(),
            "config before site"
        );
        assert!(
            Ptt::load_text(
                "ptt v1\nsite 0 invocations=1\nconfig threads=8 steal=lazy mask=0x1 count=1 mean=1"
            )
            .is_err(),
            "unknown steal policy"
        );
        assert!(
            Ptt::load_text("ptt v1\nwat 1 2 3").is_err(),
            "unknown record type"
        );
        // Duplicate configs are rejected rather than silently merged.
        let dup = "ptt v1\nsite 0 invocations=2\n\
                   config threads=8 steal=strict mask=0x1 count=1 mean=1\n\
                   config threads=8 steal=strict mask=0x1 count=1 mean=2\n";
        assert!(Ptt::load_text(dup).is_err());
    }

    #[test]
    fn load_accepts_comments_and_blanks() {
        let text = "ptt v1\n\n# a comment\nsite 3 invocations=1\nconfig threads=4 steal=full mask=0x1 count=1 mean=42.5\n";
        let ptt = Ptt::load_text(text).unwrap();
        let t = ptt.site(SiteId::new(3)).unwrap();
        assert_eq!(t.invocations(), 1);
        assert_eq!(t.fastest().unwrap().steal, StealPolicy::Full);
        assert_eq!(t.fastest().unwrap().time.mean(), 42.5);
    }

    #[test]
    fn empty_table_round_trips() {
        let ptt = Ptt::new();
        let loaded = Ptt::load_text(&ptt.save_text()).unwrap();
        assert_eq!(loaded.num_sites(), 0);
    }

    #[test]
    fn idle_nodes_do_not_dilute_speed() {
        let mut ptt = Ptt::new();
        let s = SiteId::new(0);
        let mask = NodeMask::first_n(2);
        // Node 1 idle in the second run; its mean must stay at 0.9.
        ptt.record(s, 8, mask, StealPolicy::Strict, &report(1.0, &[0.5, 0.9]));
        ptt.record(s, 8, mask, StealPolicy::Strict, &report(1.0, &[0.5, 0.0]));
        let t = ptt.site(s).unwrap();
        assert_eq!(t.fastest_node(), Some(NodeId::new(1)));
    }
}
