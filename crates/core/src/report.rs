//! Normalized execution feedback.
//!
//! Both execution backends (the simulator and the native runtime) reduce an
//! invocation to a [`TaskloopReport`]; the ILAN policy consumes only this
//! type, which is what makes the policy backend-agnostic — mirroring the
//! paper's design decision to sample only execution time so the scheduler
//! stays platform-independent (§3.5).

use ilan_numasim::LoopOutcome;
use ilan_runtime::LoopReport;
use ilan_topology::NodeId;

/// Normalized result of one taskloop invocation.
#[derive(Clone, Debug)]
pub struct TaskloopReport {
    /// Wall time of the invocation (dispatch to barrier), ns.
    pub time_ns: f64,
    /// Worker threads that participated.
    pub threads: usize,
    /// Observed per-node efficiency (ideal work per busy time for the
    /// simulator; task throughput for the native runtime); `0` for nodes
    /// that executed nothing. Used to find the fastest node for the
    /// node-mask selection.
    pub node_speed: Vec<f64>,
    /// Accumulated scheduling overhead, ns.
    pub sched_overhead_ns: f64,
    /// Chunks that executed away from their assigned node.
    pub migrations: usize,
    /// Fraction of chunks that executed on their assigned node.
    pub locality: f64,
    /// DRAM traffic of the invocation, bytes (simulator-measured; the
    /// native runtime reports 0 unless hardware counters are wired in —
    /// mirroring the paper artifact's optional `PERF_COUNTERS`).
    pub dram_bytes: f64,
}

impl TaskloopReport {
    /// A minimal synthetic report (tests, examples).
    pub fn synthetic(time_ns: f64, threads: usize) -> Self {
        TaskloopReport {
            time_ns,
            threads,
            node_speed: Vec::new(),
            sched_overhead_ns: 0.0,
            migrations: 0,
            locality: 1.0,
            dram_bytes: 0.0,
        }
    }

    /// The fastest node by observed speed, if any node executed work.
    pub fn fastest_node(&self) -> Option<NodeId> {
        self.node_speed
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0.0)
            .max_by(|(ia, a), (ib, b)| {
                a.partial_cmp(b)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| NodeId::new(i))
    }
}

impl From<&LoopOutcome> for TaskloopReport {
    fn from(o: &LoopOutcome) -> Self {
        TaskloopReport {
            time_ns: o.makespan_ns,
            threads: o.threads,
            node_speed: o.nodes.iter().map(|n| n.speed()).collect(),
            sched_overhead_ns: o.sched_overhead_ns,
            migrations: o.migrations,
            locality: o.locality_fraction(),
            dram_bytes: o.total_dram_bytes(),
        }
    }
}

impl From<&LoopReport> for TaskloopReport {
    fn from(r: &LoopReport) -> Self {
        TaskloopReport {
            time_ns: r.makespan.as_nanos() as f64,
            threads: r.threads,
            node_speed: r
                .nodes
                .iter()
                .map(|n| {
                    if n.busy.is_zero() {
                        0.0
                    } else {
                        n.tasks as f64 / n.busy.as_secs_f64()
                    }
                })
                .collect(),
            sched_overhead_ns: r.sched_overhead.as_nanos() as f64,
            migrations: r.migrations,
            locality: r.locality_fraction(),
            dram_bytes: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_numasim::NodeOutcome;
    use std::time::Duration;

    #[test]
    fn from_sim_outcome() {
        let o = LoopOutcome {
            makespan_ns: 5000.0,
            sched_overhead_ns: 100.0,
            nodes: vec![
                NodeOutcome {
                    tasks: 2,
                    busy_ns: 1000.0,
                    ideal_ns: 900.0,
                    local_tasks: 2,
                    dram_bytes: 0.0,
                },
                NodeOutcome::default(),
            ],
            migrations: 1,
            threads: 8,
            trace: Vec::new(),
            events: Default::default(),
        };
        let r = TaskloopReport::from(&o);
        assert_eq!(r.time_ns, 5000.0);
        assert_eq!(r.threads, 8);
        assert!((r.node_speed[0] - 0.9).abs() < 1e-12);
        assert_eq!(r.node_speed[1], 0.0);
        assert_eq!(r.fastest_node(), Some(NodeId::new(0)));
    }

    #[test]
    fn from_native_report() {
        let n = LoopReport {
            makespan: Duration::from_micros(10),
            sched_overhead: Duration::from_nanos(42),
            nodes: vec![ilan_runtime::NodeReport {
                tasks: 5,
                busy: Duration::from_micros(50),
                local_tasks: 5,
            }],
            migrations: 0,
            threads: 4,
            degraded: false,
        };
        let r = TaskloopReport::from(&n);
        assert_eq!(r.time_ns, 10_000.0);
        assert_eq!(r.sched_overhead_ns, 42.0);
        assert!((r.locality - 1.0).abs() < 1e-12);
        assert!(r.node_speed[0] > 0.0);
    }

    #[test]
    fn fastest_node_none_when_empty() {
        assert_eq!(TaskloopReport::synthetic(1.0, 1).fastest_node(), None);
    }
}
