//! The ILAN scheduler: moldable thread-count search, node-mask selection and
//! steal-policy trial, per taskloop site.
//!
//! The per-site lifecycle is:
//!
//! ```text
//! invocation 1:  m_max threads, all nodes, strict      (priming)
//! invocation 2:  m_max/2 threads, best-seeded mask, strict  (priming)
//! invocation 3+: Algorithm 1 exploration, strict            (Searching)
//! search done:   one invocation with steal_policy = full    (StealTrial)
//! afterwards:    the winning configuration forever          (Settled)
//! ```
//!
//! With moldability disabled (the paper's Figure 4 ablation) the search is
//! skipped: the thread count stays at `m_max` and only the hierarchical
//! distribution and the steal-policy trial remain.

use crate::algorithm1::{select_threads, SelectionInput};
use crate::config::Decision;
use crate::metrics::SchedulerMetrics;
use crate::nodemask::select_mask_within;
use crate::policy::Policy;
use crate::ptt::Ptt;
use crate::report::TaskloopReport;
use crate::site::SiteId;
use ilan_runtime::StealPolicy;
use ilan_topology::{NodeMask, Topology};
use std::collections::HashMap;

/// Tuning parameters of the ILAN scheduler.
#[derive(Clone, Debug)]
pub struct IlanParams {
    /// Machine description.
    pub topology: Topology,
    /// Thread-count granularity `g`. The paper sets it to the NUMA node
    /// size; any value in `1..=m_max/2` is valid (§3.5).
    pub granularity: usize,
    /// Fraction of each node's chunks that are NUMA-strict under the `full`
    /// steal policy (the stealable tail is `1 − strict_fraction`).
    pub strict_fraction: f64,
    /// Whether the moldability search runs. `false` reproduces the paper's
    /// "ILAN without moldability" ablation (Figure 4): all cores always.
    pub moldability: bool,
    /// Whether the post-search `full`-policy trial runs. When disabled the
    /// policy stays `strict` forever.
    pub steal_trial: bool,
    /// Cost of one configuration selection, charged to the critical path by
    /// the drivers.
    pub decision_cost_ns: f64,
    /// What the search minimizes. The paper uses wall time; the PTT can
    /// equally drive energy-oriented selection (§3.5).
    pub objective: crate::Objective,
    /// The NUMA partition this scheduler may use. Defaults to the whole
    /// machine; a multi-tenant co-scheduler (`ilan-server`) confines each
    /// tenant to a disjoint partition. All thread counts, masks and the
    /// moldability search operate within this partition.
    pub allowed_mask: NodeMask,
}

impl IlanParams {
    /// Defaults for a topology: `g` = NUMA node size (clamped to
    /// `1..=m_max/2`), a half-stealable tail, moldability and the steal
    /// trial enabled.
    pub fn for_topology(topology: &Topology) -> Self {
        let m_max = topology.num_cores();
        let granularity = topology.cores_per_node().clamp(1, (m_max / 2).max(1));
        IlanParams {
            topology: topology.clone(),
            granularity,
            strict_fraction: 0.5,
            moldability: true,
            steal_trial: true,
            decision_cost_ns: 800.0,
            objective: crate::Objective::default(),
            allowed_mask: topology.all_nodes(),
        }
    }

    /// The Figure-4 ablation: hierarchical scheduling only, all cores.
    pub fn no_moldability(topology: &Topology) -> Self {
        IlanParams {
            moldability: false,
            ..Self::for_topology(topology)
        }
    }

    /// Overrides the granularity (builder style).
    pub fn granularity(mut self, g: usize) -> Self {
        assert!(g >= 1, "granularity must be at least 1");
        self.granularity = g;
        self
    }

    /// Overrides the strict fraction (builder style).
    pub fn strict_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "strict_fraction must be in [0,1]");
        self.strict_fraction = f;
        self
    }

    /// Disables the steal-policy trial (builder style).
    pub fn without_steal_trial(mut self) -> Self {
        self.steal_trial = false;
        self
    }

    /// Selects the optimization objective (builder style).
    pub fn objective(mut self, objective: crate::Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Confines the scheduler to a NUMA partition (builder style). The
    /// granularity is re-clamped to the partition size so the moldability
    /// search stays meaningful on small partitions.
    ///
    /// # Panics
    /// Panics if `mask` is empty or references nodes outside the topology.
    pub fn restrict_to(mut self, mask: NodeMask) -> Self {
        assert!(!mask.is_empty(), "partition must contain at least one node");
        assert!(
            mask.is_subset(self.topology.all_nodes()),
            "partition references nodes outside the topology"
        );
        self.allowed_mask = mask;
        let m_max = self.partition_cores();
        self.granularity = self.topology.cores_per_node().clamp(1, (m_max / 2).max(1));
        self
    }

    /// Number of cores in the scheduler's partition.
    pub fn partition_cores(&self) -> usize {
        self.allowed_mask.count() * self.topology.cores_per_node()
    }
}

/// Where a site is in its configuration lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchPhase {
    /// Still exploring thread counts (includes the two priming runs).
    Searching,
    /// Thread count fixed; evaluating `steal_policy = full` for one run.
    StealTrial,
    /// Configuration frozen.
    Settled,
}

#[derive(Clone, Debug)]
struct SiteState {
    phase: SearchPhase,
    /// The decision the next invocation will use.
    next: Decision,
    /// Mean time of the best strict configuration at search completion
    /// (compared against the full-policy trial).
    strict_best_ns: f64,
}

/// The ILAN scheduler (see crate docs).
pub struct IlanScheduler {
    params: IlanParams,
    ptt: Ptt,
    sites: HashMap<SiteId, SiteState>,
    metrics: Option<SchedulerMetrics>,
    /// Sites seeded Settled by [`with_warm_ptt`](Self::with_warm_ptt),
    /// reported to the metrics layer when one is attached.
    warm_sites: usize,
}

impl IlanScheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    /// Panics if `granularity` is 0 or exceeds the core count.
    pub fn new(params: IlanParams) -> Self {
        assert!(params.granularity >= 1, "granularity must be at least 1");
        assert!(
            !params.allowed_mask.is_empty(),
            "partition must contain at least one node"
        );
        assert!(
            params.allowed_mask.is_subset(params.topology.all_nodes()),
            "partition references nodes outside the topology"
        );
        assert!(
            params.granularity <= params.partition_cores(),
            "granularity exceeds machine size"
        );
        IlanScheduler {
            params,
            ptt: Ptt::new(),
            sites: HashMap::new(),
            metrics: None,
            warm_sites: 0,
        }
    }

    /// Creates a scheduler warm-started from a previously saved PTT
    /// (see [`Ptt::save_text`] / [`Ptt::load_text`]).
    ///
    /// Every site in `ptt` with at least one recorded configuration starts
    /// [`Settled`](SearchPhase::Settled) at its fastest configuration —
    /// thread count clamped to the current partition — skipping the priming
    /// runs, the Algorithm-1 search and the steal trial entirely. Sites not
    /// in the table behave as with [`new`](Self::new).
    pub fn with_warm_ptt(params: IlanParams, ptt: Ptt) -> Self {
        let mut s = IlanScheduler::new(params);
        s.ptt = ptt;
        for site in s.ptt.site_ids() {
            let Some(table) = s.ptt.site(site) else {
                continue;
            };
            let Some(best) = table.fastest() else {
                continue;
            };
            let threads = s.quantize(best.threads.min(s.m_max()));
            let steal = best.steal;
            let strict_best_ns = best.time.mean();
            let next = s.hierarchical(site, threads, steal);
            s.sites.insert(
                site,
                SiteState {
                    phase: SearchPhase::Settled,
                    next,
                    strict_best_ns,
                },
            );
        }
        s.warm_sites = s.sites.len();
        s
    }

    /// Attaches scheduler instruments. Warm-started sites are reported
    /// immediately and the phase gauges are initialized from the current
    /// site census; all later `decide`/`record` calls keep them current.
    pub fn attach_metrics(&mut self, metrics: SchedulerMetrics) {
        metrics.note_warm_sites(self.warm_sites);
        self.metrics = Some(metrics);
        self.update_phase_gauges();
    }

    /// The attached instruments, if any.
    pub fn metrics(&self) -> Option<&SchedulerMetrics> {
        self.metrics.as_ref()
    }

    /// Recounts sites per phase into the lifecycle gauges. O(sites) — the
    /// census is recomputed rather than maintained incrementally so the
    /// gauges cannot drift from the `sites` map.
    fn update_phase_gauges(&self) {
        let Some(m) = &self.metrics else { return };
        let (mut searching, mut trial, mut settled) = (0, 0, 0);
        for s in self.sites.values() {
            match s.phase {
                SearchPhase::Searching => searching += 1,
                SearchPhase::StealTrial => trial += 1,
                SearchPhase::Settled => settled += 1,
            }
        }
        m.set_phase_counts(searching, trial, settled);
    }

    /// Read access to the Performance Trace Table.
    pub fn ptt(&self) -> &Ptt {
        &self.ptt
    }

    /// The scheduler's parameters.
    pub fn params(&self) -> &IlanParams {
        &self.params
    }

    /// The lifecycle phase of `site` (Searching before any invocation).
    pub fn phase(&self, site: SiteId) -> SearchPhase {
        self.sites
            .get(&site)
            .map_or(SearchPhase::Searching, |s| s.phase)
    }

    /// The settled configuration of `site`, if its search has finished.
    pub fn settled_decision(&self, site: SiteId) -> Option<&Decision> {
        self.sites
            .get(&site)
            .filter(|s| s.phase == SearchPhase::Settled)
            .map(|s| &s.next)
    }

    fn m_max(&self) -> usize {
        self.params.partition_cores()
    }

    /// Thread count rounded down to a positive multiple of `g`.
    fn quantize(&self, threads: usize) -> usize {
        let g = self.params.granularity;
        (threads / g * g).max(g)
    }

    fn hierarchical(&self, site: SiteId, threads: usize, steal: StealPolicy) -> Decision {
        let mask = select_mask_within(
            &self.params.topology,
            self.params.allowed_mask,
            self.ptt.site(site),
            threads,
        );
        Decision::Hierarchical {
            threads,
            mask,
            steal,
            strict_fraction: self.params.strict_fraction,
        }
    }

    fn initial_state(&self, site: SiteId) -> SiteState {
        SiteState {
            phase: SearchPhase::Searching,
            next: self.hierarchical(site, self.m_max(), StealPolicy::Strict),
            strict_best_ns: f64::INFINITY,
        }
    }

    /// Computes the state after recording invocation number `k` (1-based).
    fn transition(&self, site: SiteId, state: &SiteState, report: &TaskloopReport) -> SiteState {
        let k = self.ptt.invocations(site); // includes the one just recorded
        let table = self.ptt.site(site).expect("just recorded");

        match state.phase {
            SearchPhase::Searching => {
                if !self.params.moldability {
                    // No search: go straight to the steal trial (or settle).
                    return self.finish_search(site, self.m_max(), table.fastest_mean());
                }
                if k == 1 {
                    // Second priming run: half the machine. On machines so
                    // small that half quantizes back to the full machine
                    // (m_max == g), there is nothing to search.
                    let threads = self.quantize(self.m_max() / 2);
                    if threads == self.m_max() {
                        return self.finish_search(site, threads, table.fastest_mean());
                    }
                    return SiteState {
                        phase: SearchPhase::Searching,
                        next: self.hierarchical(site, threads, StealPolicy::Strict),
                        strict_best_ns: f64::INFINITY,
                    };
                }
                if table.entries().len() < 2 {
                    // Repeated configurations collapsed into one PTT entry
                    // (degenerate machines): accept it as the optimum.
                    let threads = table.fastest().map_or(self.m_max(), |e| e.threads);
                    return self.finish_search(site, threads, table.fastest_mean());
                }
                // Invocation k+1 is configured by Algorithm 1.
                let current_threads = state.next.threads().unwrap_or(self.m_max());
                let selection = select_threads(SelectionInput {
                    table,
                    current_threads,
                    k: k + 1,
                    granularity: self.params.granularity,
                    objective: self.params.objective,
                });
                if selection.search_finished {
                    let best_mean = table.fastest_mean();
                    self.finish_search(site, selection.threads, best_mean)
                } else {
                    SiteState {
                        phase: SearchPhase::Searching,
                        next: self.hierarchical(site, selection.threads, StealPolicy::Strict),
                        strict_best_ns: f64::INFINITY,
                    }
                }
            }
            SearchPhase::StealTrial => {
                // The report is the full-policy trial: keep whichever policy
                // scores better under the configured objective.
                let threads = state.next.threads().unwrap_or(self.m_max());
                let objective = self.params.objective;
                let steal = if objective.score(threads, report.time_ns)
                    < objective.score(threads, state.strict_best_ns)
                {
                    StealPolicy::Full
                } else {
                    StealPolicy::Strict
                };
                SiteState {
                    phase: SearchPhase::Settled,
                    next: self.hierarchical(site, threads, steal),
                    strict_best_ns: state.strict_best_ns,
                }
            }
            SearchPhase::Settled => state.clone(),
        }
    }

    fn finish_search(&self, site: SiteId, threads: usize, strict_best_ns: f64) -> SiteState {
        if self.params.steal_trial {
            SiteState {
                phase: SearchPhase::StealTrial,
                next: self.hierarchical(site, threads, StealPolicy::Full),
                strict_best_ns,
            }
        } else {
            SiteState {
                phase: SearchPhase::Settled,
                next: self.hierarchical(site, threads, StealPolicy::Strict),
                strict_best_ns,
            }
        }
    }
}

/// Helper on the PTT site table: mean time of the best configuration under
/// the time objective (the trial comparison rescales by the objective at
/// comparison time, so storing the raw time is sufficient).
trait FastestMean {
    fn fastest_mean(&self) -> f64;
}

impl FastestMean for crate::ptt::SiteTable {
    fn fastest_mean(&self) -> f64 {
        self.fastest().map_or(f64::INFINITY, |e| e.time.mean())
    }
}

impl Policy for IlanScheduler {
    fn decide(&mut self, site: SiteId) -> Decision {
        if let Some(m) = &self.metrics {
            let hit = matches!(self.sites.get(&site), Some(s) if s.phase == SearchPhase::Settled);
            m.note_decide(hit);
        }
        if !self.sites.contains_key(&site) {
            let st = self.initial_state(site);
            self.sites.insert(site, st);
            self.update_phase_gauges();
        }
        self.sites[&site].next.clone()
    }

    fn record(&mut self, site: SiteId, decision: &Decision, report: &TaskloopReport) {
        let (threads, mask, steal) = match decision {
            Decision::Hierarchical {
                threads,
                mask,
                steal,
                ..
            } => (*threads, *mask, *steal),
            // Reports for non-hierarchical decisions (not produced by this
            // policy) are still recorded against the full partition.
            _ => (self.m_max(), self.params.allowed_mask, StealPolicy::Strict),
        };
        self.ptt.record(site, threads, mask, steal, report);
        let state = self
            .sites
            .entry(site)
            .or_insert_with(|| SiteState {
                phase: SearchPhase::Searching,
                next: Decision::Flat, // replaced immediately below
                strict_best_ns: f64::INFINITY,
            })
            .clone();
        let new_state = self.transition(site, &state, report);
        self.sites.insert(site, new_state);
        if let Some(m) = &self.metrics {
            m.note_ptt_record();
        }
        self.update_phase_gauges();
    }

    fn name(&self) -> &'static str {
        if self.params.moldability {
            "ilan"
        } else {
            "ilan-nomold"
        }
    }

    fn decision_overhead_ns(&self) -> f64 {
        self.params.decision_cost_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_topology::presets;

    const SITE: SiteId = SiteId::new(0);

    fn scheduler() -> IlanScheduler {
        IlanScheduler::new(IlanParams::for_topology(&presets::epyc_9354_2s()))
    }

    /// Runs one decide/record round with a synthetic time.
    fn round(s: &mut IlanScheduler, time: f64) -> Decision {
        let d = s.decide(SITE);
        s.record(
            SITE,
            &d,
            &TaskloopReport::synthetic(time, d.threads().unwrap_or(64)),
        );
        d
    }

    #[test]
    fn priming_sequence() {
        let mut s = scheduler();
        let d1 = s.decide(SITE);
        assert_eq!(d1.threads(), Some(64));
        assert_eq!(d1.steal(), Some(StealPolicy::Strict));
        assert_eq!(d1.mask(), Some(presets::epyc_9354_2s().all_nodes()));
        s.record(SITE, &d1, &TaskloopReport::synthetic(100.0, 64));
        let d2 = s.decide(SITE);
        assert_eq!(d2.threads(), Some(32));
        assert_eq!(d2.mask().unwrap().count(), 4);
    }

    #[test]
    fn memory_bound_search_settles_low() {
        // Faster with fewer threads: t(64)=100, t(32)=60, t(8)=40, t(16)=45.
        let mut s = scheduler();
        assert_eq!(round(&mut s, 100.0).threads(), Some(64));
        assert_eq!(round(&mut s, 60.0).threads(), Some(32));
        assert_eq!(round(&mut s, 40.0).threads(), Some(8)); // k=3 probes g
        assert_eq!(round(&mut s, 45.0).threads(), Some(16)); // midpoint
                                                             // Search finished at 8 threads → full-policy trial.
        let trial = s.decide(SITE);
        assert_eq!(s.phase(SITE), SearchPhase::StealTrial);
        assert_eq!(trial.threads(), Some(8));
        assert_eq!(trial.steal(), Some(StealPolicy::Full));
        // Trial slower than strict best (40): keep strict.
        s.record(SITE, &trial, &TaskloopReport::synthetic(44.0, 8));
        assert_eq!(s.phase(SITE), SearchPhase::Settled);
        let settled = s.settled_decision(SITE).unwrap();
        assert_eq!(settled.threads(), Some(8));
        assert_eq!(settled.steal(), Some(StealPolicy::Strict));
        // Settled decision is sticky.
        for _ in 0..5 {
            let d = round(&mut s, 40.0);
            assert_eq!(d.threads(), Some(8));
            assert_eq!(d.steal(), Some(StealPolicy::Strict));
        }
    }

    #[test]
    fn compute_bound_search_keeps_full_machine() {
        // Faster with more threads: 64 wins.
        let mut s = scheduler();
        round(&mut s, 60.0); // 64
        round(&mut s, 100.0); // 32
        assert_eq!(round(&mut s, 75.0).threads(), Some(48));
        assert_eq!(round(&mut s, 65.0).threads(), Some(56));
        let trial = s.decide(SITE);
        assert_eq!(trial.threads(), Some(64));
        assert_eq!(trial.steal(), Some(StealPolicy::Full));
        // Trial faster: keep full.
        s.record(SITE, &trial, &TaskloopReport::synthetic(55.0, 64));
        let settled = s.settled_decision(SITE).unwrap();
        assert_eq!(settled.steal(), Some(StealPolicy::Full));
    }

    #[test]
    fn no_moldability_skips_search() {
        let mut s = IlanScheduler::new(IlanParams::no_moldability(&presets::epyc_9354_2s()));
        let d1 = s.decide(SITE);
        assert_eq!(d1.threads(), Some(64));
        s.record(SITE, &d1, &TaskloopReport::synthetic(100.0, 64));
        // Straight to the steal trial.
        assert_eq!(s.phase(SITE), SearchPhase::StealTrial);
        let trial = s.decide(SITE);
        assert_eq!(trial.threads(), Some(64));
        assert_eq!(trial.steal(), Some(StealPolicy::Full));
        s.record(SITE, &trial, &TaskloopReport::synthetic(90.0, 64));
        assert_eq!(s.phase(SITE), SearchPhase::Settled);
        assert_eq!(
            s.settled_decision(SITE).unwrap().steal(),
            Some(StealPolicy::Full)
        );
    }

    #[test]
    fn without_steal_trial_settles_strict() {
        let mut s = IlanScheduler::new(
            IlanParams::no_moldability(&presets::epyc_9354_2s()).without_steal_trial(),
        );
        let d = s.decide(SITE);
        s.record(SITE, &d, &TaskloopReport::synthetic(100.0, 64));
        assert_eq!(s.phase(SITE), SearchPhase::Settled);
        assert_eq!(
            s.settled_decision(SITE).unwrap().steal(),
            Some(StealPolicy::Strict)
        );
    }

    #[test]
    fn sites_are_independent() {
        let mut s = scheduler();
        let a = SiteId::new(1);
        let b = SiteId::new(2);
        let da = s.decide(a);
        s.record(a, &da, &TaskloopReport::synthetic(100.0, 64));
        // Site b still starts from scratch.
        assert_eq!(s.decide(b).threads(), Some(64));
        // Site a has advanced.
        assert_eq!(s.decide(a).threads(), Some(32));
    }

    #[test]
    fn small_machine_two_nodes() {
        // tiny_2x4: 8 cores, g = 4 = m_max/2.
        let topo = presets::tiny_2x4();
        let mut s = IlanScheduler::new(IlanParams::for_topology(&topo));
        assert_eq!(s.params().granularity, 4);
        let d1 = s.decide(SITE);
        assert_eq!(d1.threads(), Some(8));
        s.record(SITE, &d1, &TaskloopReport::synthetic(100.0, 8));
        let d2 = s.decide(SITE);
        assert_eq!(d2.threads(), Some(4));
        // Half machine faster → k=3 would probe g=4 == best → finished.
        s.record(SITE, &d2, &TaskloopReport::synthetic(50.0, 4));
        assert_eq!(s.phase(SITE), SearchPhase::StealTrial);
        let trial = s.decide(SITE);
        assert_eq!(trial.threads(), Some(4));
    }

    #[test]
    fn reduced_masks_follow_fastest_node() {
        let mut s = scheduler();
        let d1 = s.decide(SITE);
        // Node 5 is fastest in the priming run.
        let mut speeds = vec![0.5; 8];
        speeds[5] = 0.9;
        let report = TaskloopReport {
            node_speed: speeds,
            ..TaskloopReport::synthetic(100.0, 64)
        };
        s.record(SITE, &d1, &report);
        let d2 = s.decide(SITE);
        let mask = d2.mask().unwrap();
        assert!(mask.contains(ilan_topology::NodeId::new(5)));
        // 32 threads = 4 nodes, all on socket 1.
        assert_eq!(mask.count(), 4);
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn rejects_zero_granularity() {
        let p = IlanParams {
            granularity: 0,
            ..IlanParams::for_topology(&presets::tiny_2x4())
        };
        IlanScheduler::new(p);
    }

    #[test]
    fn warm_ptt_skips_search() {
        // Run a cold scheduler to Settled, then warm-start a fresh one from
        // its PTT: the first decision must already be the settled one.
        let mut cold = scheduler();
        round(&mut cold, 100.0);
        round(&mut cold, 60.0);
        round(&mut cold, 40.0);
        round(&mut cold, 45.0);
        let trial = cold.decide(SITE);
        cold.record(SITE, &trial, &TaskloopReport::synthetic(44.0, 8));
        assert_eq!(cold.phase(SITE), SearchPhase::Settled);
        let settled = cold.settled_decision(SITE).unwrap().clone();

        let warm = IlanScheduler::with_warm_ptt(
            IlanParams::for_topology(&presets::epyc_9354_2s()),
            cold.ptt().clone(),
        );
        assert_eq!(warm.phase(SITE), SearchPhase::Settled);
        let d = warm.settled_decision(SITE).unwrap();
        assert_eq!(d.threads(), settled.threads());
        // Unknown sites still search from scratch.
        assert_eq!(warm.phase(SiteId::new(99)), SearchPhase::Searching);
    }

    #[test]
    fn warm_ptt_round_trips_through_text() {
        let mut cold = scheduler();
        round(&mut cold, 100.0);
        round(&mut cold, 60.0);
        round(&mut cold, 40.0);
        round(&mut cold, 45.0);
        let trial = cold.decide(SITE);
        cold.record(SITE, &trial, &TaskloopReport::synthetic(44.0, 8));
        let text = cold.ptt().save_text();
        let warm = IlanScheduler::with_warm_ptt(
            IlanParams::for_topology(&presets::epyc_9354_2s()),
            crate::ptt::Ptt::load_text(&text).unwrap(),
        );
        assert_eq!(warm.phase(SITE), SearchPhase::Settled);
        assert_eq!(
            warm.settled_decision(SITE).unwrap().threads(),
            cold.settled_decision(SITE).unwrap().threads()
        );
    }

    #[test]
    fn warm_ptt_clamps_to_partition() {
        // The warm table settled at 64 threads on the full machine; a warm
        // scheduler confined to one socket must clamp to 32.
        let topo = presets::epyc_9354_2s();
        let mut cold = IlanScheduler::new(IlanParams::no_moldability(&topo));
        let d = cold.decide(SITE);
        cold.record(SITE, &d, &TaskloopReport::synthetic(100.0, 64));
        let trial = cold.decide(SITE);
        cold.record(SITE, &trial, &TaskloopReport::synthetic(90.0, 64));
        assert_eq!(cold.settled_decision(SITE).unwrap().threads(), Some(64));

        let socket1 = ilan_topology::NodeMask::from_bits(0b1111_0000);
        let warm = IlanScheduler::with_warm_ptt(
            IlanParams::for_topology(&topo).restrict_to(socket1),
            cold.ptt().clone(),
        );
        let d = warm.settled_decision(SITE).unwrap();
        assert_eq!(d.threads(), Some(32));
        assert!(d.mask().unwrap().is_subset(socket1));
    }

    #[test]
    fn restricted_scheduler_stays_in_partition() {
        let topo = presets::epyc_9354_2s();
        let socket1 = ilan_topology::NodeMask::from_bits(0b1111_0000);
        let mut s = IlanScheduler::new(IlanParams::for_topology(&topo).restrict_to(socket1));
        // Drive it through a full search with synthetic times; every decision
        // must stay inside the partition.
        for time in [100.0, 60.0, 40.0, 45.0, 44.0, 43.0, 42.0] {
            let d = s.decide(SITE);
            let threads = d.threads().unwrap();
            assert!(threads <= 32, "threads {threads} exceed partition");
            assert!(
                d.mask().unwrap().is_subset(socket1),
                "mask {:?} escapes partition",
                d.mask().unwrap()
            );
            s.record(SITE, &d, &TaskloopReport::synthetic(time, threads));
        }
        // Priming starts at the partition size, not the machine size.
        let mut s2 = IlanScheduler::new(IlanParams::for_topology(&topo).restrict_to(socket1));
        assert_eq!(s2.decide(SiteId::new(5)).threads(), Some(32));
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn rejects_empty_partition() {
        let topo = presets::tiny_2x4();
        IlanScheduler::new(
            IlanParams::for_topology(&topo).restrict_to(ilan_topology::NodeMask::EMPTY),
        );
    }

    #[test]
    fn metrics_track_lifecycle_and_decide_outcomes() {
        use crate::metrics::SchedulerMetrics;
        use ilan_metrics::SampleValue;

        let mut s = scheduler();
        s.attach_metrics(SchedulerMetrics::new());
        let m = s.metrics().unwrap().clone();
        let gauge = |phase: &str| match m
            .registry()
            .snapshot()
            .get_with("ilan_sched_sites", &[("phase", phase)])
        {
            Some(SampleValue::Gauge(v)) => *v,
            other => panic!("phase {phase}: {other:?}"),
        };
        let outcome = |o: &str| match m
            .registry()
            .snapshot()
            .get_with("ilan_sched_decide", &[("outcome", o)])
        {
            Some(SampleValue::Counter(v)) => *v,
            other => panic!("outcome {o}: {other:?}"),
        };

        // Drive the memory-bound search to Settled, checking the census.
        round(&mut s, 100.0);
        assert_eq!(gauge("searching"), 1);
        round(&mut s, 60.0);
        round(&mut s, 40.0);
        round(&mut s, 45.0);
        assert_eq!(gauge("steal_trial"), 1);
        let trial = s.decide(SITE);
        s.record(SITE, &trial, &TaskloopReport::synthetic(44.0, 8));
        assert_eq!(gauge("settled"), 1);
        assert_eq!(gauge("searching"), 0);
        // Every decide so far hit an unsettled site; the next one hits.
        assert_eq!(outcome("hit"), 0);
        let misses = outcome("miss");
        assert!(misses >= 5);
        s.decide(SITE);
        assert_eq!(outcome("hit"), 1);
        assert_eq!(outcome("miss"), misses);
        // Five reports went into the PTT: four search rounds plus the trial.
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter_total("ilan_sched_ptt_records"), 5);
        assert_eq!(snap.counter_total("ilan_sched_warm_started_sites"), 0);

        // A warm-started scheduler reports its seeded sites on attach.
        let mut warm = IlanScheduler::with_warm_ptt(
            IlanParams::for_topology(&presets::epyc_9354_2s()),
            s.ptt().clone(),
        );
        warm.attach_metrics(SchedulerMetrics::new());
        let wm = warm.metrics().unwrap().clone();
        let wsnap = wm.registry().snapshot();
        assert_eq!(wsnap.counter_total("ilan_sched_warm_started_sites"), 1);
        assert_eq!(
            wsnap.get_with("ilan_sched_sites", &[("phase", "settled")]),
            Some(&SampleValue::Gauge(1))
        );
        // The warm site's first decide is already a hit.
        warm.decide(SITE);
        assert_eq!(
            wm.registry()
                .snapshot()
                .counter_total("ilan_sched_decide"),
            1
        );
        match wm
            .registry()
            .snapshot()
            .get_with("ilan_sched_decide", &[("outcome", "hit")])
        {
            Some(SampleValue::Counter(1)) => {}
            other => panic!("warm decide must hit: {other:?}"),
        }
    }

    #[test]
    fn decision_overhead_reported() {
        let s = scheduler();
        assert!(s.decision_overhead_ns() > 0.0);
        assert_eq!(s.name(), "ilan");
        let s2 = IlanScheduler::new(IlanParams::no_moldability(&presets::tiny_2x4()));
        assert_eq!(s2.name(), "ilan-nomold");
    }
}
