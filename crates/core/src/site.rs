//! Taskloop site identities.
//!
//! A *site* is one static taskloop in the program (in the LLVM
//! implementation, the codeptr of the `taskloop` construct). ILAN keeps
//! independent PTT state per site, because the paper's central observation is
//! that the optimal configuration differs *per taskloop*, not per
//! application.

use std::collections::HashMap;
use std::fmt;

/// Identity of one static taskloop construct.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u64);

impl SiteId {
    /// Creates a site id from a raw value (e.g. a code address or a dense
    /// index from a [`SiteRegistry`]).
    pub const fn new(raw: u64) -> Self {
        SiteId(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// Maps human-readable loop names (e.g. `"cg/spmv"`) to dense [`SiteId`]s.
///
/// Workload code registers each of its taskloops once and uses the returned
/// id on every invocation.
#[derive(Default, Debug)]
pub struct SiteRegistry {
    by_name: HashMap<String, SiteId>,
    names: Vec<String>,
}

impl SiteRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, allocating one on first use.
    pub fn site(&mut self, name: &str) -> SiteId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SiteId::new(self.names.len() as u64);
        self.by_name.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        id
    }

    /// The name registered for `id`, if any.
    pub fn name(&self, id: SiteId) -> Option<&str> {
        self.names.get(id.raw() as usize).map(String::as_str)
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SiteId::new(i as u64), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_idempotent() {
        let mut r = SiteRegistry::new();
        let a = r.site("cg/spmv");
        let b = r.site("cg/axpy");
        let a2 = r.site("cg/spmv");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.name(a), Some("cg/spmv"));
        assert_eq!(r.name(SiteId::new(99)), None);
    }

    #[test]
    fn iter_in_registration_order() {
        let mut r = SiteRegistry::new();
        r.site("x");
        r.site("y");
        let names: Vec<&str> = r.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn display() {
        assert_eq!(SiteId::new(3).to_string(), "site3");
        assert_eq!(format!("{:?}", SiteId::new(3)), "site3");
    }
}
