//! Run-level statistics accumulation.
//!
//! [`RunStats`] aggregates [`TaskloopReport`]s over one application run —
//! the quantities the paper's evaluation plots: total execution time
//! (Figures 2/4/6), the time-weighted average thread count (Figure 3), and
//! accumulated scheduling overhead (Figure 5).

use crate::report::TaskloopReport;

/// Aggregated statistics of one run under one policy.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Number of taskloop invocations.
    pub invocations: u64,
    /// Sum of invocation wall times, ns.
    pub total_time_ns: f64,
    /// Serial (non-taskloop) time, ns.
    pub serial_time_ns: f64,
    /// Accumulated scheduling overhead, ns.
    pub total_overhead_ns: f64,
    /// Σ (threads × invocation time) — numerator of the weighted average.
    weighted_threads_ns: f64,
    /// Total inter-node migrations.
    pub migrations: u64,
    /// Σ (locality fraction × invocation time).
    weighted_locality_ns: f64,
    /// Total DRAM traffic across invocations, bytes.
    pub dram_bytes: f64,
}

impl RunStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one invocation.
    pub fn add(&mut self, report: &TaskloopReport) {
        self.invocations += 1;
        self.total_time_ns += report.time_ns;
        self.total_overhead_ns += report.sched_overhead_ns;
        self.weighted_threads_ns += report.threads as f64 * report.time_ns;
        self.weighted_locality_ns += report.locality * report.time_ns;
        self.migrations += report.migrations as u64;
        self.dram_bytes += report.dram_bytes;
    }

    /// Adds serial (outside-taskloop) time.
    pub fn add_serial(&mut self, ns: f64) {
        self.serial_time_ns += ns;
    }

    /// Wall time of the whole run (taskloops + serial), ns.
    pub fn wall_time_ns(&self) -> f64 {
        self.total_time_ns + self.serial_time_ns
    }

    /// Time-weighted average thread count (the paper's Figure 3 metric).
    pub fn weighted_avg_threads(&self) -> f64 {
        if self.total_time_ns > 0.0 {
            self.weighted_threads_ns / self.total_time_ns
        } else {
            0.0
        }
    }

    /// Average delivered DRAM bandwidth over the taskloop time, bytes/ns
    /// (GB/s). Zero when nothing was measured.
    pub fn avg_bandwidth(&self) -> f64 {
        if self.total_time_ns > 0.0 {
            self.dram_bytes / self.total_time_ns
        } else {
            0.0
        }
    }

    /// Time-weighted average locality fraction.
    pub fn weighted_avg_locality(&self) -> f64 {
        if self.total_time_ns > 0.0 {
            self.weighted_locality_ns / self.total_time_ns
        } else {
            0.0
        }
    }
}

/// Mean and (sample) standard deviation of a set of run times — the paper's
/// Table 1 statistics over 30 runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Distribution {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator); 0 for fewer than two
    /// samples.
    pub stddev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

/// Computes mean / sample standard deviation / extrema of `samples`.
pub fn distribution(samples: &[f64]) -> Distribution {
    if samples.is_empty() {
        return Distribution::default();
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let stddev = if samples.len() > 1 {
        (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
    } else {
        0.0
    };
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Distribution {
        mean,
        stddev,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time: f64, threads: usize, locality: f64) -> TaskloopReport {
        TaskloopReport {
            time_ns: time,
            threads,
            node_speed: Vec::new(),
            sched_overhead_ns: 10.0,
            migrations: 2,
            locality,
            dram_bytes: 50.0,
        }
    }

    #[test]
    fn weighted_average_threads() {
        let mut s = RunStats::new();
        s.add(&report(100.0, 64, 1.0));
        s.add(&report(300.0, 16, 0.5));
        // (64·100 + 16·300) / 400 = 28.
        assert!((s.weighted_avg_threads() - 28.0).abs() < 1e-12);
        assert_eq!(s.invocations, 2);
        assert_eq!(s.migrations, 4);
        assert!((s.total_overhead_ns - 20.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_locality() {
        let mut s = RunStats::new();
        s.add(&report(100.0, 8, 1.0));
        s.add(&report(100.0, 8, 0.0));
        assert!((s.weighted_avg_locality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn serial_time_counts_toward_wall() {
        let mut s = RunStats::new();
        s.add(&report(100.0, 8, 1.0));
        s.add_serial(50.0);
        assert!((s.wall_time_ns() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_aggregates() {
        let mut s = RunStats::new();
        s.add(&report(100.0, 8, 1.0));
        s.add(&report(100.0, 8, 1.0));
        assert!((s.dram_bytes - 100.0).abs() < 1e-12);
        assert!((s.avg_bandwidth() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = RunStats::new();
        assert_eq!(s.weighted_avg_threads(), 0.0);
        assert_eq!(s.wall_time_ns(), 0.0);
    }

    #[test]
    fn distribution_basic() {
        let d = distribution(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((d.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((d.stddev - 2.138089935).abs() < 1e-6);
        assert_eq!(d.min, 2.0);
        assert_eq!(d.max, 9.0);
    }

    #[test]
    fn distribution_degenerate() {
        assert_eq!(distribution(&[]), Distribution::default());
        let d = distribution(&[3.0]);
        assert_eq!(d.mean, 3.0);
        assert_eq!(d.stddev, 0.0);
    }
}
