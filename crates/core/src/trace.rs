//! Decision tracing: wrap any policy to record its decision history.
//!
//! Useful for debugging schedulers, for the `moldability_trace` example, and
//! for tests that assert on exploration sequences without re-implementing
//! the drive loop. The wrapper is transparent: it forwards `decide`/`record`
//! to the inner policy and appends one [`TraceEntry`] per invocation.
//!
//! With [`with_metrics`](RecordingPolicy::with_metrics) the same push point
//! also feeds the per-site decision histograms of a
//! [`crate::SchedulerMetrics`] — the trace and the metrics
//! exposition come from one write, so they cannot disagree.

use crate::config::Decision;
use crate::metrics::SchedulerMetrics;
use crate::policy::Policy;
use crate::report::TaskloopReport;
use crate::site::SiteId;

/// One recorded invocation.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// The taskloop site.
    pub site: SiteId,
    /// What the inner policy decided.
    pub decision: Decision,
    /// The measured outcome.
    pub time_ns: f64,
    /// Threads that actually participated.
    pub threads: usize,
}

/// A policy wrapper that records every decide/record round.
pub struct RecordingPolicy<P> {
    inner: P,
    entries: Vec<TraceEntry>,
    metrics: Option<SchedulerMetrics>,
}

impl<P: Policy> RecordingPolicy<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        RecordingPolicy {
            inner,
            entries: Vec::new(),
            metrics: None,
        }
    }

    /// Also feeds each recorded invocation into `metrics`' per-site
    /// decision histograms (builder style). The histograms are written at
    /// the trace-entry push point, so `entries_for(site).count()` always
    /// equals the site's histogram count.
    pub fn with_metrics(mut self, metrics: SchedulerMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The recorded history, in invocation order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// History restricted to one site.
    pub fn entries_for(&self, site: SiteId) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.site == site)
    }

    /// The sequence of thread counts decided for `site` (hierarchical
    /// decisions only) — the exploration trajectory.
    pub fn thread_trajectory(&self, site: SiteId) -> Vec<usize> {
        self.entries_for(site)
            .filter_map(|e| e.decision.threads())
            .collect()
    }

    /// Consumes the wrapper, returning the inner policy.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Borrows the inner policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Policy> Policy for RecordingPolicy<P> {
    fn decide(&mut self, site: SiteId) -> Decision {
        self.inner.decide(site)
    }

    fn record(&mut self, site: SiteId, decision: &Decision, report: &TaskloopReport) {
        if let Some(m) = &self.metrics {
            let threads = decision.threads().unwrap_or(report.threads);
            m.note_invocation(site, threads, report.time_ns);
        }
        self.entries.push(TraceEntry {
            site,
            decision: decision.clone(),
            time_ns: report.time_ns,
            threads: report.threads,
        });
        self.inner.record(site, decision, report);
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn decision_overhead_ns(&self) -> f64 {
        self.inner.decision_overhead_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BaselinePolicy;
    use crate::scheduler::{IlanParams, IlanScheduler};
    use ilan_topology::presets;

    #[test]
    fn records_in_order_and_forwards() {
        let mut p = RecordingPolicy::new(BaselinePolicy);
        let site = SiteId::new(1);
        for i in 0..3 {
            let d = p.decide(site);
            p.record(
                site,
                &d,
                &TaskloopReport::synthetic(100.0 * (i + 1) as f64, 4),
            );
        }
        assert_eq!(p.entries().len(), 3);
        assert_eq!(p.entries()[2].time_ns, 300.0);
        assert_eq!(p.name(), "baseline");
        assert_eq!(p.decision_overhead_ns(), 0.0);
    }

    #[test]
    fn thread_trajectory_captures_exploration() {
        let topo = presets::epyc_9354_2s();
        let mut p = RecordingPolicy::new(IlanScheduler::new(IlanParams::for_topology(&topo)));
        let site = SiteId::new(0);
        // Memory-bound response: shrinking helps.
        let time = |t: usize| 1e6 + t as f64 * 1e4;
        for _ in 0..6 {
            let d = p.decide(site);
            let threads = d.threads().unwrap();
            p.record(site, &d, &TaskloopReport::synthetic(time(threads), threads));
        }
        let traj = p.thread_trajectory(site);
        assert_eq!(&traj[..2], &[64, 32], "priming must be 64 then 32");
        assert!(traj.len() >= 4);
        // Access to inner scheduler still works.
        assert!(p.inner().ptt().invocations(site) >= 4);
    }

    /// Satellite check: the per-site decision history in the registry is
    /// written at the trace push point, so the exposition and the trace
    /// agree exactly — per site, histogram count == trace entry count and
    /// the histogram sum of threads == the trajectory sum.
    #[test]
    fn registry_histograms_agree_with_trace() {
        use crate::metrics::SchedulerMetrics;
        use ilan_metrics::SampleValue;

        let topo = presets::epyc_9354_2s();
        let metrics = SchedulerMetrics::new();
        let mut inner = IlanScheduler::new(IlanParams::for_topology(&topo));
        inner.attach_metrics(metrics.clone());
        let mut p = RecordingPolicy::new(inner).with_metrics(metrics.clone());

        let time = |t: usize| 1e6 + t as f64 * 1e4;
        for s in [0u64, 1, 0, 0, 1, 0] {
            let site = SiteId::new(s);
            let d = p.decide(site);
            let threads = d.threads().unwrap();
            p.record(site, &d, &TaskloopReport::synthetic(time(threads), threads));
        }

        let snap = metrics.registry().snapshot();
        for s in [0u64, 1] {
            let site = SiteId::new(s);
            let label = site.to_string();
            let hist = match snap
                .get_with("ilan_sched_decision_threads", &[("site", label.as_str())])
            {
                Some(SampleValue::Histogram(h)) => h,
                other => panic!("{site}: {other:?}"),
            };
            assert_eq!(hist.count, p.entries_for(site).count() as u64);
            let traj_sum: usize = p.thread_trajectory(site).iter().sum();
            assert_eq!(hist.sum, traj_sum as u64, "{site} thread sums differ");
            let times = match snap
                .get_with("ilan_sched_invocation_ns", &[("site", label.as_str())])
            {
                Some(SampleValue::Histogram(h)) => h,
                other => panic!("{site}: {other:?}"),
            };
            assert_eq!(times.count, hist.count);
        }
        // The PTT saw exactly as many records as the trace holds.
        assert_eq!(
            snap.counter_total("ilan_sched_ptt_records"),
            p.entries().len() as u64
        );
    }

    #[test]
    fn entries_for_filters_by_site() {
        let mut p = RecordingPolicy::new(BaselinePolicy);
        for s in [0u64, 1, 0, 2, 0] {
            let site = SiteId::new(s);
            let d = p.decide(site);
            p.record(site, &d, &TaskloopReport::synthetic(1.0, 1));
        }
        assert_eq!(p.entries_for(SiteId::new(0)).count(), 3);
        assert_eq!(p.entries_for(SiteId::new(2)).count(), 1);
        assert_eq!(p.into_inner().name(), "baseline");
    }
}
