//! Exhaustive decision × machine matrix through the simulator driver:
//! every combination a policy can legally emit must execute cleanly and
//! report consistent numbers.

use ilan::driver::{active_cores, build_plan, run_sim_invocation};
use ilan::{Decision, FixedPolicy, SiteId, StealPolicy};
use ilan_numasim::{Locality, MachineParams, SimMachine, TaskSpec};
use ilan_topology::{presets, NodeId, NodeMask, Topology};

fn tasks(topo: &Topology, n: usize) -> Vec<TaskSpec> {
    let nodes = topo.num_nodes();
    (0..n)
        .map(|i| TaskSpec {
            compute_ns: 20_000.0 + (i % 5) as f64 * 7_000.0,
            mem_bytes: 300_000.0,
            home_node: NodeId::new(i * nodes / n),
            locality: if i % 3 == 0 {
                Locality::Scattered { spread: 0.6 }
            } else {
                Locality::Chunked
            },
            data_mask: topo.all_nodes(),
            cache_reuse: 0.2,
            fits_l3: true,
        })
        .collect()
}

/// All hierarchical decisions over masks × thread counts × policies ×
/// strict fractions execute every chunk exactly once on the paper machine.
#[test]
fn hierarchical_decision_matrix() {
    let topo = presets::epyc_9354_2s();
    let specs = tasks(&topo, 96);
    for mask in [
        topo.all_nodes(),
        NodeMask::first_n(4),
        NodeMask::first_n(1),
        NodeMask::from_bits(0b1010_0101), // sparse, both sockets
    ] {
        for threads in [0usize, 8, 24, 64] {
            for steal in [StealPolicy::Strict, StealPolicy::Full] {
                for strict_fraction in [0.0, 0.5, 1.0] {
                    let decision = Decision::Hierarchical {
                        threads,
                        mask,
                        steal,
                        strict_fraction,
                    };
                    let mut machine =
                        SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
                    let mut policy = FixedPolicy::new(decision.clone());
                    let (d, report) =
                        run_sim_invocation(&mut machine, &mut policy, SiteId::new(0), &specs);
                    assert_eq!(d, decision);
                    assert!(
                        report.time_ns.is_finite() && report.time_ns > 0.0,
                        "mask {mask:?} threads {threads} {steal:?} sf {strict_fraction}"
                    );
                    // Threads reported == cores activated.
                    let cores = active_cores(&topo, mask, threads);
                    assert_eq!(report.threads, cores.count());
                    // Strict policy must never migrate.
                    if steal == StealPolicy::Strict {
                        assert_eq!(report.migrations, 0);
                    }
                }
            }
        }
    }
}

/// Plans built by the driver are valid exact covers for any task count.
#[test]
fn build_plan_covers_everything() {
    let topo = presets::epyc_9354_2s();
    for n in [1usize, 7, 63, 64, 65, 255, 1024] {
        for mask in [topo.all_nodes(), NodeMask::first_n(3)] {
            let d = Decision::Hierarchical {
                threads: 0,
                mask,
                steal: StealPolicy::Full,
                strict_fraction: 0.5,
            };
            // validate() inside PlacementPlan asserts the exact cover.
            build_plan(&d, n).validate(n);
        }
    }
    build_plan(&Decision::Flat, 100).validate(100);
    build_plan(&Decision::WorkSharing, 100).validate(100);
}

/// One chunk, sixty-four workers: the degenerate wide-machine case.
#[test]
fn single_chunk_on_full_machine() {
    let topo = presets::epyc_9354_2s();
    let specs = tasks(&topo, 1);
    let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
    let mut policy = FixedPolicy::new(Decision::Flat);
    let (_, report) = run_sim_invocation(&mut machine, &mut policy, SiteId::new(0), &specs);
    assert!(report.time_ns > 0.0);
    assert_eq!(report.threads, 64);
}

/// Reports keep per-node speeds consistent with the mask: inactive nodes
/// never report speed.
#[test]
fn inactive_nodes_report_zero_speed() {
    let topo = presets::epyc_9354_2s();
    let specs = tasks(&topo, 64);
    let mask = NodeMask::first_n(2);
    let d = Decision::Hierarchical {
        threads: 16,
        mask,
        steal: StealPolicy::Strict,
        strict_fraction: 1.0,
    };
    let mut machine = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
    let mut policy = FixedPolicy::new(d);
    let (_, report) = run_sim_invocation(&mut machine, &mut policy, SiteId::new(0), &specs);
    for (i, &speed) in report.node_speed.iter().enumerate() {
        if mask.contains(NodeId::new(i)) {
            assert!(speed > 0.0, "active node {i} reported no speed");
        } else {
            assert_eq!(speed, 0.0, "inactive node {i} reported speed");
        }
    }
}
