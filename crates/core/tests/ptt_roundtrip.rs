//! Property tests over PTT text persistence.
//!
//! Lossless round trip: for arbitrary recorded histories, save → load
//! preserves every site's `fastest()`, `second_fastest()` and
//! `invocations()` (and, since floats round-trip exactly, the means
//! themselves).
//!
//! Corruption safety: for arbitrary corruptions of saved text — the fault
//! layer's deterministic corruptor, truncation, appended junk — `load_text`
//! returns `Ok` or `Err` but never panics, and the lenient-recovery path
//! (`Err` → fresh cold-start table) always yields a usable PTT. This is the
//! invariant the server's warm-start store leans on.

use ilan::ptt::{ConfigEntry, Ptt};
use ilan::{SiteId, StealPolicy, TaskloopReport};
use ilan_topology::NodeMask;
use proptest::prelude::*;

/// One recorded invocation, as drawn by proptest.
#[derive(Clone, Debug)]
struct Rec {
    site: u64,
    threads: usize,
    mask_bits: u64,
    full_steal: bool,
    time_ns: f64,
    node_speed: Vec<f64>,
}

fn rec_strategy() -> impl Strategy<Value = Rec> {
    (
        0u64..5,
        1usize..=64,
        1u64..256,
        any::<bool>(),
        1.0f64..1e9,
        proptest::collection::vec(0.0f64..1.0, 0..8),
    )
        .prop_map(
            |(site, threads, mask_bits, full_steal, time_ns, node_speed)| Rec {
                site,
                threads,
                mask_bits,
                full_steal,
                time_ns,
                node_speed,
            },
        )
}

fn build(recs: &[Rec]) -> Ptt {
    let mut ptt = Ptt::new();
    for r in recs {
        let report = TaskloopReport {
            node_speed: r.node_speed.clone(),
            ..TaskloopReport::synthetic(r.time_ns, r.threads)
        };
        let steal = if r.full_steal {
            StealPolicy::Full
        } else {
            StealPolicy::Strict
        };
        ptt.record(
            SiteId::new(r.site),
            r.threads,
            NodeMask::from_bits(r.mask_bits),
            steal,
            &report,
        );
    }
    ptt
}

fn entry_key(e: Option<&ConfigEntry>) -> Option<(usize, StealPolicy, u64, f64, u64)> {
    e.map(|e| {
        (
            e.threads,
            e.steal,
            e.mask.bits(),
            e.time.mean(),
            e.time.count(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn save_load_preserves_scheduler_queries(
        recs in proptest::collection::vec(rec_strategy(), 1..60),
    ) {
        let original = build(&recs);
        let text = original.save_text();
        let loaded = Ptt::load_text(&text).expect("own output must parse");

        prop_assert_eq!(original.num_sites(), loaded.num_sites());
        prop_assert_eq!(original.site_ids(), loaded.site_ids());
        for site in original.site_ids() {
            prop_assert_eq!(
                original.invocations(site),
                loaded.invocations(site),
                "invocations differ at site {:?}",
                site
            );
            let a = original.site(site).expect("listed site exists");
            let b = loaded.site(site).expect("listed site exists");
            prop_assert_eq!(
                entry_key(a.fastest()),
                entry_key(b.fastest()),
                "fastest differs at site {:?}",
                site
            );
            prop_assert_eq!(
                entry_key(a.second_fastest()),
                entry_key(b.second_fastest()),
                "second_fastest differs at site {:?}",
                site
            );
            prop_assert_eq!(a.fastest_node(), b.fastest_node());
            prop_assert_eq!(a.entries().len(), b.entries().len());
        }
        // Saving the loaded table reproduces the text exactly (the format
        // is canonical, so persistence is idempotent).
        prop_assert_eq!(text, loaded.save_text());
    }

    #[test]
    fn fault_corrupted_text_recovers_to_a_clean_cold_start(
        recs in proptest::collection::vec(rec_strategy(), 1..40),
        seed in any::<u64>(),
    ) {
        use ilan_faults::{FaultConfig, FaultPlan};
        let text = build(&recs).save_text();
        let plan = FaultPlan::new(
            seed,
            8,
            2,
            FaultConfig { ptt_corruption_denom: 1, ..FaultConfig::none() },
        );
        let corrupted = plan.corrupt_text(&text);
        // Loading must never panic; the server's recovery path turns a
        // parse failure into a cold start, which must behave like new.
        let recovered = Ptt::load_text(&corrupted).ok().unwrap_or_default();
        for site in recovered.site_ids() {
            let table = recovered.site(site).expect("listed site exists");
            let _ = table.fastest();
            let _ = table.second_fastest();
            let _ = recovered.invocations(site);
        }
        // Corruption is deterministic: the same plan mangles identically.
        prop_assert_eq!(corrupted, plan.corrupt_text(&text));
    }

    #[test]
    fn truncated_or_junk_suffixed_text_never_panics(
        recs in proptest::collection::vec(rec_strategy(), 1..20),
        cut in 0.0f64..1.0,
        junk_bytes in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let text = build(&recs).save_text();
        let target = (text.len() as f64 * cut) as usize;
        let cut_at = (0..=target)
            .rev()
            .find(|&i| text.is_char_boundary(i))
            .unwrap_or(0);
        let junk = String::from_utf8_lossy(&junk_bytes);
        let mangled = format!("{}{junk}", &text[..cut_at]);
        if let Ok(loaded) = Ptt::load_text(&mangled) {
            // If the mangled text still parses, the table must be usable.
            for site in loaded.site_ids() {
                let _ = loaded.site(site).expect("listed site exists").fastest();
            }
        }
    }
}
