//! Property test: PTT text persistence is lossless for the queries the
//! scheduler asks — for arbitrary recorded histories, save → load preserves
//! every site's `fastest()`, `second_fastest()` and `invocations()` (and,
//! since floats round-trip exactly, the means themselves).

use ilan::ptt::{ConfigEntry, Ptt};
use ilan::{SiteId, StealPolicy, TaskloopReport};
use ilan_topology::NodeMask;
use proptest::prelude::*;

/// One recorded invocation, as drawn by proptest.
#[derive(Clone, Debug)]
struct Rec {
    site: u64,
    threads: usize,
    mask_bits: u64,
    full_steal: bool,
    time_ns: f64,
    node_speed: Vec<f64>,
}

fn rec_strategy() -> impl Strategy<Value = Rec> {
    (
        0u64..5,
        1usize..=64,
        1u64..256,
        any::<bool>(),
        1.0f64..1e9,
        proptest::collection::vec(0.0f64..1.0, 0..8),
    )
        .prop_map(
            |(site, threads, mask_bits, full_steal, time_ns, node_speed)| Rec {
                site,
                threads,
                mask_bits,
                full_steal,
                time_ns,
                node_speed,
            },
        )
}

fn build(recs: &[Rec]) -> Ptt {
    let mut ptt = Ptt::new();
    for r in recs {
        let report = TaskloopReport {
            node_speed: r.node_speed.clone(),
            ..TaskloopReport::synthetic(r.time_ns, r.threads)
        };
        let steal = if r.full_steal {
            StealPolicy::Full
        } else {
            StealPolicy::Strict
        };
        ptt.record(
            SiteId::new(r.site),
            r.threads,
            NodeMask::from_bits(r.mask_bits),
            steal,
            &report,
        );
    }
    ptt
}

fn entry_key(e: Option<&ConfigEntry>) -> Option<(usize, StealPolicy, u64, f64, u64)> {
    e.map(|e| (e.threads, e.steal, e.mask.bits(), e.time.mean(), e.time.count()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn save_load_preserves_scheduler_queries(
        recs in proptest::collection::vec(rec_strategy(), 1..60),
    ) {
        let original = build(&recs);
        let text = original.save_text();
        let loaded = Ptt::load_text(&text).expect("own output must parse");

        prop_assert_eq!(original.num_sites(), loaded.num_sites());
        prop_assert_eq!(original.site_ids(), loaded.site_ids());
        for site in original.site_ids() {
            prop_assert_eq!(
                original.invocations(site),
                loaded.invocations(site),
                "invocations differ at site {:?}",
                site
            );
            let a = original.site(site).expect("listed site exists");
            let b = loaded.site(site).expect("listed site exists");
            prop_assert_eq!(
                entry_key(a.fastest()),
                entry_key(b.fastest()),
                "fastest differs at site {:?}",
                site
            );
            prop_assert_eq!(
                entry_key(a.second_fastest()),
                entry_key(b.second_fastest()),
                "second_fastest differs at site {:?}",
                site
            );
            prop_assert_eq!(a.fastest_node(), b.fastest_node());
            prop_assert_eq!(a.entries().len(), b.entries().len());
        }
        // Saving the loaded table reproduces the text exactly (the format
        // is canonical, so persistence is idempotent).
        prop_assert_eq!(text, loaded.save_text());
    }
}
