//! Property-based tests of the ILAN policy: Algorithm 1's exploration is
//! bounded, granular, terminating, and settles on the best explored
//! configuration.

use ilan::{Decision, IlanParams, IlanScheduler, Policy, SiteId, TaskloopReport};
use ilan_topology::presets;
use proptest::prelude::*;

/// Drives one site with a deterministic response function `time(threads)`
/// until settled (or `limit` invocations). Returns (explored thread counts,
/// settled decision).
fn drive(
    params: IlanParams,
    time: impl Fn(usize) -> f64,
    limit: usize,
) -> (Vec<usize>, Option<Decision>) {
    let mut ilan = IlanScheduler::new(params);
    let site = SiteId::new(0);
    let mut explored = Vec::new();
    for _ in 0..limit {
        let d = ilan.decide(site);
        let threads = d.threads().expect("hierarchical");
        explored.push(threads);
        let report = TaskloopReport::synthetic(time(threads), threads);
        ilan.record(site, &d, &report);
        if ilan.settled_decision(site).is_some() {
            break;
        }
    }
    (explored, ilan.settled_decision(site).cloned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any convex-ish response (random quadratic in threads), the search
    /// terminates within 10 invocations, explores only g-multiples within
    /// machine bounds, and settles on the fastest *explored* configuration.
    #[test]
    fn search_terminates_and_picks_best_explored(
        a in -50.0f64..50.0,
        b in -3_000.0f64..3_000.0,
        c in 100_000.0f64..1e6,
    ) {
        let topo = presets::epyc_9354_2s();
        let time = move |t: usize| {
            let x = t as f64;
            (a * x * x + b * x + c).max(1_000.0)
        };
        let (explored, settled) = drive(IlanParams::for_topology(&topo), time, 12);
        let settled = settled.expect("search must settle within 12 invocations");
        for &t in &explored {
            prop_assert!((8..=64).contains(&t), "explored {t}");
            prop_assert_eq!(t % 8, 0, "granularity violated: {}", t);
        }
        // The settled configuration must be as fast as the best explored one
        // (ties may legitimately resolve toward fewer threads).
        let best_time = explored
            .iter()
            .map(|&t| time(t))
            .fold(f64::INFINITY, f64::min);
        let settled_time = time(settled.threads().unwrap());
        prop_assert!(
            settled_time <= best_time + 1e-9,
            "settled {:?} at {settled_time}, best explored {best_time}",
            settled.threads()
        );
    }

    /// Exploration never repeats a thread count during the search phase
    /// (each configuration is measured once before settling), except the
    /// final settled choice.
    #[test]
    fn exploration_does_not_thrash(
        seedtimes in proptest::collection::vec(1_000.0f64..1e9, 12),
    ) {
        let topo = presets::epyc_9354_2s();
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo).without_steal_trial());
        let site = SiteId::new(0);
        let mut seen = std::collections::HashSet::new();
        for t in &seedtimes {
            let d = ilan.decide(site);
            if ilan.settled_decision(site).is_some() {
                break;
            }
            let threads = d.threads().unwrap();
            prop_assert!(
                seen.insert(threads),
                "re-explored {threads} before settling: {seen:?}"
            );
            ilan.record(site, &d, &TaskloopReport::synthetic(*t, threads));
        }
    }

    /// Monotone-decreasing response (compute-bound): the search must keep
    /// the full machine. Monotone-increasing (pathologically contended):
    /// it must pick the minimum granularity.
    #[test]
    fn monotone_extremes(slope in 1.0f64..1e4) {
        let topo = presets::epyc_9354_2s();
        // Decreasing: more threads, faster.
        let (_, settled) = drive(
            IlanParams::for_topology(&topo).without_steal_trial(),
            |t| 1e7 - slope * t as f64,
            12,
        );
        prop_assert_eq!(settled.unwrap().threads(), Some(64));
        // Increasing: fewer threads, faster.
        let (_, settled) = drive(
            IlanParams::for_topology(&topo).without_steal_trial(),
            |t| 1e6 + slope * t as f64,
            12,
        );
        prop_assert_eq!(settled.unwrap().threads(), Some(8));
    }

    /// Custom granularities are respected end-to-end.
    #[test]
    fn custom_granularity_respected(g in 1usize..=32) {
        let topo = presets::epyc_9354_2s();
        let (explored, settled) = drive(
            IlanParams::for_topology(&topo).granularity(g).without_steal_trial(),
            |t| 1e6 + (t as f64 - 29.0).abs() * 1e4,
            16,
        );
        prop_assert!(settled.is_some(), "must settle, explored {explored:?}");
        for &t in &explored {
            prop_assert!(t % g == 0 || t == 64, "{t} breaks g={g}");
            prop_assert!(t <= 64);
        }
    }

    /// The PTT mean over repeated settled runs converges to the reported
    /// times (bookkeeping sanity under long streams).
    #[test]
    fn settled_streams_keep_recording(extra in 1usize..40) {
        let topo = presets::epyc_9354_2s();
        let mut ilan = IlanScheduler::new(IlanParams::for_topology(&topo));
        let site = SiteId::new(0);
        let mut count = 0;
        for _ in 0..(12 + extra) {
            let d = ilan.decide(site);
            ilan.record(
                site,
                &d,
                &TaskloopReport::synthetic(1e6, d.threads().unwrap()),
            );
            count += 1;
        }
        prop_assert_eq!(ilan.ptt().invocations(site), count);
    }
}

mod objective_behaviour {
    use super::*;
    use ilan::Objective;

    /// On a loop that scales sublinearly (time halves only partially when
    /// threads double), the time objective keeps the whole machine while the
    /// energy objective settles lower — the JOSS/SWEEP-style trade the paper
    /// sketches in §3.5.
    #[test]
    fn energy_objective_settles_lower_than_time() {
        let topo = presets::epyc_9354_2s();
        // Amdahl-ish response: strong serial fraction.
        let time = |t: usize| 1e6 * (0.35 + 0.65 * 64.0 / t as f64);
        let (_, time_settled) = drive(
            IlanParams::for_topology(&topo).without_steal_trial(),
            time,
            14,
        );
        let (_, energy_settled) = drive(
            IlanParams::for_topology(&topo)
                .without_steal_trial()
                .objective(Objective::Energy),
            time,
            14,
        );
        let t_threads = time_settled.unwrap().threads().unwrap();
        let e_threads = energy_settled.unwrap().threads().unwrap();
        assert_eq!(t_threads, 64, "time objective must keep the machine");
        assert!(
            e_threads < t_threads,
            "energy objective must settle lower: {e_threads} vs {t_threads}"
        );
    }

    /// With perfect linear scaling, even the energy objective has no reason
    /// to shrink (energy is constant, time favours more threads).
    #[test]
    fn energy_objective_keeps_machine_on_linear_scaling() {
        let topo = presets::epyc_9354_2s();
        let time = |t: usize| 64e6 / t as f64;
        let (_, settled) = drive(
            IlanParams::for_topology(&topo)
                .without_steal_trial()
                .objective(Objective::Energy),
            time,
            14,
        );
        // Energy ties everywhere; time tie-break inside the search favours
        // whatever was best — accept any settled value but require progress.
        assert!(settled.is_some());
    }
}
