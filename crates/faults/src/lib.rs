//! Seeded, deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is derived from a single `u64` seed plus a [`FaultConfig`]
//! describing which fault classes are armed. The same `(seed, workers, nodes,
//! config)` tuple always yields the same plan, and every per-event query
//! (`drops_wakeup`, `corrupts_ptt`, `loop_failures`, …) is a pure function of
//! the plan — no interior state, no wall-clock, no global RNG. That makes a
//! chaos run replayable byte-for-byte and lets the native pool and the
//! simulator consume *the same* plan for differential checking.
//!
//! Fault classes:
//!
//! - **Worker stalls** ([`FaultPlan::stall_of`]): a worker sleeps for a fixed
//!   delay at the start of an invocation before touching any run state; a
//!   *permanent* stall never participates and must be force-released by the
//!   pool's watchdog.
//! - **Slow nodes** ([`FaultPlan::node_slowdown`]): a multiplier ≥ 1 applied
//!   to chunk execution on a node, modelling asymmetric degradation.
//! - **Dropped wakeups** ([`FaultPlan::drops_wakeup`]): the dispatcher skips
//!   posting a worker's run token; the watchdog's broadcast escalation must
//!   repair it.
//! - **Steal refusals** ([`FaultPlan::refuses_remote_steal`]): a worker
//!   declines to steal from remote-node injectors, stressing the drain path.
//! - **PTT corruption** ([`FaultPlan::corrupts_ptt`] /
//!   [`FaultPlan::corrupt_text`]): flips bytes in a persisted PTT so the
//!   server must fall back to cold-start exploration.
//! - **Tenant loop failures** ([`FaultPlan::loop_failures`]): a tenant's
//!   taskloop invocation fails N times before succeeding; the server retries
//!   with exponential backoff.
//! - **Job bursts + shedding** ([`FaultPlan::bursts`],
//!   [`FaultPlan::shed_queue_limit`]): extra tenant jobs arrive in a burst
//!   while the admission queue is capped, forcing overload shedding.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// SplitMix64: the finalizer used for all stateless per-event hashing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Domain tags keep the fault streams independent of each other.
mod domain {
    pub const STALL: u64 = 0x01;
    pub const STALL_DELAY: u64 = 0x02;
    pub const STALL_PERM: u64 = 0x03;
    pub const SLOW_NODE: u64 = 0x04;
    pub const SLOW_FACTOR: u64 = 0x05;
    pub const WAKEUP: u64 = 0x06;
    pub const REFUSAL: u64 = 0x07;
    pub const PTT: u64 = 0x08;
    pub const PTT_BYTE: u64 = 0x09;
    pub const LOOP_FAIL: u64 = 0x0a;
    pub const BURST: u64 = 0x0b;
}

/// One scheduled worker stall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallSpec {
    /// How long the worker sleeps before participating, ns.
    pub delay_ns: u64,
    /// Permanent stalls never participate at all; the watchdog must
    /// force-release them.
    pub permanent: bool,
}

/// One scheduled burst of extra tenant jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BurstSpec {
    /// The burst arrives together with the stream job of this index.
    pub after_job: usize,
    /// Number of extra jobs injected.
    pub jobs: usize,
}

/// Which fault classes a plan may draw from, and how hard.
///
/// All rates are expressed as denominators: an event fires when its hash is
/// divisible by the denominator, so `0` disables the class and `1` fires it
/// every time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Maximum number of stalled workers (actual count is seed-derived).
    pub max_worker_stalls: usize,
    /// Whether stalls may be permanent (requires a pool watchdog).
    pub permanent_stalls: bool,
    /// Upper bound on a temporary stall's delay, ns.
    pub max_stall_ns: u64,
    /// Maximum number of slowed nodes.
    pub max_slow_nodes: usize,
    /// Upper bound on the slow-node multiplier (≥ 1.0).
    pub max_node_slowdown: f64,
    /// Drop a wakeup when `hash(invocation, worker) % denom == 0`; 0 = never.
    pub wakeup_drop_denom: u64,
    /// Maximum number of workers refusing remote steals.
    pub max_steal_refusals: usize,
    /// Corrupt a PTT save when `hash(save_index) % denom == 0`; 0 = never.
    pub ptt_corruption_denom: u64,
    /// Fail a tenant loop invocation up to this many times before success.
    pub max_loop_failures: u32,
    /// Fail a loop when `hash(job, invocation) % denom == 0`; 0 = never.
    pub loop_failure_denom: u64,
    /// Maximum number of job bursts.
    pub max_bursts: usize,
    /// Jobs per burst (actual count is seed-derived, in `1..=max`).
    pub max_burst_jobs: usize,
    /// Admission-queue length above which new arrivals are shed.
    pub shed_queue_limit: Option<usize>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::chaos()
    }
}

impl FaultConfig {
    /// Everything armed: the configuration the chaos conformance suite uses.
    pub fn chaos() -> Self {
        FaultConfig {
            max_worker_stalls: 2,
            permanent_stalls: true,
            max_stall_ns: 2_000_000, // 2 ms
            max_slow_nodes: 2,
            max_node_slowdown: 8.0,
            wakeup_drop_denom: 3,
            max_steal_refusals: 2,
            ptt_corruption_denom: 2,
            max_loop_failures: 2,
            loop_failure_denom: 3,
            max_bursts: 1,
            max_burst_jobs: 3,
            shed_queue_limit: Some(6),
        }
    }

    /// Faults the fluid simulator can express exactly: slow nodes and
    /// *temporary* worker stalls only. Used by the differential oracle,
    /// where native and simulated runs must agree on placement.
    pub fn sim_safe() -> Self {
        FaultConfig {
            max_worker_stalls: 2,
            permanent_stalls: false,
            max_stall_ns: 500_000, // 0.5 ms
            max_slow_nodes: 2,
            max_node_slowdown: 6.0,
            wakeup_drop_denom: 0,
            max_steal_refusals: 0,
            ptt_corruption_denom: 0,
            max_loop_failures: 0,
            loop_failure_denom: 0,
            max_bursts: 0,
            max_burst_jobs: 0,
            shed_queue_limit: None,
        }
    }

    /// No faults at all; `FaultPlan` under this config is a no-op plan.
    pub fn none() -> Self {
        FaultConfig {
            max_worker_stalls: 0,
            permanent_stalls: false,
            max_stall_ns: 0,
            max_slow_nodes: 0,
            max_node_slowdown: 1.0,
            wakeup_drop_denom: 0,
            max_steal_refusals: 0,
            ptt_corruption_denom: 0,
            max_loop_failures: 0,
            loop_failure_denom: 0,
            max_bursts: 0,
            max_burst_jobs: 0,
            shed_queue_limit: None,
        }
    }
}

/// A fully materialized, deterministic fault schedule.
///
/// Construction picks the *targets* (which workers stall, which nodes slow
/// down, …) from the seed; per-event queries hash the seed with a domain tag
/// so repeated queries always agree.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    workers: u32,
    nodes: u32,
    config: FaultConfig,
    stalls: BTreeMap<u32, StallSpec>,
    slow_nodes: BTreeMap<u32, f64>,
    refusals: Vec<u32>,
    bursts: Vec<BurstSpec>,
}

impl FaultPlan {
    /// Derives the plan for a machine with `workers` workers and `nodes`
    /// NUMA nodes from `seed` under `config`.
    pub fn new(seed: u64, workers: u32, nodes: u32, config: FaultConfig) -> FaultPlan {
        let h = |domain: u64, x: u64| {
            splitmix64(seed ^ splitmix64(domain) ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        };

        let mut stalls = BTreeMap::new();
        if config.max_worker_stalls > 0 && workers > 1 && config.max_stall_ns > 0 {
            // Stall at most max_worker_stalls workers, never all of them.
            let budget = config.max_worker_stalls.min(workers as usize - 1);
            let count = (h(domain::STALL, 0) % (budget as u64 + 1)) as usize;
            let mut picked = 0usize;
            for k in 0u64.. {
                if picked == count {
                    break;
                }
                let w = (h(domain::STALL, k + 1) % workers as u64) as u32;
                if stalls.contains_key(&w) {
                    continue;
                }
                let permanent = config.permanent_stalls && h(domain::STALL_PERM, w as u64) % 2 == 0;
                let delay_ns = 1 + h(domain::STALL_DELAY, w as u64) % config.max_stall_ns;
                stalls.insert(
                    w,
                    StallSpec {
                        delay_ns,
                        permanent,
                    },
                );
                picked += 1;
            }
        }

        let mut slow_nodes = BTreeMap::new();
        if config.max_slow_nodes > 0 && nodes > 0 && config.max_node_slowdown > 1.0 {
            let budget = config.max_slow_nodes.min(nodes as usize);
            let count = (h(domain::SLOW_NODE, 0) % (budget as u64 + 1)) as usize;
            let mut picked = 0usize;
            for k in 0u64.. {
                if picked == count {
                    break;
                }
                let n = (h(domain::SLOW_NODE, k + 1) % nodes as u64) as u32;
                if slow_nodes.contains_key(&n) {
                    continue;
                }
                // Factor in (1, max], quantized to 1/16ths so it prints
                // exactly and the sim multiplies the same value.
                let steps = (16.0 * (config.max_node_slowdown - 1.0)) as u64;
                let q = 1 + h(domain::SLOW_FACTOR, n as u64) % steps.max(1);
                slow_nodes.insert(n, 1.0 + q as f64 / 16.0);
                picked += 1;
            }
        }

        let mut refusals = Vec::new();
        if config.max_steal_refusals > 0 && workers > 0 {
            let budget = config.max_steal_refusals.min(workers as usize);
            let count = (h(domain::REFUSAL, 0) % (budget as u64 + 1)) as usize;
            for k in 0u64.. {
                if refusals.len() == count {
                    break;
                }
                let w = (h(domain::REFUSAL, k + 1) % workers as u64) as u32;
                if !refusals.contains(&w) {
                    refusals.push(w);
                }
            }
            refusals.sort_unstable();
        }

        let mut bursts = Vec::new();
        if config.max_bursts > 0 && config.max_burst_jobs > 0 {
            let count = (h(domain::BURST, 0) % (config.max_bursts as u64 + 1)) as usize;
            for k in 0..count as u64 {
                bursts.push(BurstSpec {
                    after_job: (h(domain::BURST, 2 * k + 1) % 8) as usize,
                    jobs: 1 + (h(domain::BURST, 2 * k + 2) % config.max_burst_jobs as u64) as usize,
                });
            }
            bursts.sort_by_key(|b| b.after_job);
        }

        FaultPlan {
            seed,
            workers,
            nodes,
            config,
            stalls,
            slow_nodes,
            refusals,
            bursts,
        }
    }

    fn h(&self, domain: u64, x: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(domain) ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The seed the plan was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The config the plan was derived under.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The stall scheduled for `worker`, if any.
    pub fn stall_of(&self, worker: u32) -> Option<StallSpec> {
        self.stalls.get(&worker).copied()
    }

    /// All scheduled stalls, keyed by worker.
    pub fn stalls(&self) -> &BTreeMap<u32, StallSpec> {
        &self.stalls
    }

    /// True if any scheduled stall is permanent (the pool then requires a
    /// watchdog to terminate).
    pub fn has_permanent_stall(&self) -> bool {
        self.stalls.values().any(|s| s.permanent)
    }

    /// Execution-speed multiplier for `node` (1.0 = healthy).
    pub fn node_slowdown(&self, node: u32) -> f64 {
        self.slow_nodes.get(&node).copied().unwrap_or(1.0)
    }

    /// All slowed nodes and their multipliers.
    pub fn slow_nodes(&self) -> &BTreeMap<u32, f64> {
        &self.slow_nodes
    }

    /// Whether the dispatcher drops `worker`'s wakeup in `invocation`.
    ///
    /// Never drops the wakeup of a healthy worker 0 so at least one worker
    /// always makes progress without watchdog help.
    pub fn drops_wakeup(&self, invocation: u64, worker: u32) -> bool {
        if self.config.wakeup_drop_denom == 0 {
            return false;
        }
        if worker == 0 && !self.stalls.contains_key(&0) {
            return false;
        }
        self.h(
            domain::WAKEUP,
            invocation.wrapping_mul(0x1_0001) ^ worker as u64,
        )
        .is_multiple_of(self.config.wakeup_drop_denom)
    }

    /// Whether `worker` refuses to steal from remote-node injectors.
    pub fn refuses_remote_steal(&self, worker: u32) -> bool {
        self.refusals.binary_search(&worker).is_ok()
    }

    /// Workers refusing remote steals, ascending.
    pub fn steal_refusals(&self) -> &[u32] {
        &self.refusals
    }

    /// Whether the `save_index`-th PTT save is corrupted on disk.
    pub fn corrupts_ptt(&self, save_index: u64) -> bool {
        self.config.ptt_corruption_denom != 0
            && self
                .h(domain::PTT, save_index)
                .is_multiple_of(self.config.ptt_corruption_denom)
    }

    /// Deterministically corrupts `text`: flips a seed-chosen number of
    /// bytes (at least one) at seed-chosen offsets. The result is valid
    /// UTF-8-lossy text but no longer a parseable PTT in the common case.
    pub fn corrupt_text(&self, text: &str) -> String {
        if text.is_empty() {
            return "\u{0}corrupt".to_string();
        }
        let mut bytes = text.as_bytes().to_vec();
        let flips = 1 + (self.h(domain::PTT_BYTE, 0) % 8) as usize;
        for k in 0..flips {
            let i = (self.h(domain::PTT_BYTE, k as u64 + 1) % bytes.len() as u64) as usize;
            bytes[i] =
                bytes[i].wrapping_add(1 + (self.h(domain::PTT_BYTE, 0x100 + k as u64) % 255) as u8);
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// How many times the `invocation`-th loop of `job` fails before it
    /// succeeds (0 = never fails). The server retries each failure with
    /// exponential backoff.
    pub fn loop_failures(&self, job: u64, invocation: u64) -> u32 {
        if self.config.loop_failure_denom == 0 || self.config.max_loop_failures == 0 {
            return 0;
        }
        let x = job.wrapping_mul(0x0001_0003) ^ invocation;
        if !self
            .h(domain::LOOP_FAIL, x)
            .is_multiple_of(self.config.loop_failure_denom)
        {
            return 0;
        }
        1 + (self.h(domain::LOOP_FAIL, x ^ 0xfeed) % self.config.max_loop_failures as u64) as u32
    }

    /// Scheduled job bursts, sorted by trigger index.
    pub fn bursts(&self) -> &[BurstSpec] {
        &self.bursts
    }

    /// Admission-queue length above which arrivals are shed, if armed.
    pub fn shed_queue_limit(&self) -> Option<usize> {
        self.config.shed_queue_limit
    }

    /// One-line deterministic description of the plan's shape. Depends only
    /// on the plan (never on runtime behaviour), so it is safe to include in
    /// byte-compared chaos summaries.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "plan seed={:#018x} workers={} nodes={}",
            self.seed, self.workers, self.nodes
        );
        for (w, s) in &self.stalls {
            let kind = if s.permanent { "perm" } else { "temp" };
            let _ = write!(out, " stall(w{w},{kind},{}ns)", s.delay_ns);
        }
        for (n, f) in &self.slow_nodes {
            let _ = write!(out, " slow(n{n},x{f:.4})");
        }
        for w in &self.refusals {
            let _ = write!(out, " refuse(w{w})");
        }
        for b in &self.bursts {
            let _ = write!(out, " burst(after={},jobs={})", b.after_job, b.jobs);
        }
        if self.config.wakeup_drop_denom != 0 {
            let _ = write!(out, " drop-wakeups(1/{})", self.config.wakeup_drop_denom);
        }
        if self.config.ptt_corruption_denom != 0 {
            let _ = write!(out, " ptt-corrupt(1/{})", self.config.ptt_corruption_denom);
        }
        if self.config.loop_failure_denom != 0 {
            let _ = write!(out, " loop-fail(1/{})", self.config.loop_failure_denom);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::new(42, 8, 2, FaultConfig::chaos());
        let b = FaultPlan::new(42, 8, 2, FaultConfig::chaos());
        assert_eq!(a, b);
        assert_eq!(a.describe(), b.describe());
        for inv in 0..100 {
            for w in 0..8 {
                assert_eq!(a.drops_wakeup(inv, w), b.drops_wakeup(inv, w));
            }
        }
    }

    #[test]
    fn seeds_vary_the_plan() {
        let plans: Vec<_> = (0..32u64)
            .map(|s| FaultPlan::new(s, 8, 2, FaultConfig::chaos()).describe())
            .collect();
        let mut unique = plans.clone();
        unique.sort();
        unique.dedup();
        assert!(
            unique.len() > 16,
            "plans barely vary: {} unique of 32",
            unique.len()
        );
    }

    #[test]
    fn never_stalls_every_worker() {
        for seed in 0..256u64 {
            let p = FaultPlan::new(seed, 4, 2, FaultConfig::chaos());
            assert!(p.stalls().len() < 4, "seed {seed} stalled all workers");
        }
    }

    #[test]
    fn none_config_is_a_noop_plan() {
        let p = FaultPlan::new(7, 8, 2, FaultConfig::none());
        assert!(p.stalls().is_empty());
        assert!(p.slow_nodes().is_empty());
        assert!(p.steal_refusals().is_empty());
        assert!(p.bursts().is_empty());
        assert!(!p.has_permanent_stall());
        for w in 0..8 {
            assert!(!p.drops_wakeup(0, w));
            assert!(!p.refuses_remote_steal(w));
            assert_eq!(p.node_slowdown(w % 2), 1.0);
        }
        assert!(!p.corrupts_ptt(0));
        assert_eq!(p.loop_failures(0, 0), 0);
    }

    #[test]
    fn sim_safe_has_no_permanent_stalls() {
        for seed in 0..256u64 {
            let p = FaultPlan::new(seed, 8, 2, FaultConfig::sim_safe());
            assert!(!p.has_permanent_stall(), "seed {seed}");
            assert!(p.bursts().is_empty());
            assert_eq!(p.steal_refusals(), &[] as &[u32]);
        }
    }

    #[test]
    fn corrupt_text_changes_the_text() {
        let p = FaultPlan::new(9, 8, 2, FaultConfig::chaos());
        let original = "ptt v1\nsite 0 invocations=3\n";
        let corrupted = p.corrupt_text(original);
        assert_ne!(corrupted, original);
        assert_eq!(
            corrupted,
            p.corrupt_text(original),
            "corruption must be deterministic"
        );
    }

    #[test]
    fn wakeup_drops_spare_healthy_worker_zero() {
        for seed in 0..64u64 {
            let p = FaultPlan::new(seed, 8, 2, FaultConfig::chaos());
            if p.stall_of(0).is_none() {
                for inv in 0..64 {
                    assert!(!p.drops_wakeup(inv, 0), "seed {seed} dropped w0's wakeup");
                }
            }
        }
    }

    #[test]
    fn slowdowns_are_quantized_and_bounded() {
        for seed in 0..128u64 {
            let p = FaultPlan::new(seed, 8, 4, FaultConfig::chaos());
            for (&n, &f) in p.slow_nodes() {
                assert!(n < 4);
                assert!(f > 1.0 && f <= 8.0, "seed {seed} factor {f}");
                let sixteenths = f * 16.0;
                assert_eq!(sixteenths, sixteenths.round(), "factor not quantized: {f}");
            }
        }
    }

    #[test]
    fn loop_failures_do_occur_somewhere() {
        let mut hits = 0;
        for seed in 0..16u64 {
            let p = FaultPlan::new(seed, 8, 2, FaultConfig::chaos());
            for job in 0..16 {
                for inv in 0..8 {
                    if p.loop_failures(job, inv) > 0 {
                        hits += 1;
                    }
                }
            }
        }
        assert!(hits > 0, "chaos config never failed a loop");
    }
}
