//! Lock-free counters and gauges.
//!
//! All handles are `Arc`-backed and cheap to clone; increments are relaxed
//! atomics with no fences. [`ShardedCounter`] gives each worker its own
//! cache-padded shard so concurrent increments never bounce a line — the
//! same discipline the native pool uses for its per-node statistics.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
///
/// One cache-padded atomic; suitable for single-writer or low-contention
/// sites (the dispatcher, the server's admission loop). For per-worker
/// hot paths use [`ShardedCounter`].
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<CachePadded<AtomicU64>>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (phase occupancy, active tenants).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<CachePadded<AtomicI64>>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A counter split into per-worker cache-padded shards.
///
/// Worker `i` increments shard `i % shards`; readers sum all shards. With
/// one shard per worker an increment is a relaxed RMW on a line no other
/// core writes — the cost of an uncontended addition.
#[derive(Clone, Debug)]
pub struct ShardedCounter {
    shards: Arc<[CachePadded<AtomicU64>]>,
}

impl ShardedCounter {
    /// A counter with `shards` shards (at least one).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        ShardedCounter {
            shards: (0..n).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Adds `n` on `shard` (wrapped into range, so any worker index is safe).
    #[inline]
    pub fn add(&self, shard: usize, n: u64) {
        self.shards[shard % self.shards.len()].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one on `shard`.
    #[inline]
    pub fn inc(&self, shard: usize) {
        self.add(shard, 1);
    }

    /// The sum over all shards.
    ///
    /// Relaxed per-shard loads: concurrent increments may or may not be
    /// visible, but every increment that happened-before the call is.
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_clones_share() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(7);
        g.add(3);
        g.sub(12);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn sharded_counter_sums_across_shards() {
        let s = ShardedCounter::new(4);
        for worker in 0..9 {
            s.inc(worker); // indices beyond the shard count wrap
        }
        s.add(2, 10);
        assert_eq!(s.sum(), 19);
        assert_eq!(s.shards(), 4);
    }

    #[test]
    fn sharded_counter_concurrent_increments_all_land() {
        let s = ShardedCounter::new(8);
        std::thread::scope(|scope| {
            for w in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        s.inc(w);
                    }
                });
            }
        });
        assert_eq!(s.sum(), 80_000);
    }
}
