//! Deterministic OpenMetrics/Prometheus text exposition.
//!
//! The renderer walks the snapshot's `BTreeMap`s, so identical snapshot
//! state produces byte-identical text — the property the exposition
//! proptest and the server's `metrics_text()` determinism test pin.
//! Conventions follow the OpenMetrics text format: counters gain the
//! `_total` suffix, histograms emit cumulative `_bucket{le="..."}` series
//! (sparse: only boundaries with observations, plus `+Inf`), `_sum`,
//! `_count`, and the output ends with `# EOF`.

use crate::histogram::{bucket_bounds, HistSnapshot};
use crate::registry::{MetricKind, MetricsSnapshot, SampleValue, SeriesKey};
use std::fmt::Write as _;

fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_histogram(out: &mut String, key: &SeriesKey, h: &HistSnapshot) {
    let mut cum = 0u64;
    for &(i, n) in &h.buckets {
        cum += n;
        let le = bucket_bounds(i as usize).1;
        let lb = label_block(&key.labels, Some(("le", le.to_string())));
        writeln!(out, "{}_bucket{} {}", key.name, lb, cum).unwrap();
    }
    let lb = label_block(&key.labels, Some(("le", "+Inf".to_string())));
    writeln!(out, "{}_bucket{} {}", key.name, lb, h.count).unwrap();
    let plain = label_block(&key.labels, None);
    writeln!(out, "{}_sum{} {}", key.name, plain, h.sum).unwrap();
    writeln!(out, "{}_count{} {}", key.name, plain, h.count).unwrap();
}

/// Renders `snap` as OpenMetrics text. Pure and deterministic.
pub fn render_openmetrics(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut current_family: Option<&str> = None;
    for (key, value) in &snap.series {
        if current_family != Some(key.name.as_str()) {
            current_family = Some(key.name.as_str());
            if let Some(meta) = snap.families.get(&key.name) {
                let kind = match meta.kind {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                    MetricKind::Histogram => "histogram",
                };
                writeln!(out, "# HELP {} {}", key.name, escape(&meta.help)).unwrap();
                writeln!(out, "# TYPE {} {}", key.name, kind).unwrap();
            }
        }
        match value {
            SampleValue::Counter(n) => {
                let lb = label_block(&key.labels, None);
                writeln!(out, "{}_total{} {}", key.name, lb, n).unwrap();
            }
            SampleValue::Gauge(v) => {
                let lb = label_block(&key.labels, None);
                writeln!(out, "{}{} {}", key.name, lb, v).unwrap();
            }
            SampleValue::Histogram(h) => render_histogram(&mut out, key, h),
        }
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn exposition_shape_and_determinism() {
        let build = || {
            let reg = Registry::new();
            reg.counter_with("ilan_steals", "Steal acquisitions", &[("scope", "local")])
                .add(4);
            reg.counter_with("ilan_steals", "Steal acquisitions", &[("scope", "remote")])
                .inc();
            reg.gauge("ilan_active_tenants", "Active tenants").set(2);
            let h = reg.histogram("ilan_dispatch_ns", "Dispatch latency");
            h.record(100);
            h.record(100);
            h.record(5000);
            reg.render()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same construction must render byte-identical text");
        assert!(a.contains("# TYPE ilan_steals counter"));
        assert!(a.contains("ilan_steals_total{scope=\"local\"} 4"));
        assert!(a.contains("ilan_steals_total{scope=\"remote\"} 1"));
        assert!(a.contains("# TYPE ilan_active_tenants gauge"));
        assert!(a.contains("ilan_active_tenants 2"));
        assert!(a.contains("# TYPE ilan_dispatch_ns histogram"));
        assert!(a.contains("ilan_dispatch_ns_bucket{le=\"+Inf\"} 3"));
        assert!(a.contains("ilan_dispatch_ns_sum 5200"));
        assert!(a.contains("ilan_dispatch_ns_count 3"));
        assert!(a.ends_with("# EOF\n"));
    }

    #[test]
    fn empty_registry_renders_eof_only() {
        assert_eq!(Registry::new().render(), "# EOF\n");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_with("c", "h", &[("k", "a\"b\\c")]).inc();
        let text = reg.render();
        assert!(text.contains("c_total{k=\"a\\\"b\\\\c\"} 1"));
    }
}
