//! The flight recorder: retrospective anomaly dumps.
//!
//! The native pool keeps its per-worker trace rings filled even when the
//! caller did not ask for tracing (ring writes are cheap; *collection* is
//! not). When an invocation ends anomalously — the watchdog degraded, the
//! chaos layer injected a fault, or the invocation breached the latency
//! histogram's tail ([`TailTracker`]) — the dispatcher collects the
//! complete event log of that invocation and parks it here as a
//! [`FlightDump`]: a Chrome trace, the merged event log (auditable by
//! `ilan_trace::audit`), and an OpenMetrics snapshot of the registry at
//! capture time. Post-mortems read the dump; nobody re-runs with tracing
//! enabled.
//!
//! The recorder keeps the **first** dump (the original anomaly, before
//! any cascade) and counts later triggers; [`FlightRecorder::take`]
//! re-arms it.

use crate::histogram::Histogram;
use ilan_trace::EventLog;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a dump was captured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightReason {
    /// The taskloop watchdog degraded (stage 1 = broadcast re-post,
    /// stage 2 = dispatcher claim-and-drain).
    Degraded {
        /// Highest degradation stage reached this invocation.
        stage: u8,
    },
    /// The fault-injection layer fired during the invocation.
    FaultInjected {
        /// Faults injected this invocation.
        count: u64,
    },
    /// The invocation's latency breached the histogram tail threshold.
    TailBreach {
        /// Observed invocation latency, ns.
        observed_ns: u64,
        /// The threshold (tail factor × running median), ns.
        threshold_ns: u64,
    },
}

impl std::fmt::Display for FlightReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlightReason::Degraded { stage } => write!(f, "watchdog-degraded stage={stage}"),
            FlightReason::FaultInjected { count } => write!(f, "fault-injected count={count}"),
            FlightReason::TailBreach {
                observed_ns,
                threshold_ns,
            } => write!(f, "tail-breach observed={observed_ns}ns threshold={threshold_ns}ns"),
        }
    }
}

/// One captured anomaly: the invocation's complete trace plus the metrics
/// state at capture time.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// What fired.
    pub reason: FlightReason,
    /// The invocation's merged event log (passes `ilan_trace::audit` —
    /// the rings held the *complete* invocation, not a truncated tail).
    pub log: EventLog,
    /// `log` rendered as a Chrome `chrome://tracing` / Perfetto JSON trace.
    pub chrome_json: String,
    /// OpenMetrics snapshot of the owning registry at capture time.
    pub metrics_text: String,
}

/// Holds at most one [`FlightDump`], first-anomaly-wins.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    slot: Mutex<Option<FlightDump>>,
    armed: AtomicBool,
    triggers: AtomicU64,
}

impl FlightRecorder {
    /// A fresh, armed recorder.
    pub fn new() -> Self {
        FlightRecorder {
            slot: Mutex::new(None),
            armed: AtomicBool::new(true),
            triggers: AtomicU64::new(0),
        }
    }

    /// Whether a capture would be stored (armed and no dump parked yet).
    ///
    /// The pool checks this before paying for log collection.
    pub fn wants_capture(&self) -> bool {
        self.armed.load(Ordering::Relaxed) && !self.has_dump()
    }

    /// Arms or disarms the recorder (disarmed recorders still count
    /// triggers).
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::Relaxed);
    }

    /// Records an anomaly. The first capture while armed parks the dump
    /// (rendering the Chrome trace from `log`); later triggers only count.
    pub fn capture(&self, reason: FlightReason, log: EventLog, metrics_text: String) {
        self.triggers.fetch_add(1, Ordering::Relaxed);
        if !self.armed.load(Ordering::Relaxed) {
            return;
        }
        let mut slot = self.slot.lock().expect("flight recorder poisoned");
        if slot.is_none() {
            let chrome_json = log.chrome_trace_json();
            *slot = Some(FlightDump {
                reason,
                log,
                chrome_json,
                metrics_text,
            });
        }
    }

    /// Counts an anomaly for which no log was available (e.g. the inline
    /// fast path, which runs without rings).
    pub fn note_trigger(&self) {
        self.triggers.fetch_add(1, Ordering::Relaxed);
    }

    /// Total anomalies seen, captured or not.
    pub fn triggers(&self) -> u64 {
        self.triggers.load(Ordering::Relaxed)
    }

    /// Whether a dump is parked.
    pub fn has_dump(&self) -> bool {
        self.slot.lock().expect("flight recorder poisoned").is_some()
    }

    /// Takes the parked dump, re-arming the recorder for the next anomaly.
    pub fn take(&self) -> Option<FlightDump> {
        self.slot.lock().expect("flight recorder poisoned").take()
    }
}

/// Amortized tail-breach detection over a latency histogram.
///
/// Tracks a running threshold of `factor × median`, recomputed every
/// `RECOMPUTE_PERIOD` (64) observations (an allocation-free sweep of the live
/// buckets), so the per-invocation cost is one comparison plus the
/// histogram record. No breach fires before `min_samples` observations —
/// a cold median is noise.
#[derive(Debug)]
pub struct TailTracker {
    hist: Histogram,
    factor: u64,
    min_samples: u64,
    threshold: AtomicU64,
}

/// Observations between threshold recomputations.
pub const RECOMPUTE_PERIOD: u64 = 64;

impl TailTracker {
    /// Tracks `hist` with a threshold of `factor × median` after
    /// `min_samples` observations.
    pub fn new(hist: Histogram, factor: u64, min_samples: u64) -> Self {
        TailTracker {
            hist,
            factor: factor.max(1),
            min_samples: min_samples.max(1),
            threshold: AtomicU64::new(0),
        }
    }

    /// The current threshold (0 until established).
    pub fn threshold_ns(&self) -> u64 {
        self.threshold.load(Ordering::Relaxed)
    }

    /// Records `v` and reports `Some(threshold)` when `v` breaches the
    /// established tail threshold.
    pub fn observe(&self, v: u64) -> Option<u64> {
        // Check against the threshold *before* folding the sample in, so a
        // pathological observation cannot raise the bar it is judged by.
        let threshold = self.threshold.load(Ordering::Relaxed);
        let breached = threshold > 0 && v > threshold;
        self.hist.record(v);
        let count = self.hist.count();
        if count >= self.min_samples && (threshold == 0 || count.is_multiple_of(RECOMPUTE_PERIOD)) {
            let median = self.hist.live_quantile(0.5);
            self.threshold
                .store(median.saturating_mul(self.factor), Ordering::Relaxed);
        }
        breached.then_some(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_trace::{Event, EventKind, EventLog};

    fn tiny_log() -> EventLog {
        let events = vec![
            Event {
                time_ns: 0,
                worker: ilan_trace::DISPATCHER,
                node: 0,
                seq: 0,
                kind: EventKind::ChunkEnqueue {
                    chunk: 0,
                    home: 0,
                    strict: false,
                },
            },
            Event {
                time_ns: 5,
                worker: 0,
                node: 0,
                seq: 0,
                kind: EventKind::LocalPop { chunk: 0 },
            },
        ];
        EventLog::from_events(events, 1, 1, 0)
    }

    #[test]
    fn first_capture_wins_and_later_triggers_count() {
        let fr = FlightRecorder::new();
        assert!(fr.wants_capture());
        fr.capture(
            FlightReason::Degraded { stage: 2 },
            tiny_log(),
            "# EOF\n".into(),
        );
        fr.capture(
            FlightReason::FaultInjected { count: 1 },
            tiny_log(),
            "# EOF\n".into(),
        );
        assert_eq!(fr.triggers(), 2);
        assert!(!fr.wants_capture());
        let dump = fr.take().expect("dump parked");
        assert_eq!(dump.reason, FlightReason::Degraded { stage: 2 });
        assert!(dump.chrome_json.contains("traceEvents"));
        assert!(fr.wants_capture(), "take re-arms");
    }

    #[test]
    fn disarmed_recorder_only_counts() {
        let fr = FlightRecorder::new();
        fr.set_armed(false);
        fr.capture(
            FlightReason::FaultInjected { count: 3 },
            tiny_log(),
            String::new(),
        );
        assert_eq!(fr.triggers(), 1);
        assert!(!fr.has_dump());
    }

    #[test]
    fn tail_tracker_fires_only_after_warmup() {
        let hist = Histogram::new();
        let t = TailTracker::new(hist, 8, 32);
        // Warmup: steady 1000ns invocations. No threshold yet, no breach.
        for _ in 0..31 {
            assert_eq!(t.observe(1_000), None);
        }
        assert_eq!(t.threshold_ns(), 0);
        assert_eq!(t.observe(1_000), None); // 32nd sample establishes it
        let thr = t.threshold_ns();
        assert!(thr >= 8 * 1_000, "threshold {thr} from median ~1000");
        // A 100x outlier breaches; a nominal sample does not.
        assert_eq!(t.observe(100_000), Some(thr));
        assert_eq!(t.observe(1_000), None);
    }

    #[test]
    fn reason_display_is_stable() {
        assert_eq!(
            FlightReason::TailBreach {
                observed_ns: 9,
                threshold_ns: 4
            }
            .to_string(),
            "tail-breach observed=9ns threshold=4ns"
        );
        assert_eq!(
            FlightReason::Degraded { stage: 1 }.to_string(),
            "watchdog-degraded stage=1"
        );
    }
}
