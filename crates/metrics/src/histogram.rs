//! Log-linear (HDR-style) histograms with deterministic bucket boundaries.
//!
//! The value range `0..=u64::MAX` is covered by [`NUM_BUCKETS`] buckets:
//! values below `2^SUB_BITS` get exact unit buckets, and every octave above
//! that is split into `2^SUB_BITS` equal linear sub-buckets, bounding the
//! relative quantization error by `2^-SUB_BITS` (6.25% with the default 4
//! sub-bucket bits) at any magnitude. Boundaries are a pure function of the
//! index — no configuration — so snapshots taken by different workers,
//! lanes, or whole runs merge bucket-for-bucket and quantiles stay
//! comparable everywhere.
//!
//! Recording is three relaxed `fetch_add`s (bucket, sum, count): lock-free,
//! allocation-free, wait-free. Reads ([`Histogram::snapshot`],
//! [`Histogram::live_quantile`]) are relaxed sweeps — a snapshot racing
//! concurrent writers is a consistent *lower bound* per bucket, exact once
//! writers are quiescent (the pool reads only from the dispatcher after the
//! exit latch closes the release edge).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << SUB_BITS; // 16

/// Total bucket count covering all of `u64`.
///
/// Indices `0..16` are the unit buckets, then 60 octaves of 16 sub-buckets
/// reach `u64::MAX`.
pub const NUM_BUCKETS: usize = SUB_COUNT * (64 - SUB_BITS as usize + 1);

/// The bucket index holding `v`. Monotone in `v`; total over `u64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // floor(log2 v) >= SUB_BITS
    let octave = (exp - SUB_BITS + 1) as usize;
    let sub = ((v >> (exp - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
    (octave << SUB_BITS) + sub
}

/// The inclusive `[lower, upper]` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    let lower = bucket_lower(index);
    let upper = if index + 1 == NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1) - 1
    };
    (lower, upper)
}

fn bucket_lower(index: usize) -> u64 {
    if index < SUB_COUNT {
        return index as u64;
    }
    let octave = (index >> SUB_BITS) as u32;
    let sub = (index & (SUB_COUNT - 1)) as u64;
    (1u64 << (octave + SUB_BITS - 1)) + (sub << (octave - 1))
}

/// A concurrent log-linear histogram. `Arc`-backed; clones share state.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

#[derive(Debug)]
struct HistInner {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v`.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        let i = &self.inner;
        i.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        i.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        i.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`) read directly off the live
    /// buckets, without allocating — the anomaly check on the dispatch path
    /// uses this. Returns the upper bound of the quantile's bucket (so the
    /// true value is `<=` the result), or 0 when empty.
    pub fn live_quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = quantile_rank(q, count);
        let mut cum = 0u64;
        for (idx, b) in self.inner.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_bounds(idx).1;
            }
        }
        u64::MAX // racing writers bumped `count` after our loads
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<(u16, u64)> = self
            .inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u16, n))
            })
            .collect();
        // Derive count/sum from the swept buckets where possible so the
        // snapshot is internally consistent even when racing writers.
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistSnapshot {
            buckets,
            sum: self.inner.sum.load(Ordering::Relaxed),
            count,
        }
    }
}

fn quantile_rank(q: f64, count: u64) -> u64 {
    let rank = (q.clamp(0.0, 1.0) * count as f64).ceil() as u64;
    rank.clamp(1, count)
}

/// An immutable, mergeable copy of a [`Histogram`]'s state.
///
/// Buckets are sparse `(index, count)` pairs in ascending index order.
/// Because boundaries are global constants, snapshots merge and subtract
/// bucket-wise with no renormalization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Non-empty buckets as `(bucket index, count)`, ascending by index.
    pub buckets: Vec<(u16, u64)>,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl HistSnapshot {
    /// The merged distribution of `self` and `other`.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        buckets.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        buckets.push((ib, nb));
                        b.next();
                    } else {
                        buckets.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(_), None) => {
                    buckets.extend(a.by_ref().copied());
                }
                (None, Some(_)) => {
                    buckets.extend(b.by_ref().copied());
                }
                (None, None) => break,
            }
        }
        HistSnapshot {
            buckets,
            sum: self.sum.saturating_add(other.sum),
            count: self.count + other.count,
        }
    }

    /// The distribution recorded *after* `earlier` was taken: bucket-wise
    /// saturating subtraction. `later.delta(&earlier)` isolates one run.
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut prior: std::collections::BTreeMap<u16, u64> =
            earlier.buckets.iter().copied().collect();
        let buckets: Vec<(u16, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let d = n.saturating_sub(prior.remove(&i).unwrap_or(0));
                (d > 0).then_some((i, d))
            })
            .collect();
        HistSnapshot {
            buckets,
            sum: self.sum.saturating_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
        }
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket holding the rank, or 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = quantile_rank(q, self.count);
        let mut cum = 0u64;
        for &(i, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return bucket_bounds(i as usize).1;
            }
        }
        // Unreachable when counts are consistent; defensive for deltas.
        self.buckets.last().map_or(0, |&(i, _)| bucket_bounds(i as usize).1)
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_contiguous_and_monotone_at_boundaries() {
        // Every octave boundary continues the previous bucket run.
        let mut last = bucket_index(0);
        assert_eq!(last, 0);
        for v in 1..4096u64 {
            let i = bucket_index(v);
            assert!(i == last || i == last + 1, "gap at v={v}: {last} -> {i}");
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bounds_partition_the_value_space() {
        let mut next = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, next, "bucket {i} lower bound");
            assert!(hi >= lo);
            if i + 1 < NUM_BUCKETS {
                next = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 1_000, 123_456, 5_000_000_000] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!((lo..=hi).contains(&v));
            assert!((hi - lo) as f64 <= v as f64 / 16.0 + 1.0, "bucket too wide at {v}");
        }
    }

    #[test]
    fn quantiles_nearest_rank() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 of 1..=100 is 50; the bucket holding 50 is [48, 51].
        let p50 = s.quantile(0.5);
        assert!((48..=55).contains(&p50), "p50={p50}");
        assert_eq!(s.quantile(1.0), bucket_bounds(bucket_index(100)).1);
        assert_eq!(h.live_quantile(0.5), p50);
    }

    #[test]
    fn merge_and_delta_are_inverse_on_disjoint_runs() {
        let h = Histogram::new();
        h.record_n(10, 3);
        let first = h.snapshot();
        h.record_n(99, 2);
        h.record(10);
        let second = h.snapshot();
        let delta = second.delta(&first);
        assert_eq!(delta.count, 3);
        assert_eq!(first.merge(&delta), second);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.live_quantile(0.5), 0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
