//! **ilan-metrics** — always-on, near-zero-cost telemetry for the ILAN
//! scheduler stack.
//!
//! ILAN's premise is a runtime that *measures itself*: the PTT is a
//! performance trace table and Algorithm 1 steers on observed invocation
//! times. This crate extends that stance to the whole stack with three
//! complementary layers, cheapest first:
//!
//! 1. **Metrics** ([`Counter`], [`Gauge`], [`ShardedCounter`],
//!    [`Histogram`]) — lock-free, allocation-free on the hot path, always
//!    on. Counters are single cache-padded atomics; sharded counters give
//!    each worker its own padded shard so increments never contend;
//!    histograms are log-linear (HDR-style) with deterministic bucket
//!    boundaries, so snapshots from different workers, processes, or runs
//!    merge exactly.
//! 2. **Registry** ([`Registry`]) — names and owns the metrics, takes
//!    point-in-time [`MetricsSnapshot`]s with *delta* semantics
//!    (`later.delta(&earlier)` isolates one run's activity), and renders
//!    a deterministic OpenMetrics/Prometheus text exposition
//!    ([`MetricsSnapshot::render`]): same state, same bytes.
//! 3. **Flight recorder** ([`FlightRecorder`]) — a retrospective dump of
//!    the most recent invocation's complete `ilan-trace` event log plus a
//!    metrics snapshot, captured only when an anomaly fires (watchdog
//!    degradation, injected fault, or a latency-histogram tail breach via
//!    [`TailTracker`]). Post-mortems do not require re-running with
//!    tracing enabled.
//!
//! The split mirrors the cost ladder: metrics are always on (a handful of
//! relaxed atomics per invocation), flight recording is always armed (ring
//! writes only, no collection until an anomaly), and full `ilan-trace`
//! tracing stays opt-in for deep-dive runs.
//!
//! # Example
//!
//! ```
//! use ilan_metrics::Registry;
//!
//! let reg = Registry::new();
//! let dispatches = reg.counter("ilan_pool_dispatch", "Dispatched taskloop invocations");
//! let latency = reg.histogram("ilan_pool_dispatch_ns", "Dispatch latency, ns");
//!
//! let before = reg.snapshot();
//! dispatches.inc();
//! latency.record(1_280);
//! let delta = reg.snapshot().delta(&before);
//! assert!(delta.render().contains("ilan_pool_dispatch_total 1"));
//! ```

#![warn(missing_docs)]

mod counter;
mod expose;
mod flight;
mod histogram;
mod registry;

pub use counter::{Counter, Gauge, ShardedCounter};
pub use flight::{FlightDump, FlightReason, FlightRecorder, TailTracker};
pub use histogram::{bucket_bounds, bucket_index, HistSnapshot, Histogram, NUM_BUCKETS};
pub use registry::{FamilyMeta, MetricKind, MetricsSnapshot, Registry, SampleValue, SeriesKey};
