//! The metric registry: names, labels, snapshots, deltas.
//!
//! A [`Registry`] is a cheaply cloneable handle to a shared name space.
//! Layers register their instruments once at construction time (the pool
//! when it is built, the server per run) and keep the returned handles;
//! registration takes a lock, but recording through a handle never does.
//! Registering an existing name returns the *same* underlying instrument,
//! so independent components can share a series deliberately.
//!
//! [`Registry::snapshot`] freezes every series into a [`MetricsSnapshot`];
//! [`MetricsSnapshot::delta`] subtracts an earlier snapshot to isolate one
//! window of activity (one invocation, one job, one bench rep). Both are
//! `BTreeMap`-ordered, which is what makes the exposition byte-identical
//! for identical state.

use crate::counter::{Counter, Gauge, ShardedCounter};
use crate::expose::render_openmetrics;
use crate::histogram::{HistSnapshot, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The kind of a metric family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// Monotonic counter (rendered with the OpenMetrics `_total` suffix).
    Counter,
    /// Instantaneous signed value.
    Gauge,
    /// Log-linear distribution.
    Histogram,
}

/// Identifies one series: family name plus its (possibly empty) label set.
///
/// Labels are sorted at construction so equal label sets compare equal
/// regardless of the order the caller wrote them in.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric family name (`snake_case`, no suffix).
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// A key for `name` with the given labels (sorted internally).
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// Family-level metadata carried into snapshots for rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyMeta {
    /// One-line help string.
    pub help: String,
    /// The family's kind.
    pub kind: MetricKind,
}

enum Instrument {
    Counter(Counter),
    Sharded(ShardedCounter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> MetricKind {
        match self {
            Instrument::Counter(_) | Instrument::Sharded(_) => MetricKind::Counter,
            Instrument::Gauge(_) => MetricKind::Gauge,
            Instrument::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Default)]
struct Inner {
    families: BTreeMap<String, FamilyMeta>,
    series: BTreeMap<SeriesKey, Instrument>,
}

/// The shared metric name space. Clones alias the same registry.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T: Clone>(
        &self,
        key: SeriesKey,
        help: &str,
        make: impl FnOnce() -> Instrument,
        unwrap: impl FnOnce(&Instrument) -> Option<T>,
    ) -> T {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.families.entry(key.name.clone()).or_insert_with(|| FamilyMeta {
            help: help.to_string(),
            kind: MetricKind::Counter, // fixed up below from the instrument
        });
        let slot = inner.series.entry(key.clone()).or_insert_with(make);
        let kind = slot.kind();
        let got = unwrap(slot).unwrap_or_else(|| {
            panic!("metric {:?} re-registered with a different kind", key.name)
        });
        inner.families.get_mut(&key.name).expect("family just inserted").kind = kind;
        got
    }

    /// Registers (or retrieves) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a labelled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.register(
            SeriesKey::new(name, labels),
            help,
            || Instrument::Counter(Counter::new()),
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a sharded counter with `shards` shards.
    ///
    /// Snapshots expose the *sum*; sharding is purely a contention measure.
    pub fn sharded_counter(&self, name: &str, help: &str, shards: usize) -> ShardedCounter {
        self.sharded_counter_with(name, help, &[], shards)
    }

    /// Registers (or retrieves) a labelled sharded counter series.
    pub fn sharded_counter_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        shards: usize,
    ) -> ShardedCounter {
        self.register(
            SeriesKey::new(name, labels),
            help,
            || Instrument::Sharded(ShardedCounter::new(shards)),
            |i| match i {
                Instrument::Sharded(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a labelled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.register(
            SeriesKey::new(name, labels),
            help,
            || Instrument::Gauge(Gauge::new()),
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a labelled histogram series.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.register(
            SeriesKey::new(name, labels),
            help,
            || Instrument::Histogram(Histogram::new()),
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Freezes every series into a point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            families: inner.families.clone(),
            series: inner
                .series
                .iter()
                .map(|(k, v)| {
                    let sample = match v {
                        Instrument::Counter(c) => SampleValue::Counter(c.get()),
                        Instrument::Sharded(c) => SampleValue::Counter(c.sum()),
                        Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                        Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                    };
                    (k.clone(), sample)
                })
                .collect(),
        }
    }

    /// Renders the current state as OpenMetrics text
    /// (`snapshot().render()` in one call).
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// One sampled value in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    /// A counter's cumulative value.
    Counter(u64),
    /// A gauge's instantaneous value.
    Gauge(i64),
    /// A histogram's distribution.
    Histogram(HistSnapshot),
}

/// A point-in-time copy of a registry's series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Family metadata, keyed by family name.
    pub families: BTreeMap<String, FamilyMeta>,
    /// Sampled series in deterministic key order.
    pub series: BTreeMap<SeriesKey, SampleValue>,
}

impl MetricsSnapshot {
    /// The activity between `earlier` and `self`: counters and histograms
    /// subtract (saturating); gauges keep their current value. Series
    /// absent from `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let series = self
            .series
            .iter()
            .map(|(k, v)| {
                let d = match (v, earlier.series.get(k)) {
                    (SampleValue::Counter(now), Some(SampleValue::Counter(then))) => {
                        SampleValue::Counter(now.saturating_sub(*then))
                    }
                    (SampleValue::Histogram(now), Some(SampleValue::Histogram(then))) => {
                        SampleValue::Histogram(now.delta(then))
                    }
                    _ => v.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        MetricsSnapshot {
            families: self.families.clone(),
            series,
        }
    }

    /// The sampled value for an unlabelled series, if present.
    pub fn get(&self, name: &str) -> Option<&SampleValue> {
        self.get_with(name, &[])
    }

    /// The sampled value for a labelled series, if present.
    pub fn get_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        self.series.get(&SeriesKey::new(name, labels))
    }

    /// A counter's value (0 when absent). Sums all label sets of `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.series
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| match v {
                SampleValue::Counter(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// A histogram snapshot by unlabelled name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        match self.get(name) {
            Some(SampleValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Renders the snapshot as deterministic OpenMetrics text.
    pub fn render(&self) -> String {
        render_openmetrics(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = Registry::new();
        let a = reg.counter("ilan_test", "help");
        let b = reg.counter("ilan_test", "ignored on re-register");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        reg.counter("ilan_test", "help");
        reg.gauge("ilan_test", "help");
    }

    #[test]
    fn labels_are_order_insensitive() {
        let reg = Registry::new();
        let a = reg.counter_with("c", "h", &[("x", "1"), ("y", "2")]);
        let b = reg.counter_with("c", "h", &[("y", "2"), ("x", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn snapshot_delta_isolates_a_window() {
        let reg = Registry::new();
        let c = reg.counter("ilan_jobs", "jobs");
        let g = reg.gauge("ilan_active", "active");
        let h = reg.histogram("ilan_lat_ns", "latency");
        c.add(5);
        h.record(100);
        g.set(3);
        let before = reg.snapshot();
        c.add(2);
        h.record(200);
        g.set(7);
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.get("ilan_jobs"), Some(&SampleValue::Counter(2)));
        assert_eq!(delta.get("ilan_active"), Some(&SampleValue::Gauge(7)));
        match delta.get("ilan_lat_ns") {
            Some(SampleValue::Histogram(h)) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 200);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sharded_counters_snapshot_as_sums() {
        let reg = Registry::new();
        let s = reg.sharded_counter("ilan_steals", "steals", 4);
        s.add(0, 3);
        s.add(3, 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("ilan_steals"), 7);
    }
}
