//! Property-based tests for the histogram and exposition invariants
//! (ISSUE 5 satellite): bucket containment, merge quantile bounds,
//! snapshot/delta round-trips, and byte-deterministic exposition.

use ilan_metrics::{bucket_bounds, bucket_index, Histogram, Registry, NUM_BUCKETS};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every recorded value falls inside its reported bucket, over the
    /// whole u64 range.
    #[test]
    fn recorded_value_falls_in_its_bucket(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "v={v} not in bucket {idx} [{lo}, {hi}]");
    }

    /// Bucket assignment is monotone: a larger value never lands in a
    /// smaller bucket.
    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// merge(a, b) quantiles are bounded by the inputs' quantiles.
    #[test]
    fn merge_quantiles_bounded_by_inputs(
        xs in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        ys in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let a = hist_of(&xs).snapshot();
        let b = hist_of(&ys).snapshot();
        let m = a.merge(&b);
        prop_assert_eq!(m.count, a.count + b.count);
        let (qa, qb, qm) = (a.quantile(q), b.quantile(q), m.quantile(q));
        prop_assert!(qm >= qa.min(qb), "q={q}: merged {qm} below min({qa}, {qb})");
        prop_assert!(qm <= qa.max(qb), "q={q}: merged {qm} above max({qa}, {qb})");
    }

    /// A snapshot taken after more recording, minus the earlier snapshot,
    /// is exactly the histogram of the later values alone.
    #[test]
    fn snapshot_delta_round_trip_exact(
        first in proptest::collection::vec(any::<u64>(), 0..100),
        second in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let h = hist_of(&first);
        let before = h.snapshot();
        for &v in &second {
            h.record(v);
        }
        let after = h.snapshot();
        let delta = after.delta(&before);
        let expected = hist_of(&second).snapshot();
        // Sums saturate independently; compare only when neither saturated.
        let no_overflow = first.iter().chain(&second)
            .try_fold(0u64, |acc, &v| acc.checked_add(v)).is_some();
        if no_overflow {
            prop_assert_eq!(&delta, &expected);
        } else {
            prop_assert_eq!(delta.buckets, expected.buckets);
            prop_assert_eq!(delta.count, expected.count);
        }
        // And merging back reconstructs the full distribution.
        prop_assert_eq!(before.merge(&expected).buckets, after.buckets);
    }

    /// Quantiles of any snapshot are sandwiched by the extreme recorded
    /// values' bucket bounds.
    #[test]
    fn quantiles_within_recorded_range(
        xs in proptest::collection::vec(any::<u64>(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let s = hist_of(&xs).snapshot();
        let min = *xs.iter().min().unwrap();
        let max = *xs.iter().max().unwrap();
        let quant = s.quantile(q);
        prop_assert!(quant >= bucket_bounds(bucket_index(min)).0);
        prop_assert!(quant <= bucket_bounds(bucket_index(max)).1);
    }

    /// The exposition text is byte-deterministic: two registries built by
    /// the same operation sequence render identically, and re-rendering a
    /// registry is stable.
    #[test]
    fn exposition_text_is_byte_deterministic(
        counters in proptest::collection::vec((0usize..3, 0u64..1000), 0..10),
        samples in proptest::collection::vec(0u64..10_000_000, 0..50),
        gauge in any::<u64>(),
    ) {
        let gauge = gauge as i64;
        let build = || {
            let reg = Registry::new();
            for &(name, n) in &counters {
                let label = ["alpha", "beta", "gamma"][name];
                reg.counter_with("ilan_ops", "ops", &[("k", label)]).add(n);
            }
            let h = reg.histogram("ilan_lat_ns", "latency");
            for &v in &samples {
                h.record(v);
            }
            reg.gauge("ilan_level", "level").set(gauge);
            reg
        };
        let (ra, rb) = (build(), build());
        let (ta, tb) = (ra.render(), rb.render());
        prop_assert_eq!(&ta, &tb, "same construction must render identical bytes");
        prop_assert_eq!(&ta, &ra.render(), "re-rendering must be stable");
        prop_assert!(ta.ends_with("# EOF\n"));
        // The registry-level delta of identical snapshots is all-zero
        // counters and empty histograms.
        let zero = ra.snapshot().delta(&ra.snapshot());
        prop_assert_eq!(zero.counter_total("ilan_ops"), 0);
        if let Some(h) = zero.histogram("ilan_lat_ns") {
            prop_assert_eq!(h.count, 0);
            prop_assert!(h.buckets.is_empty());
        }
    }

    /// Histogram bucket lines in the exposition are cumulative and
    /// consistent with `_count`.
    #[test]
    fn exposition_histogram_is_cumulative(
        samples in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("h", "h");
        for &v in &samples {
            h.record(v);
        }
        let text = reg.render();
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("h_bucket")) {
            let val: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            prop_assert!(val >= last, "bucket counts must be cumulative: {text}");
            last = val;
        }
        prop_assert_eq!(last, samples.len() as u64, "+Inf bucket equals count");
    }
}
