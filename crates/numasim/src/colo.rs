//! Multi-tenant colocation: several concurrent taskloops on one machine.
//!
//! [`SimMachine`](crate::SimMachine) executes one taskloop at a time — the
//! paper's single-application model. [`ColoMachine`] extends the same
//! fluid-rate simulation to several *lanes* (tenants) whose loops run
//! concurrently. All lanes share one [`CongestionField`]: the per-node
//! memory controllers, the inter-socket links and the row-buffer stream
//! budget are priced across every running chunk on the machine, regardless
//! of which lane issued it. That shared field *is* the interference channel
//! a co-scheduler must manage.
//!
//! Two additional mechanisms model sharing policies:
//!
//! * **Oversubscription** — when two lanes activate the same core, its
//!   running chunks timeshare it: each progresses at `1/occupancy` of its
//!   rate and issues `1/occupancy` of its DRAM traffic (a round-robin OS
//!   scheduler in the fluid limit). Disjoint partitions have occupancy 1
//!   and behave exactly like the single-loop engine.
//! * **Lead time** — each loop may start with a serial lead (scheduler
//!   decision cost plus any serial section of the tenant's program) during
//!   which its workers are not yet active.
//!
//! Simplifications relative to [`SimMachine`]: no outlier windows (per-core
//! frequency jitter still applies — it is drawn once per machine), no
//! per-chunk [`TaskRecord`](crate::TaskRecord) tracing, and scheduling
//! actions (pops/steals) are not slowed by oversubscription — only chunk
//! execution is. Scheduler *event* tracing is available: after
//! [`set_tracing`](ColoMachine::set_tracing), every completed loop's
//! [`LoopOutcome::events`] carries its auditable event log (timestamps on
//! the machine-global clock).
//!
//! Determinism: lanes are iterated in index order at every event, so a given
//! machine seed and call sequence replays exactly.
//!
//! **Fault injection** — [`set_fault_plan`](ColoMachine::set_fault_plan)
//! applies an [`ilan_faults::FaultPlan`] to every loop started afterwards,
//! modelling the fault classes that make sense in a fluid-rate simulation:
//! temporary worker stalls (the worker sits out of the acquire loop until
//! its stall expires) and slow nodes (every chunk executing there is
//! stretched by the plan's multiplier). Wakeup drops, steal refusals and
//! permanent stalls are native-pool mechanics with no fluid analogue;
//! permanent stalls are rejected outright. Use
//! [`FaultConfig::sim_safe`](ilan_faults::FaultConfig::sim_safe) to draw
//! plans restricted to the shared classes — the differential oracle runs the
//! native pool and this machine under the *same* plan and compares
//! placements.

use crate::exec::{begin_chunk, make_workers, seek, PoolSet, Worker, WorkerState, EPS};
use crate::outcome::{LoopOutcome, NodeOutcome};
use crate::params::MachineParams;
use crate::plan::PlacementPlan;
use crate::rates::{chunk_duration, CongestionField};
use crate::task::TaskSpec;
use ilan_faults::FaultPlan;
use ilan_topology::{CpuSet, NodeId, Topology};
use ilan_trace::{EventKind, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// One lane's in-flight taskloop invocation.
struct LaneRun {
    tasks: Vec<TaskSpec>,
    pools: PoolSet,
    workers: Vec<Worker>,
    node_worker_count: Vec<usize>,
    /// Machine time when the loop was submitted.
    started_ns: f64,
    /// Remaining serial lead (caller-provided lead plus dispatch cost);
    /// workers stay inactive until it reaches zero.
    lead_remaining_ns: f64,
    /// Remaining closing-barrier time once all chunks have completed.
    barrier_remaining_ns: Option<f64>,
    overhead_ns: f64,
    nodes_out: Vec<NodeOutcome>,
    migrations: usize,
    rng_state: u64,
    /// Scheduler event recorder (present only when the machine traces).
    recorder: Option<Recorder>,
}

impl LaneRun {
    /// Whether the lane is past its lead and still has chunks in flight.
    fn executing(&self) -> bool {
        self.lead_remaining_ns <= 0.0 && self.barrier_remaining_ns.is_none()
    }
}

/// A simulated NUMA machine shared by several concurrent taskloops.
///
/// Lanes are created up front with [`add_lane`](Self::add_lane); a lane runs
/// at most one loop at a time ([`start_loop`](Self::start_loop)), mirroring
/// the one-loop-then-barrier structure of the tenants' programs. Progress is
/// driven by [`run_until_next_completion`](Self::run_until_next_completion)
/// or, for arrival-driven callers, [`run_until_ns`](Self::run_until_ns).
pub struct ColoMachine {
    params: MachineParams,
    freqs: Vec<f64>,
    rng: StdRng,
    now_ns: f64,
    lanes: Vec<Option<LaneRun>>,
    field: CongestionField,
    /// Scratch: number of running chunks per core, across all lanes.
    core_load: Vec<usize>,
    finished: VecDeque<(usize, LoopOutcome)>,
    /// Whether loops started from now on record scheduler events.
    tracing: bool,
    /// Fault plan applied to loops started from now on.
    faults: Option<FaultPlan>,
}

impl ColoMachine {
    /// Builds a machine and draws its per-run noise (per-core frequency
    /// factors) from `seed`.
    ///
    /// # Panics
    /// Panics if `params` fails validation.
    pub fn new(params: MachineParams, seed: u64) -> Self {
        params.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let freqs = params
            .noise
            .draw_freqs(&mut rng, params.topology.num_cores());
        let num_nodes = params.topology.num_nodes();
        let num_sockets = params.topology.num_sockets();
        let num_cores = params.topology.num_cores();
        ColoMachine {
            params,
            freqs,
            rng,
            now_ns: 0.0,
            lanes: Vec::new(),
            field: CongestionField::new(num_nodes, num_sockets),
            core_load: vec![0; num_cores],
            finished: VecDeque::new(),
            tracing: false,
            faults: None,
        }
    }

    /// Enables (or disables) scheduler event tracing for loops started from
    /// now on; completed traced loops report their log in
    /// [`LoopOutcome::events`]. Loops already in flight are unaffected.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Applies `plan` to the machine: temporary worker stalls (by
    /// lane-worker index, anchored at each subsequently started loop's
    /// execution start) and slow-node multipliers (machine-level — a slow
    /// memory node stretches every chunk executing there, including loops
    /// already in flight). See the module docs for the modelled subset.
    ///
    /// # Panics
    /// Panics if the plan contains a permanent stall — a fluid lane with a
    /// permanently absent worker either completes on its peers or deadlocks
    /// on strict work; the graceful-degradation story (watchdog, dispatcher
    /// drain) belongs to the native pool, not the simulator.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            !plan.has_permanent_stall(),
            "permanent stalls are out of simulation scope (draw plans with FaultConfig::sim_safe)"
        );
        self.faults = Some(plan);
    }

    /// The fault plan applied to newly started loops, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The machine's topology.
    pub fn topology(&self) -> &Topology {
        &self.params.topology
    }

    /// The machine's performance parameters.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Global simulated clock, ns.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Registers a new (idle) lane and returns its id.
    pub fn add_lane(&mut self) -> usize {
        self.lanes.push(None);
        self.lanes.len() - 1
    }

    /// Whether `lane` currently has a loop in flight.
    pub fn lane_busy(&self, lane: usize) -> bool {
        self.lanes[lane].is_some()
    }

    /// Whether any lane has a loop in flight.
    pub fn any_busy(&self) -> bool {
        !self.finished.is_empty() || self.lanes.iter().any(|l| l.is_some())
    }

    /// Submits one taskloop invocation on `lane`: `lead_ns` of serial time
    /// (decision cost + the tenant's serial section), then dispatch, then
    /// parallel execution on `active` cores under `plan`.
    ///
    /// # Panics
    /// Panics if the lane is already busy, the plan does not cover `tasks`,
    /// or `active` is empty / outside the topology.
    pub fn start_loop(
        &mut self,
        lane: usize,
        active: &CpuSet,
        plan: &PlacementPlan,
        tasks: Vec<TaskSpec>,
        lead_ns: f64,
    ) {
        assert!(
            self.lanes[lane].is_none(),
            "lane {lane} already has a loop in flight"
        );
        assert!(
            lead_ns >= 0.0 && lead_ns.is_finite(),
            "lead time must be finite and >= 0"
        );
        let topo = &self.params.topology;
        let (mut workers, node_worker_count) = make_workers(topo, active);
        let perm_seed: u64 = rand::Rng::random(&mut self.rng);
        let mut recorder = self.tracing.then(Recorder::new);
        let pools = PoolSet::build(
            plan,
            tasks.len(),
            &workers,
            &node_worker_count,
            topo.num_nodes(),
            perm_seed,
            recorder.as_mut(),
            self.now_ns,
        );
        let dispatch = pools.dispatch_ns(&self.params, tasks.len());
        if let Some(plan) = &self.faults {
            // Stalls are anchored to the moment workers would first acquire
            // work: submission plus the serial lead plus dispatch.
            let exec_start = self.now_ns + lead_ns + dispatch;
            for (i, w) in workers.iter_mut().enumerate() {
                if let Some(stall) = plan.stall_of(i as u32) {
                    w.stall_until_ns = exec_start + stall.delay_ns as f64;
                }
            }
        }
        self.lanes[lane] = Some(LaneRun {
            tasks,
            pools,
            workers,
            node_worker_count,
            started_ns: self.now_ns,
            lead_remaining_ns: lead_ns + dispatch,
            barrier_remaining_ns: None,
            overhead_ns: dispatch,
            nodes_out: vec![NodeOutcome::default(); topo.num_nodes()],
            migrations: 0,
            rng_state: perm_seed ^ 0xD1B54A32D192ED03,
            recorder,
        });
    }

    /// Runs until some lane's loop completes, returning `(lane, outcome)`.
    /// Returns `None` if no lane has a loop in flight. The outcome's
    /// makespan spans submission (including the lead) to barrier exit.
    pub fn run_until_next_completion(&mut self) -> Option<(usize, LoopOutcome)> {
        self.step_until(f64::INFINITY)
    }

    /// Runs until some lane's loop completes (`Some`) or the clock reaches
    /// `t_end` (`None`, with `now_ns() == t_end`). An idle machine jumps
    /// straight to `t_end`.
    ///
    /// # Panics
    /// Panics if `t_end` is not finite or lies in the past.
    pub fn run_until_ns(&mut self, t_end: f64) -> Option<(usize, LoopOutcome)> {
        assert!(t_end.is_finite(), "run_until_ns needs a finite deadline");
        assert!(
            t_end >= self.now_ns - EPS,
            "deadline {t_end} is before now {}",
            self.now_ns
        );
        self.step_until(t_end)
    }

    fn step_until(&mut self, t_end: f64) -> Option<(usize, LoopOutcome)> {
        loop {
            if let Some(done) = self.finished.pop_front() {
                return Some(done);
            }
            if self.lanes.iter().all(|l| l.is_none()) {
                if t_end.is_finite() {
                    self.now_ns = self.now_ns.max(t_end);
                }
                return None;
            }

            // Let every idle worker of every executing lane acquire work
            // (fixed point: batch steals can wake parked peers).
            for lane in self.lanes.iter_mut().flatten() {
                if !lane.executing() {
                    continue;
                }
                loop {
                    let mut any = false;
                    for i in 0..lane.workers.len() {
                        if lane.workers[i].stall_until_ns > self.now_ns + EPS {
                            // Stalled: sits out of the acquire loop; the
                            // event scan below bounds dt by the expiry.
                            continue;
                        }
                        if matches!(lane.workers[i].state, WorkerState::Idle) {
                            seek(
                                &mut lane.pools,
                                &mut lane.workers,
                                i,
                                self.now_ns,
                                &self.params,
                                &lane.node_worker_count,
                                &mut lane.rng_state,
                                &mut lane.overhead_ns,
                                &mut lane.migrations,
                                lane.recorder.as_mut(),
                            );
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                }
                // Every worker parked ⇒ the lane's work phase is over: close
                // the idle tails and enter the barrier.
                if lane
                    .workers
                    .iter()
                    .all(|w| matches!(w.state, WorkerState::Parked { .. }))
                {
                    assert!(
                        lane.pools.is_empty(),
                        "deadlock: tasks remain but every worker is parked"
                    );
                    for w in &lane.workers {
                        if let WorkerState::Parked { since } = w.state {
                            lane.overhead_ns += self.now_ns - since;
                        }
                    }
                    // Each worker releases the exit latch at barrier entry.
                    if let Some(recorder) = &mut lane.recorder {
                        for w in &lane.workers {
                            recorder.push(
                                w.core.index() as u32,
                                w.node as u32,
                                self.now_ns as u64,
                                EventKind::LatchRelease,
                            );
                        }
                    }
                    let threads = lane.workers.len();
                    let barrier = self.params.barrier_base_ns * (threads.max(2) as f64).log2();
                    lane.overhead_ns += barrier;
                    lane.barrier_remaining_ns = Some(barrier);
                }
            }

            self.recompute_rates();

            // Next event over all lanes: a lead or barrier expiring, a
            // scheduling action finishing, or a chunk completing — capped by
            // the caller's deadline.
            let mut dt = t_end - self.now_ns;
            for lane in self.lanes.iter().flatten() {
                if lane.lead_remaining_ns > 0.0 {
                    dt = dt.min(lane.lead_remaining_ns);
                    continue;
                }
                if let Some(b) = lane.barrier_remaining_ns {
                    dt = dt.min(b);
                    continue;
                }
                for w in &lane.workers {
                    if w.stall_until_ns > self.now_ns + EPS {
                        dt = dt.min(w.stall_until_ns - self.now_ns);
                        continue;
                    }
                    let t = match &w.state {
                        WorkerState::Overhead { remaining_ns, .. } => *remaining_ns,
                        WorkerState::Running {
                            remaining, rate, ..
                        } if *rate > 0.0 => remaining / rate,
                        _ => f64::INFINITY,
                    };
                    dt = dt.min(t);
                }
            }
            assert!(
                dt.is_finite(),
                "colocation machine has busy lanes but no next event"
            );
            if dt <= 0.0 {
                // Deadline already reached.
                return None;
            }

            self.advance(dt);

            if self.finished.is_empty() && self.now_ns >= t_end - EPS {
                return None;
            }
        }
    }

    /// Recomputes core occupancy, the shared congestion field, and every
    /// running chunk's rate across all lanes.
    fn recompute_rates(&mut self) {
        self.core_load.iter_mut().for_each(|c| *c = 0);
        for lane in self.lanes.iter().flatten() {
            if lane.lead_remaining_ns > 0.0 {
                continue;
            }
            for w in &lane.workers {
                if matches!(w.state, WorkerState::Running { .. }) {
                    self.core_load[w.core.index()] += 1;
                }
            }
        }

        let topo = &self.params.topology;
        self.field.clear();
        for lane in self.lanes.iter().flatten() {
            for w in &lane.workers {
                if let WorkerState::Running {
                    task,
                    traffic,
                    desired_bw,
                    ..
                } = &w.state
                {
                    let occ = self.core_load[w.core.index()].max(1) as f64;
                    self.field.add_flow(
                        topo,
                        &lane.tasks[*task],
                        w.node,
                        traffic,
                        *desired_bw,
                        1.0 / occ,
                    );
                }
            }
        }
        self.field.finalize(&self.params);

        for lane in self.lanes.iter_mut().flatten() {
            for w in &mut lane.workers {
                let wnode = w.node;
                let core = w.core.index();
                if let WorkerState::Running {
                    task,
                    rate,
                    traffic,
                    ..
                } = &mut w.state
                {
                    let spec = &lane.tasks[*task];
                    let penalty = self.field.penalty(topo, wnode, traffic);
                    let occ = self.core_load[core].max(1) as f64;
                    let slowdown = self
                        .faults
                        .as_ref()
                        .map_or(1.0, |p| p.node_slowdown(wnode as u32));
                    let duration = chunk_duration(
                        &self.params,
                        spec,
                        NodeId::new(wnode),
                        self.freqs[core],
                        penalty,
                    ) * occ
                        * slowdown;
                    *rate = if duration > 0.0 {
                        1.0 / duration
                    } else {
                        f64::INFINITY
                    };
                }
            }
        }
    }

    /// Advances simulated time by `dt`, completing whatever finishes.
    fn advance(&mut self, dt: f64) {
        self.now_ns += dt;
        let core_bw = self.params.core_bw;
        for (id, slot) in self.lanes.iter_mut().enumerate() {
            let Some(lane) = slot else { continue };
            if lane.lead_remaining_ns > 0.0 {
                lane.lead_remaining_ns -= dt;
                if lane.lead_remaining_ns <= EPS {
                    lane.lead_remaining_ns = 0.0;
                }
                continue;
            }
            if let Some(b) = &mut lane.barrier_remaining_ns {
                *b -= dt;
                if *b <= EPS {
                    let lane = slot.take().expect("lane present");
                    let num_cores = self.params.topology.num_cores();
                    let num_nodes = lane.nodes_out.len();
                    self.finished.push_back((
                        id,
                        LoopOutcome {
                            makespan_ns: self.now_ns - lane.started_ns,
                            sched_overhead_ns: lane.overhead_ns,
                            nodes: lane.nodes_out,
                            migrations: lane.migrations,
                            threads: lane.workers.len(),
                            trace: Vec::new(),
                            events: lane
                                .recorder
                                .map(|r| r.into_log(num_cores, num_nodes))
                                .unwrap_or_default(),
                        },
                    ));
                }
                continue;
            }
            for w in &mut lane.workers {
                match &mut w.state {
                    WorkerState::Overhead { remaining_ns, next } => {
                        *remaining_ns -= dt;
                        if *remaining_ns <= EPS {
                            let t = *next;
                            if let Some(recorder) = &mut lane.recorder {
                                recorder.push(
                                    w.core.index() as u32,
                                    w.node as u32,
                                    self.now_ns as u64,
                                    EventKind::ChunkStart { chunk: t as u32 },
                                );
                            }
                            w.state = begin_chunk(
                                &self.params.topology,
                                &self.params,
                                w.node,
                                t,
                                &lane.tasks[t],
                            );
                        }
                    }
                    WorkerState::Running {
                        task,
                        remaining,
                        rate,
                        elapsed_ns,
                        ..
                    } => {
                        *remaining -= *rate * dt;
                        *elapsed_ns += dt;
                        if *remaining <= EPS {
                            let spec = &lane.tasks[*task];
                            if let Some(recorder) = &mut lane.recorder {
                                recorder.push(
                                    w.core.index() as u32,
                                    w.node as u32,
                                    self.now_ns as u64,
                                    EventKind::ChunkEnd {
                                        chunk: *task as u32,
                                    },
                                );
                            }
                            let node = &mut lane.nodes_out[w.node];
                            node.tasks += 1;
                            node.busy_ns += *elapsed_ns;
                            node.ideal_ns += spec.ideal_ns(core_bw);
                            node.dram_bytes += spec.effective_bytes(NodeId::new(w.node));
                            if spec.home_node.index() == w.node {
                                node.local_tasks += 1;
                            }
                            w.state = WorkerState::Idle;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SimMachine;
    use crate::plan::NodeAssignment;
    use crate::task::Locality;
    use ilan_topology::{presets, NodeMask};

    fn chunked_tasks(n: usize, home: usize, compute: f64, bytes: f64) -> Vec<TaskSpec> {
        (0..n)
            .map(|_| TaskSpec {
                compute_ns: compute,
                mem_bytes: bytes,
                home_node: NodeId::new(home),
                locality: Locality::Chunked,
                data_mask: NodeMask::single(NodeId::new(home)),
                cache_reuse: 0.0,
                fits_l3: false,
            })
            .collect()
    }

    fn node_plan(tasks: usize, node: usize) -> PlacementPlan {
        PlacementPlan::Hierarchical {
            assignments: vec![NodeAssignment {
                node: NodeId::new(node),
                tasks: (0..tasks).collect(),
                strict_count: tasks,
            }],
        }
    }

    fn split_plan(tasks: usize, nodes: usize) -> PlacementPlan {
        let mut assignments = Vec::new();
        for node in 0..nodes {
            let ts: Vec<usize> = (0..tasks).filter(|i| i * nodes / tasks == node).collect();
            let strict = ts.len();
            assignments.push(NodeAssignment {
                node: NodeId::new(node),
                tasks: ts,
                strict_count: strict,
            });
        }
        PlacementPlan::Hierarchical { assignments }
    }

    fn both_home_tasks(n: usize, nodes: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec {
                compute_ns: 5_000.0,
                mem_bytes: 50_000.0,
                home_node: NodeId::new(i * nodes / n),
                locality: Locality::Chunked,
                data_mask: NodeMask::first_n(nodes),
                cache_reuse: 0.2,
                fits_l3: true,
            })
            .collect()
    }

    #[test]
    fn single_lane_matches_single_loop_engine() {
        // With one lane, no lead and no noise, the colocation engine must
        // reproduce the single-loop engine's result (same state machine,
        // same cost model; hierarchical plans are seed-independent).
        let topo = presets::tiny_2x4();
        let tasks = both_home_tasks(32, 2);
        let plan = split_plan(32, 2);

        let mut single = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 7);
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let reference = single.run_taskloop(&cores, &plan, &tasks);

        let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 7);
        let lane = colo.add_lane();
        colo.start_loop(lane, &cores, &plan, tasks, 0.0);
        let (done, out) = colo
            .run_until_next_completion()
            .expect("one loop in flight");
        assert_eq!(done, lane);
        assert!(
            (out.makespan_ns - reference.makespan_ns).abs() < 1e-6,
            "colo {} vs engine {}",
            out.makespan_ns,
            reference.makespan_ns
        );
        assert!((out.sched_overhead_ns - reference.sched_overhead_ns).abs() < 1e-6);
        assert_eq!(out.tasks_executed(), reference.tasks_executed());
        assert_eq!(out.migrations, reference.migrations);
        assert!(!colo.any_busy());
    }

    #[test]
    fn remote_tenant_congests_shared_controller() {
        // Lane A runs bandwidth-heavy chunks homed on node 0 from node-0
        // cores. Lane B runs on node-1 cores but its data also lives on
        // node 0: its traffic crosses into node 0's controller. A must get
        // slower when B co-runs — the shared interference channel.
        let topo = presets::tiny_2x4();
        let cores0 = topo.cpuset_of_mask(NodeMask::single(NodeId::new(0)));
        let cores1 = topo.cpuset_of_mask(NodeMask::single(NodeId::new(1)));
        let a_tasks = || chunked_tasks(64, 0, 500.0, 800_000.0);
        // B's chunks are homed on node 0 (its data lives there) but a plan
        // pins their execution to node 1: all of B's traffic is remote.
        let b_plan = node_plan(64, 1);
        let b_tasks = || chunked_tasks(64, 0, 500.0, 800_000.0);

        let t_alone = {
            let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
            let a = colo.add_lane();
            colo.start_loop(a, &cores0, &node_plan(64, 0), a_tasks(), 0.0);
            colo.run_until_next_completion().unwrap().1.makespan_ns
        };
        let t_shared = {
            let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
            let a = colo.add_lane();
            let b = colo.add_lane();
            colo.start_loop(a, &cores0, &node_plan(64, 0), a_tasks(), 0.0);
            colo.start_loop(b, &cores1, &b_plan, b_tasks(), 0.0);
            loop {
                let (lane, out) = colo.run_until_next_completion().unwrap();
                if lane == a {
                    break out.makespan_ns;
                }
            }
        };
        assert!(
            t_shared > 1.2 * t_alone,
            "co-runner on the same controller must slow lane A: alone={t_alone} shared={t_shared}"
        );
    }

    #[test]
    fn disjoint_partitions_do_not_interfere() {
        // Same co-runner, but B's data and execution are fully on node 1:
        // no shared controller, no shared link, no shared cores ⇒ lane A is
        // unaffected (tiny tolerance for float noise).
        let topo = presets::tiny_2x4();
        let cores0 = topo.cpuset_of_mask(NodeMask::single(NodeId::new(0)));
        let cores1 = topo.cpuset_of_mask(NodeMask::single(NodeId::new(1)));

        let t_alone = {
            let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
            let a = colo.add_lane();
            colo.start_loop(
                a,
                &cores0,
                &node_plan(64, 0),
                chunked_tasks(64, 0, 500.0, 800_000.0),
                0.0,
            );
            colo.run_until_next_completion().unwrap().1.makespan_ns
        };
        let t_partitioned = {
            let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
            let a = colo.add_lane();
            let b = colo.add_lane();
            colo.start_loop(
                a,
                &cores0,
                &node_plan(64, 0),
                chunked_tasks(64, 0, 500.0, 800_000.0),
                0.0,
            );
            colo.start_loop(
                b,
                &cores1,
                &node_plan(64, 1),
                chunked_tasks(64, 1, 500.0, 800_000.0),
                0.0,
            );
            loop {
                let (lane, out) = colo.run_until_next_completion().unwrap();
                if lane == a {
                    break out.makespan_ns;
                }
            }
        };
        assert!(
            (t_partitioned - t_alone).abs() < 1e-6 * t_alone,
            "disjoint partitions must isolate: alone={t_alone} partitioned={t_partitioned}"
        );
    }

    #[test]
    fn oversubscribed_cores_timeshare() {
        // Two compute-bound lanes on the same cores: each runs at roughly
        // half speed, so the pair takes roughly twice as long as one alone.
        let topo = presets::tiny_2x4();
        let cores0 = topo.cpuset_of_mask(NodeMask::single(NodeId::new(0)));
        let work = || chunked_tasks(64, 0, 200_000.0, 1_000.0);

        let t_alone = {
            let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
            let a = colo.add_lane();
            colo.start_loop(a, &cores0, &node_plan(64, 0), work(), 0.0);
            colo.run_until_next_completion().unwrap().1.makespan_ns
        };
        let t_both = {
            let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
            let a = colo.add_lane();
            let b = colo.add_lane();
            colo.start_loop(a, &cores0, &node_plan(64, 0), work(), 0.0);
            colo.start_loop(b, &cores0, &node_plan(64, 0), work(), 0.0);
            let mut last = 0.0f64;
            while let Some((_, out)) = colo.run_until_next_completion() {
                last = last.max(out.makespan_ns);
            }
            last
        };
        assert!(
            t_both > 1.6 * t_alone && t_both < 2.4 * t_alone,
            "timesharing should roughly double the makespan: alone={t_alone} both={t_both}"
        );
    }

    #[test]
    fn lead_time_delays_execution() {
        let topo = presets::tiny_2x4();
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let run = |lead: f64| {
            let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 3);
            let a = colo.add_lane();
            colo.start_loop(a, &cores, &split_plan(32, 2), both_home_tasks(32, 2), lead);
            colo.run_until_next_completion().unwrap().1.makespan_ns
        };
        let base = run(0.0);
        let delayed = run(50_000.0);
        assert!(
            (delayed - base - 50_000.0).abs() < 1e-6,
            "lead must shift completion 1:1: base={base} delayed={delayed}"
        );
    }

    #[test]
    fn run_until_deadline_stops_short() {
        let topo = presets::tiny_2x4();
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 3);
        let a = colo.add_lane();
        colo.start_loop(a, &cores, &split_plan(32, 2), both_home_tasks(32, 2), 0.0);
        // A deadline far before completion: no outcome, clock at deadline.
        assert!(colo.run_until_ns(10.0).is_none());
        assert!((colo.now_ns() - 10.0).abs() < 1e-9);
        assert!(colo.lane_busy(a));
        // Finish it.
        let (lane, _) = colo.run_until_next_completion().unwrap();
        assert_eq!(lane, a);
        // Idle machine jumps to the deadline.
        let t = colo.now_ns() + 500.0;
        assert!(colo.run_until_ns(t).is_none());
        assert!((colo.now_ns() - t).abs() < 1e-9);
    }

    #[test]
    fn traced_lanes_audit_clean() {
        let topo = presets::tiny_2x4();
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 5);
        colo.set_tracing(true);
        let a = colo.add_lane();
        let b = colo.add_lane();
        colo.start_loop(a, &cores, &split_plan(32, 2), both_home_tasks(32, 2), 0.0);
        colo.start_loop(
            b,
            &cores,
            &PlacementPlan::flat(),
            both_home_tasks(24, 2),
            500.0,
        );
        let mut seen = 0;
        while let Some((_, out)) = colo.run_until_next_completion() {
            seen += 1;
            assert!(!out.events.is_empty(), "traced lane must carry events");
            let expect = ilan_trace::AuditExpect {
                migrations: Some(out.migrations),
                latch_releases: Some(out.threads),
                per_node: Some(
                    out.nodes
                        .iter()
                        .map(|n| ilan_trace::NodeTally {
                            tasks: n.tasks,
                            // Sim locality is defined against data homes,
                            // which the placement-plan event log cannot see.
                            local_tasks: None,
                        })
                        .collect(),
                ),
            };
            let audit = ilan_trace::audit(&out.events, &expect);
            assert!(audit.ok(), "audit violations: {audit}");
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn untraced_lanes_carry_no_events() {
        let topo = presets::tiny_2x4();
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 5);
        let a = colo.add_lane();
        colo.start_loop(a, &cores, &split_plan(32, 2), both_home_tasks(32, 2), 0.0);
        let (_, out) = colo.run_until_next_completion().unwrap();
        assert!(out.events.is_empty());
    }

    #[test]
    fn slow_node_stretches_the_lane_running_there() {
        use ilan_faults::{FaultConfig, FaultPlan};
        // Find a seed whose plan slows node 0 and stalls nobody.
        let config = FaultConfig {
            max_slow_nodes: 1,
            max_node_slowdown: 4.0,
            ..FaultConfig::none()
        };
        let plan = (0..10_000u64)
            .map(|s| FaultPlan::new(s, 8, 2, config))
            .find(|p| p.node_slowdown(0) > 1.5 && p.stalls().is_empty())
            .expect("some seed slows node 0");
        let factor = plan.node_slowdown(0);

        let topo = presets::tiny_2x4();
        let cores0 = topo.cpuset_of_mask(NodeMask::single(NodeId::new(0)));
        let run = |plan: Option<FaultPlan>| {
            let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
            if let Some(p) = plan {
                colo.set_fault_plan(p);
            }
            let a = colo.add_lane();
            colo.start_loop(
                a,
                &cores0,
                &node_plan(64, 0),
                chunked_tasks(64, 0, 200_000.0, 1_000.0),
                0.0,
            );
            colo.run_until_next_completion().unwrap().1
        };
        let healthy = run(None);
        let slowed = run(Some(plan));
        assert_eq!(healthy.tasks_executed(), slowed.tasks_executed());
        // Compute-bound chunks on a dedicated node: makespan scales almost
        // exactly with the slowdown (overheads are unscaled, hence "almost").
        let ratio = slowed.makespan_ns / healthy.makespan_ns;
        assert!(
            ratio > 0.9 * factor && ratio < 1.1 * factor,
            "slowdown x{factor} should stretch the lane ~x{factor}, got x{ratio}"
        );
    }

    #[test]
    fn stalled_worker_delays_completion_but_loses_no_chunks() {
        use ilan_faults::{FaultConfig, FaultPlan};
        let config = FaultConfig {
            max_worker_stalls: 1,
            max_stall_ns: 500_000,
            ..FaultConfig::none()
        };
        let plan = (0..10_000u64)
            .map(|s| FaultPlan::new(s, 8, 2, config))
            .find(|p| p.stalls().len() == 1 && p.slow_nodes().is_empty())
            .expect("some seed stalls one worker");

        let topo = presets::tiny_2x4();
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let run = |plan: Option<FaultPlan>| {
            let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 3);
            if let Some(p) = plan {
                colo.set_fault_plan(p);
            }
            let a = colo.add_lane();
            colo.start_loop(a, &cores, &split_plan(32, 2), both_home_tasks(32, 2), 0.0);
            colo.run_until_next_completion().unwrap().1
        };
        let healthy = run(None);
        let stalled = run(Some(plan.clone()));
        assert_eq!(healthy.tasks_executed(), stalled.tasks_executed());
        assert!(
            stalled.makespan_ns >= healthy.makespan_ns,
            "losing a worker for a while cannot speed the loop up: healthy={} stalled={}",
            healthy.makespan_ns,
            stalled.makespan_ns
        );
        // Same plan, same seed: the faulty run replays exactly.
        let replay = run(Some(plan));
        assert_eq!(stalled.makespan_ns, replay.makespan_ns);
        assert_eq!(stalled.migrations, replay.migrations);
    }

    #[test]
    #[should_panic(expected = "out of simulation scope")]
    fn permanent_stalls_are_rejected() {
        use ilan_faults::{FaultConfig, FaultPlan};
        let config = FaultConfig {
            max_worker_stalls: 1,
            permanent_stalls: true,
            max_stall_ns: 1_000,
            ..FaultConfig::none()
        };
        let plan = (0..10_000u64)
            .map(|s| FaultPlan::new(s, 8, 2, config))
            .find(FaultPlan::has_permanent_stall)
            .expect("some seed draws a permanent stall");
        let topo = presets::tiny_2x4();
        let mut colo = ColoMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
        colo.set_fault_plan(plan);
    }

    #[test]
    fn deterministic_across_replays() {
        let topo = presets::tiny_2x4();
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let replay = |seed: u64| {
            let mut colo = ColoMachine::new(MachineParams::for_topology(&topo), seed);
            let a = colo.add_lane();
            let b = colo.add_lane();
            colo.start_loop(
                a,
                &cores,
                &PlacementPlan::flat(),
                both_home_tasks(40, 2),
                0.0,
            );
            colo.start_loop(
                b,
                &cores,
                &PlacementPlan::flat(),
                both_home_tasks(24, 2),
                1_000.0,
            );
            let mut trace = Vec::new();
            while let Some((lane, out)) = colo.run_until_next_completion() {
                trace.push((lane, out.makespan_ns, colo.now_ns()));
            }
            trace
        };
        assert_eq!(replay(11), replay(11));
        assert_ne!(replay(11), replay(12), "seed must matter under noise");
    }
}
