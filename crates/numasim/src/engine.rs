//! The fluid-rate event engine executing one taskloop invocation.
//!
//! Between events every running chunk progresses linearly at a rate computed
//! from the machine state; an event is a chunk completing, a worker finishing
//! a scheduling action, or the pool state changing. On each event the engine
//! recomputes all rates (memory-controller and inter-socket-link congestion
//! are global state), so contention is always consistent with the set of
//! running chunks.
//!
//! The engine is fully deterministic: worker iteration order, victim
//! selection and tie-breaking are all fixed. Run-to-run variance enters only
//! through the per-run frequency factors and outlier windows drawn by
//! [`SimMachine`](crate::SimMachine) from its seed.
//!
//! The worker/pool state machine lives in [`exec`](crate::exec) and the cost
//! model in [`rates`](crate::rates), both shared with the multi-lane
//! colocation engine ([`ColoMachine`](crate::ColoMachine)).

use crate::exec::{begin_chunk, make_workers, seek, PoolSet, Worker, WorkerState, EPS};
use crate::outcome::{LoopOutcome, NodeOutcome, TaskRecord};
use crate::params::MachineParams;
use crate::plan::PlacementPlan;
use crate::rates::{chunk_duration, CongestionField};
use crate::task::TaskSpec;
use ilan_topology::{CpuSet, NodeId};
use ilan_trace::{EventKind, Recorder};

pub(crate) struct Engine<'a> {
    params: &'a MachineParams,
    freqs: &'a [f64],
    outlier_node: Option<usize>,
    tasks: &'a [TaskSpec],
    pools: PoolSet,
    workers: Vec<Worker>,
    /// Active workers per node (for pop-contention estimates and wakeups).
    node_worker_count: Vec<usize>,
    now: f64,
    overhead_ns: f64,
    nodes_out: Vec<NodeOutcome>,
    migrations: usize,
    /// Shared congestion state, recomputed at every event.
    field: CongestionField,
    /// Per-invocation randomness for flat-mode victim selection.
    rng_state: u64,
    /// Per-chunk execution records (empty unless tracing).
    trace: Option<Vec<TaskRecord>>,
    /// Scheduler event recorder (present only for traced runs).
    recorder: Option<Recorder>,
}

impl<'a> Engine<'a> {
    #[allow(clippy::too_many_arguments)] // invocation-time facts, used once
    pub(crate) fn new(
        params: &'a MachineParams,
        freqs: &'a [f64],
        outlier_node: Option<usize>,
        perm_seed: u64,
        active: &CpuSet,
        plan: &PlacementPlan,
        tasks: &'a [TaskSpec],
        traced: bool,
    ) -> Self {
        let topo = &params.topology;
        let num_nodes = topo.num_nodes();
        let (workers, node_worker_count) = make_workers(topo, active);
        let mut recorder = traced.then(Recorder::new);
        let pools = PoolSet::build(
            plan,
            tasks.len(),
            &workers,
            &node_worker_count,
            num_nodes,
            perm_seed,
            recorder.as_mut(),
            0.0,
        );

        Engine {
            params,
            freqs,
            outlier_node,
            tasks,
            pools,
            workers,
            node_worker_count,
            now: 0.0,
            overhead_ns: 0.0,
            nodes_out: vec![NodeOutcome::default(); num_nodes],
            migrations: 0,
            field: CongestionField::new(num_nodes, topo.num_sockets()),
            rng_state: perm_seed ^ 0xD1B54A32D192ED03,
            trace: traced.then(|| Vec::with_capacity(tasks.len())),
            recorder,
        }
    }

    pub(crate) fn run(mut self) -> LoopOutcome {
        // Serial dispatch by the encountering thread.
        let dispatch = self.pools.dispatch_ns(self.params, self.tasks.len());
        self.now += dispatch;
        self.overhead_ns += dispatch;

        loop {
            // Let every idle worker acquire work. Acquisitions can wake parked
            // workers (batch steals), so iterate to a fixed point.
            loop {
                let mut any = false;
                for i in 0..self.workers.len() {
                    if matches!(self.workers[i].state, WorkerState::Idle) {
                        seek(
                            &mut self.pools,
                            &mut self.workers,
                            i,
                            self.now,
                            self.params,
                            &self.node_worker_count,
                            &mut self.rng_state,
                            &mut self.overhead_ns,
                            &mut self.migrations,
                            self.recorder.as_mut(),
                        );
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }

            self.recompute_rates();

            // Next event: smallest time-to-completion across busy workers.
            let mut dt = f64::INFINITY;
            for w in &self.workers {
                let t = match &w.state {
                    WorkerState::Overhead { remaining_ns, .. } => *remaining_ns,
                    WorkerState::Running {
                        remaining, rate, ..
                    } if *rate > 0.0 => remaining / rate,
                    _ => f64::INFINITY,
                };
                dt = dt.min(t);
            }

            if !dt.is_finite() {
                // No busy workers left: either done, or the plan stranded
                // strict tasks on nodes without active workers (a scheduler
                // bug — plan validation should have caught it).
                assert!(
                    self.pools.is_empty(),
                    "deadlock: tasks remain but every worker is parked"
                );
                break;
            }

            self.advance(dt);
        }

        // Idle-loop tails: workers that parked keep spinning in the
        // scheduler until the last chunk completes (`self.now`).
        for w in &self.workers {
            if let WorkerState::Parked { since } = w.state {
                self.overhead_ns += self.now - since;
            }
        }

        // Closing barrier; each worker releases the exit latch as it enters.
        if let Some(recorder) = &mut self.recorder {
            for w in &self.workers {
                recorder.push(
                    w.core.index() as u32,
                    w.node as u32,
                    self.now as u64,
                    EventKind::LatchRelease,
                );
            }
        }
        let threads = self.workers.len();
        let barrier = self.params.barrier_base_ns * (threads.max(2) as f64).log2();
        self.now += barrier;
        self.overhead_ns += barrier;

        let num_cores = self.params.topology.num_cores();
        let num_nodes = self.nodes_out.len();
        LoopOutcome {
            makespan_ns: self.now,
            sched_overhead_ns: self.overhead_ns,
            nodes: self.nodes_out,
            migrations: self.migrations,
            threads,
            trace: self.trace.unwrap_or_default(),
            events: self
                .recorder
                .map(|r| r.into_log(num_cores, num_nodes))
                .unwrap_or_default(),
        }
    }

    /// Recomputes demands, congestion factors and every running chunk's rate.
    fn recompute_rates(&mut self) {
        let topo = &self.params.topology;
        self.field.clear();

        // Pass 1: aggregate desired bandwidth per memory controller and link,
        // plus the streaming-flow count per controller (row-buffer model).
        for w in &self.workers {
            if let WorkerState::Running {
                task,
                traffic,
                desired_bw,
                ..
            } = &w.state
            {
                self.field
                    .add_flow(topo, &self.tasks[*task], w.node, traffic, *desired_bw, 1.0);
            }
        }

        // Pass 2: congestion factor per resource.
        self.field.finalize(self.params);

        // Pass 3: per-chunk rates.
        for w in &mut self.workers {
            let wnode = w.node;
            let core = w.core.index();
            if let WorkerState::Running {
                task,
                rate,
                traffic,
                ..
            } = &mut w.state
            {
                let spec = &self.tasks[*task];
                let penalty = self.field.penalty(topo, wnode, traffic);
                let mut duration = chunk_duration(
                    self.params,
                    spec,
                    NodeId::new(wnode),
                    self.freqs[core],
                    penalty,
                );
                if Some(wnode) == self.outlier_node {
                    duration /= self.params.noise.outlier_factor;
                }
                *rate = if duration > 0.0 {
                    1.0 / duration
                } else {
                    f64::INFINITY
                };
            }
        }
    }

    /// Advances simulated time by `dt`, completing whatever finishes.
    fn advance(&mut self, dt: f64) {
        self.now += dt;
        let core_bw = self.params.core_bw;
        for i in 0..self.workers.len() {
            let w = &mut self.workers[i];
            match &mut w.state {
                WorkerState::Overhead { remaining_ns, next } => {
                    *remaining_ns -= dt;
                    if *remaining_ns <= EPS {
                        let t = *next;
                        if let Some(recorder) = &mut self.recorder {
                            recorder.push(
                                w.core.index() as u32,
                                w.node as u32,
                                self.now as u64,
                                EventKind::ChunkStart { chunk: t as u32 },
                            );
                        }
                        w.state = begin_chunk(
                            &self.params.topology,
                            self.params,
                            w.node,
                            t,
                            &self.tasks[t],
                        );
                    }
                }
                WorkerState::Running {
                    task,
                    remaining,
                    rate,
                    elapsed_ns,
                    ..
                } => {
                    *remaining -= *rate * dt;
                    *elapsed_ns += dt;
                    if *remaining <= EPS {
                        let spec = &self.tasks[*task];
                        if let Some(trace) = &mut self.trace {
                            trace.push(TaskRecord {
                                task: *task,
                                core: w.core,
                                start_ns: self.now - *elapsed_ns,
                                end_ns: self.now,
                            });
                        }
                        if let Some(recorder) = &mut self.recorder {
                            recorder.push(
                                w.core.index() as u32,
                                w.node as u32,
                                self.now as u64,
                                EventKind::ChunkEnd {
                                    chunk: *task as u32,
                                },
                            );
                        }
                        let node = &mut self.nodes_out[w.node];
                        node.tasks += 1;
                        node.busy_ns += *elapsed_ns;
                        node.ideal_ns += spec.ideal_ns(core_bw);
                        node.dram_bytes += spec.effective_bytes(NodeId::new(w.node));
                        if spec.home_node.index() == w.node {
                            node.local_tasks += 1;
                        }
                        w.state = WorkerState::Idle;
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::SimMachine;
    use crate::params::MachineParams;
    use crate::plan::{NodeAssignment, PlacementPlan};
    use crate::task::{Locality, TaskSpec};
    use ilan_topology::{presets, CoreId, CpuSet, NodeId, NodeMask};

    fn uniform_tasks(n: usize, nodes: usize, per_node_bytes: f64) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec {
                compute_ns: 20_000.0,
                mem_bytes: per_node_bytes,
                home_node: NodeId::new(i * nodes / n),
                locality: Locality::Chunked,
                data_mask: NodeMask::first_n(nodes),
                cache_reuse: 0.0,
                fits_l3: false,
            })
            .collect()
    }

    fn machine() -> SimMachine {
        let topo = presets::tiny_2x4();
        SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1)
    }

    fn hier_plan(tasks: usize, nodes: usize, strict_frac: f64) -> PlacementPlan {
        let mut assignments = Vec::new();
        for node in 0..nodes {
            let ts: Vec<usize> = (0..tasks).filter(|i| i * nodes / tasks == node).collect();
            let strict_count = (ts.len() as f64 * strict_frac).round() as usize;
            assignments.push(NodeAssignment {
                node: NodeId::new(node),
                tasks: ts,
                strict_count,
            });
        }
        PlacementPlan::Hierarchical { assignments }
    }

    #[test]
    fn executes_every_task_exactly_once_flat() {
        let mut m = machine();
        let tasks = uniform_tasks(40, 2, 50_000.0);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let out = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks);
        assert_eq!(out.tasks_executed(), 40);
        assert_eq!(out.threads, 8);
    }

    #[test]
    fn executes_every_task_hier_and_static() {
        let mut m = machine();
        let tasks = uniform_tasks(40, 2, 50_000.0);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        for plan in [hier_plan(40, 2, 1.0), PlacementPlan::worksharing()] {
            let out = m.run_taskloop(&cores, &plan, &tasks);
            assert_eq!(out.tasks_executed(), 40);
        }
    }

    #[test]
    fn hierarchical_beats_flat_on_locality() {
        let mut m = machine();
        let tasks = uniform_tasks(64, 2, 200_000.0);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let flat = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks);
        let hier = m.run_taskloop(&cores, &hier_plan(64, 2, 1.0), &tasks);
        assert!(
            hier.locality_fraction() > flat.locality_fraction(),
            "hier locality {} vs flat {}",
            hier.locality_fraction(),
            flat.locality_fraction()
        );
        assert!(
            hier.makespan_ns < flat.makespan_ns,
            "hier {} vs flat {}",
            hier.makespan_ns,
            flat.makespan_ns
        );
        // Strict hierarchical placement achieves perfect locality here.
        assert!((hier.locality_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strict_policy_never_migrates() {
        let mut m = machine();
        // Imbalanced: all heavy tasks on node 0.
        let mut tasks = uniform_tasks(32, 2, 50_000.0);
        for (i, t) in tasks.iter_mut().enumerate() {
            if i < 16 {
                t.compute_ns *= 8.0;
            }
        }
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let strict = m.run_taskloop(&cores, &hier_plan(32, 2, 1.0), &tasks);
        assert_eq!(strict.migrations, 0);
        // Full policy may migrate and should not be slower by much — with this
        // much imbalance it should win.
        let full = m.run_taskloop(&cores, &hier_plan(32, 2, 0.5), &tasks);
        assert!(full.migrations > 0, "expected inter-node steals");
        assert!(full.makespan_ns < strict.makespan_ns);
    }

    #[test]
    fn static_has_lowest_overhead() {
        let mut m = machine();
        let tasks = uniform_tasks(64, 2, 50_000.0);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let ws = m.run_taskloop(&cores, &PlacementPlan::worksharing(), &tasks);
        let flat = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks);
        assert!(ws.sched_overhead_ns < flat.sched_overhead_ns);
        assert_eq!(ws.migrations, 0);
    }

    #[test]
    fn empty_taskloop_is_just_overheads() {
        let mut m = machine();
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let out = m.run_taskloop(&cores, &PlacementPlan::flat(), &[]);
        assert_eq!(out.tasks_executed(), 0);
        assert!(out.makespan_ns > 0.0); // barrier still costs
        assert_eq!(out.total_busy_ns(), 0.0);
        // Overhead (summed across workers) covers at least the critical path.
        assert!(out.sched_overhead_ns >= out.makespan_ns - 1e-6);
    }

    #[test]
    fn single_worker_runs_serially() {
        let mut m = machine();
        let tasks = uniform_tasks(10, 2, 22_000.0);
        let mut cores = CpuSet::new();
        cores.insert(CoreId::new(0));
        let out = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks);
        assert_eq!(out.tasks_executed(), 10);
        assert_eq!(out.threads, 1);
        // All work on node 0.
        assert_eq!(out.nodes[0].tasks, 10);
        assert_eq!(out.nodes[1].tasks, 0);
    }

    #[test]
    fn bandwidth_contention_creates_interior_optimum() {
        // A severely bandwidth-bound loop: per-chunk traffic far beyond what
        // the node controllers can serve when all cores run. Fewer active
        // cores must then beat the full machine.
        let topo = presets::epyc_9354_2s();
        let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 3);
        let nodes = topo.num_nodes();
        let tasks: Vec<TaskSpec> = (0..512)
            .map(|i| TaskSpec {
                compute_ns: 500.0,
                mem_bytes: 2_000_000.0,
                home_node: NodeId::new(i * nodes / 512),
                locality: Locality::Scattered { spread: 0.8 },
                data_mask: NodeMask::first_n(nodes),
                cache_reuse: 0.0,
                fits_l3: false,
            })
            .collect();
        let all = topo.cpuset_of_mask(topo.all_nodes());
        let t_full = m
            .run_taskloop(&all, &PlacementPlan::flat(), &tasks)
            .makespan_ns;
        // Half the machine: nodes 0..4 (one socket).
        let half_mask = NodeMask::first_n(4);
        let half = topo.cpuset_of_mask(half_mask);
        let t_half = m
            .run_taskloop(&half, &PlacementPlan::flat(), &tasks)
            .makespan_ns;
        assert!(
            t_half < t_full,
            "molding should help a saturated loop: half={t_half} full={t_full}"
        );
    }

    #[test]
    fn compute_bound_loop_scales_with_cores() {
        let topo = presets::epyc_9354_2s();
        let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 3);
        let nodes = topo.num_nodes();
        let tasks: Vec<TaskSpec> = (0..512)
            .map(|i| TaskSpec {
                compute_ns: 400_000.0,
                mem_bytes: 10_000.0,
                home_node: NodeId::new(i * nodes / 512),
                locality: Locality::Chunked,
                data_mask: NodeMask::first_n(nodes),
                cache_reuse: 0.0,
                fits_l3: true,
            })
            .collect();
        let all = topo.cpuset_of_mask(topo.all_nodes());
        let t_full = m
            .run_taskloop(&all, &PlacementPlan::flat(), &tasks)
            .makespan_ns;
        let half = topo.cpuset_of_mask(NodeMask::first_n(4));
        let t_half = m
            .run_taskloop(&half, &PlacementPlan::flat(), &tasks)
            .makespan_ns;
        assert!(
            t_full < 0.6 * t_half,
            "compute-bound loop must scale: full={t_full} half={t_half}"
        );
    }

    #[test]
    fn work_conservation_busy_time_bounded_by_makespan() {
        let mut m = machine();
        let tasks = uniform_tasks(48, 2, 80_000.0);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let out = m.run_taskloop(&cores, &hier_plan(48, 2, 0.75), &tasks);
        // 8 workers: total busy time can never exceed 8 × makespan.
        assert!(out.total_busy_ns() <= 8.0 * out.makespan_ns + 1e-6);
        // And busy time is at least the ideal aggregate (penalties ≥ 1).
        assert!(out.total_busy_ns() + 1e-6 >= out.total_ideal_ns());
    }

    #[test]
    #[should_panic(expected = "no active core")]
    fn plan_targeting_inactive_node_panics() {
        let mut m = machine();
        let tasks = uniform_tasks(8, 2, 10_000.0);
        // Only node 0 cores active, but the plan targets both nodes.
        let cores = m
            .topology()
            .cpuset_of_mask(NodeMask::single(NodeId::new(0)));
        m.run_taskloop(&cores, &hier_plan(8, 2, 1.0), &tasks);
    }
}
