//! The fluid-rate event engine executing one taskloop invocation.
//!
//! Between events every running chunk progresses linearly at a rate computed
//! from the machine state; an event is a chunk completing, a worker finishing
//! a scheduling action, or the pool state changing. On each event the engine
//! recomputes all rates (memory-controller and inter-socket-link congestion
//! are global state), so contention is always consistent with the set of
//! running chunks.
//!
//! The engine is fully deterministic: worker iteration order, victim
//! selection and tie-breaking are all fixed. Run-to-run variance enters only
//! through the per-run frequency factors and outlier windows drawn by
//! [`SimMachine`](crate::SimMachine) from its seed.

use crate::outcome::{LoopOutcome, NodeOutcome, TaskRecord};
use crate::params::MachineParams;
use crate::plan::PlacementPlan;
use crate::task::TaskSpec;
use ilan_topology::{CoreId, CpuSet, NodeId};
use std::collections::VecDeque;

/// Numerical slack for "remaining work is zero" tests.
const EPS: f64 = 1e-9;

/// One per-node task pool of a hierarchical plan.
struct NodePool {
    /// Chunk indices in execution order. Strict chunks are at the front.
    queue: VecDeque<usize>,
    /// How many chunks at the front of `queue` are NUMA-strict.
    strict_remaining: usize,
}

impl NodePool {
    fn stealable(&self) -> usize {
        self.queue.len().saturating_sub(self.strict_remaining)
    }

    fn pop(&mut self) -> Option<usize> {
        let t = self.queue.pop_front()?;
        self.strict_remaining = self.strict_remaining.saturating_sub(1);
        Some(t)
    }

    /// Removes up to half of the stealable tail (at least one), returning the
    /// stolen chunk indices in order.
    fn steal_batch(&mut self) -> Vec<usize> {
        let stealable = self.stealable();
        if stealable == 0 {
            return Vec::new();
        }
        let k = (stealable / 2).max(1);
        let split = self.queue.len() - k;
        self.queue.split_off(split).into()
    }
}

enum PoolSet {
    /// LLVM-default tasking: recursive taskloop splitting hands each worker
    /// a contiguous block of chunks at a pseudo-random position (placement is
    /// effectively random w.r.t. data homes), and idle workers steal half a
    /// victim's remaining deque, like `splittable` taskloop tasks.
    Flat(Vec<VecDeque<usize>>),
    Hier(Vec<NodePool>),
    Static(Vec<VecDeque<usize>>),
}

/// SplitMix64 — deterministic per-invocation randomness for the flat
/// baseline's block permutation and victim order.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[derive(Clone, Debug)]
enum WorkerState {
    /// Needs to acquire work at the current time.
    Idle,
    /// Performing a scheduling action (pop / steal), then starts `next`.
    Overhead { remaining_ns: f64, next: usize },
    /// Executing chunk `task`.
    Running {
        task: usize,
        /// Fraction of the chunk still to execute, in `[0, 1]`.
        remaining: f64,
        /// Progress per ns under the current machine state.
        rate: f64,
        /// Precomputed `(node, traffic_fraction, latency_factor)` rows.
        traffic: Vec<(usize, f64, f64)>,
        /// Desired DRAM bandwidth if uncontended, bytes/ns.
        desired_bw: f64,
        /// Wall time spent on this chunk so far.
        elapsed_ns: f64,
    },
    /// No work is reachable for this worker; it spins in the scheduler's
    /// idle loop until the taskloop completes (that waiting is scheduler
    /// time — LLVM's baseline burns it in `__kmp_execute_tasks`).
    Parked {
        /// When the worker entered the idle loop.
        since: f64,
    },
}

struct Worker {
    core: CoreId,
    node: usize,
    state: WorkerState,
}

pub(crate) struct Engine<'a> {
    params: &'a MachineParams,
    freqs: &'a [f64],
    outlier_node: Option<usize>,
    tasks: &'a [TaskSpec],
    pools: PoolSet,
    workers: Vec<Worker>,
    /// Active workers per node (for pop-contention estimates and wakeups).
    node_worker_count: Vec<usize>,
    now: f64,
    overhead_ns: f64,
    nodes_out: Vec<NodeOutcome>,
    migrations: usize,
    /// Scratch: per-node DRAM demand, bytes/ns.
    demand: Vec<f64>,
    /// Scratch: per socket-pair link demand (row-major `s × s`, only `i<j`
    /// entries used).
    link_demand: Vec<f64>,
    /// Per-invocation randomness for flat-mode victim selection.
    rng_state: u64,
    /// Scratch: per-node streaming-flow weight (row-buffer interference).
    streams: Vec<f64>,
    /// Per-chunk execution records (empty unless tracing).
    trace: Option<Vec<TaskRecord>>,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        params: &'a MachineParams,
        freqs: &'a [f64],
        outlier_node: Option<usize>,
        perm_seed: u64,
        active: &CpuSet,
        plan: &PlacementPlan,
        tasks: &'a [TaskSpec],
    ) -> Self {
        let topo = &params.topology;
        let num_nodes = topo.num_nodes();
        plan.validate(tasks.len());
        assert!(
            !active.is_empty(),
            "taskloop needs at least one active core"
        );

        let workers: Vec<Worker> = active
            .iter()
            .map(|core| {
                assert!(
                    core.index() < topo.num_cores(),
                    "active core {core} outside topology"
                );
                Worker {
                    core,
                    node: topo.node_of_core(core).index(),
                    state: WorkerState::Idle,
                }
            })
            .collect();

        let mut node_worker_count = vec![0usize; num_nodes];
        for w in &workers {
            node_worker_count[w.node] += 1;
        }

        let pools = match plan {
            PlacementPlan::Flat => {
                // Contiguous blocks (taskloop splitting) assigned to workers
                // by a seeded permutation (random initial placement).
                let w = workers.len();
                let mut order: Vec<usize> = (0..w).collect();
                let mut st = perm_seed;
                for i in (1..w).rev() {
                    let j = (splitmix64(&mut st) as usize) % (i + 1);
                    order.swap(i, j);
                }
                let mut per_worker: Vec<VecDeque<usize>> =
                    (0..w).map(|_| VecDeque::new()).collect();
                for (slot, &wi) in order.iter().enumerate() {
                    let lo = slot * tasks.len() / w;
                    let hi = (slot + 1) * tasks.len() / w;
                    per_worker[wi].extend(lo..hi);
                }
                PoolSet::Flat(per_worker)
            }
            PlacementPlan::Hierarchical { assignments } => {
                let mut per_node: Vec<NodePool> = (0..num_nodes)
                    .map(|_| NodePool {
                        queue: VecDeque::new(),
                        strict_remaining: 0,
                    })
                    .collect();
                for a in assignments {
                    let pool = &mut per_node[a.node.index()];
                    assert!(
                        a.tasks.is_empty() || node_worker_count[a.node.index()] > 0,
                        "plan assigns tasks to {} but no active core lives there",
                        a.node
                    );
                    pool.queue.extend(a.tasks.iter().copied());
                    pool.strict_remaining += a.strict_count;
                }
                PoolSet::Hier(per_node)
            }
            PlacementPlan::Static => {
                let w = workers.len();
                let mut per_worker: Vec<VecDeque<usize>> =
                    (0..w).map(|_| VecDeque::new()).collect();
                for (i, q) in per_worker.iter_mut().enumerate() {
                    let lo = i * tasks.len() / w;
                    let hi = (i + 1) * tasks.len() / w;
                    q.extend(lo..hi);
                }
                PoolSet::Static(per_worker)
            }
        };

        let num_sockets = topo.num_sockets();
        Engine {
            params,
            freqs,
            outlier_node,
            tasks,
            pools,
            workers,
            node_worker_count,
            now: 0.0,
            overhead_ns: 0.0,
            nodes_out: vec![NodeOutcome::default(); num_nodes],
            migrations: 0,
            demand: vec![0.0; num_nodes],
            link_demand: vec![0.0; num_sockets * num_sockets],
            rng_state: perm_seed ^ 0xD1B54A32D192ED03,
            streams: vec![0.0; num_nodes],
            trace: None,
        }
    }

    /// Enables per-chunk execution tracing.
    pub(crate) fn enable_trace(&mut self) {
        self.trace = Some(Vec::with_capacity(self.tasks.len()));
    }

    pub(crate) fn run(mut self) -> LoopOutcome {
        // Serial dispatch by the encountering thread. Work-sharing creates no
        // task objects: each worker just computes its slice bounds.
        let dispatch = match &self.pools {
            PoolSet::Static(_) => self.params.static_chunk_ns * self.workers.len() as f64,
            _ => self.params.task_create_ns * self.tasks.len() as f64,
        };
        self.now += dispatch;
        self.overhead_ns += dispatch;

        loop {
            // Let every idle worker acquire work. Acquisitions can wake parked
            // workers (batch steals), so iterate to a fixed point.
            loop {
                let mut any = false;
                for i in 0..self.workers.len() {
                    if matches!(self.workers[i].state, WorkerState::Idle) {
                        self.seek(i);
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }

            self.recompute_rates();

            // Next event: smallest time-to-completion across busy workers.
            let mut dt = f64::INFINITY;
            for w in &self.workers {
                let t = match &w.state {
                    WorkerState::Overhead { remaining_ns, .. } => *remaining_ns,
                    WorkerState::Running {
                        remaining, rate, ..
                    } if *rate > 0.0 => remaining / rate,
                    _ => f64::INFINITY,
                };
                dt = dt.min(t);
            }

            if !dt.is_finite() {
                // No busy workers left: either done, or the plan stranded
                // strict tasks on nodes without active workers (a scheduler
                // bug — plan validation should have caught it).
                assert!(
                    self.pools_empty(),
                    "deadlock: tasks remain but every worker is parked"
                );
                break;
            }

            self.advance(dt);
        }

        // Idle-loop tails: workers that parked keep spinning in the
        // scheduler until the last chunk completes (`self.now`).
        for w in &self.workers {
            if let WorkerState::Parked { since } = w.state {
                self.overhead_ns += self.now - since;
            }
        }

        // Closing barrier.
        let threads = self.workers.len();
        let barrier = self.params.barrier_base_ns * (threads.max(2) as f64).log2();
        self.now += barrier;
        self.overhead_ns += barrier;

        LoopOutcome {
            makespan_ns: self.now,
            sched_overhead_ns: self.overhead_ns,
            nodes: self.nodes_out,
            migrations: self.migrations,
            threads,
            trace: self.trace.unwrap_or_default(),
        }
    }

    fn pools_empty(&self) -> bool {
        match &self.pools {
            PoolSet::Flat(qs) => qs.iter().all(|q| q.is_empty()),
            PoolSet::Hier(ps) => ps.iter().all(|p| p.queue.is_empty()),
            PoolSet::Static(qs) => qs.iter().all(|q| q.is_empty()),
        }
    }

    /// Worker `i` (currently Idle) tries to acquire a chunk.
    fn seek(&mut self, i: usize) {
        let node = self.workers[i].node;
        let (task, cost) = match &mut self.pools {
            PoolSet::Flat(qs) => {
                if let Some(t) = qs[i].pop_front() {
                    (Some(t), self.params.pop_cost_ns)
                } else {
                    // Steal half of a pseudo-random victim's deque —
                    // NUMA-oblivious, like the default LLVM scheduler.
                    let w = qs.len();
                    let start = (splitmix64(&mut self.rng_state) as usize) % w;
                    let victim = (0..w)
                        .map(|k| (start + k) % w)
                        .find(|&v| v != i && !qs[v].is_empty());
                    match victim {
                        Some(v) => {
                            let keep = qs[v].len() / 2;
                            let batch = qs[v].split_off(keep);
                            let cross = self.workers[v].node != node;
                            if cross {
                                self.migrations += batch.len();
                            }
                            qs[i] = batch;
                            let t = qs[i].pop_front().expect("stolen batch non-empty");
                            let cost = if cross {
                                self.params.remote_steal_cost_ns
                            } else {
                                self.params.pop_cost_ns + self.params.pop_contention_ns
                            };
                            (Some(t), cost)
                        }
                        None => (None, self.params.failed_steal_cost_ns),
                    }
                }
            }
            PoolSet::Hier(pools) => {
                if let Some(t) = pools[node].pop() {
                    let sharers = self.node_worker_count[node];
                    (
                        Some(t),
                        self.params.pop_cost_ns
                            + self.params.pop_contention_ns * sharers.saturating_sub(1) as f64,
                    )
                } else {
                    // Own node exhausted: the node is "fully idle" in the
                    // paper's sense, so inter-node stealing of the stealable
                    // tail is permitted. Victim: most stealable work, ties to
                    // the lowest node id.
                    let victim = (0..pools.len())
                        .filter(|&n| n != node && pools[n].stealable() > 0)
                        .max_by_key(|&n| (pools[n].stealable(), usize::MAX - n));
                    match victim {
                        Some(v) => {
                            let batch = pools[v].steal_batch();
                            self.migrations += batch.len();
                            let pool = &mut pools[node];
                            // Stolen chunks arrive unstrict: they may move on.
                            pool.queue.extend(batch);
                            let t = pool.pop().expect("batch steal is non-empty");
                            // Wake parked peers on this node: new work exists.
                            let now = self.now;
                            for (j, w) in self.workers.iter_mut().enumerate() {
                                if let WorkerState::Parked { since } = w.state {
                                    if j != i && w.node == node {
                                        self.overhead_ns += now - since;
                                        w.state = WorkerState::Idle;
                                    }
                                }
                            }
                            (
                                Some(t),
                                self.params.remote_steal_cost_ns + self.params.pop_cost_ns,
                            )
                        }
                        None => (None, self.params.failed_steal_cost_ns),
                    }
                }
            }
            PoolSet::Static(qs) => match qs[i].pop_front() {
                Some(t) => (Some(t), self.params.static_chunk_ns),
                None => (None, 0.0),
            },
        };

        match task {
            Some(t) => {
                self.overhead_ns += cost;
                self.workers[i].state = WorkerState::Overhead {
                    remaining_ns: cost,
                    next: t,
                };
            }
            None => {
                self.overhead_ns += cost;
                self.workers[i].state = WorkerState::Parked { since: self.now };
            }
        }
    }

    /// Recomputes demands, congestion factors and every running chunk's rate.
    fn recompute_rates(&mut self) {
        let topo = &self.params.topology;
        self.demand.iter_mut().for_each(|d| *d = 0.0);
        self.link_demand.iter_mut().for_each(|d| *d = 0.0);
        self.streams.iter_mut().for_each(|d| *d = 0.0);
        let ns = topo.num_sockets();

        // Pass 1: aggregate desired bandwidth per memory controller and link,
        // plus the streaming-flow count per controller (row-buffer model).
        for w in &self.workers {
            if let WorkerState::Running {
                task,
                traffic,
                desired_bw,
                ..
            } = &w.state
            {
                let stream_weight = match self.tasks[*task].locality {
                    crate::task::Locality::Chunked => 1.0,
                    crate::task::Locality::Scattered { spread } => 1.0 - spread,
                };
                self.streams[self.tasks[*task].home_node.index()] += stream_weight;
                let s_from = topo.socket_of_node(NodeId::new(w.node)).index();
                for &(k, frac, _) in traffic {
                    let bw = desired_bw * frac;
                    self.demand[k] += bw;
                    let s_to = topo.socket_of_node(NodeId::new(k)).index();
                    if s_from != s_to {
                        let (a, b) = (s_from.min(s_to), s_from.max(s_to));
                        self.link_demand[a * ns + b] += bw;
                    }
                }
            }
        }

        // Pass 2: congestion factor per resource.
        let beta = self.params.overload_beta;
        let cong = |demand: f64, bw: f64| -> f64 {
            let util = demand / bw;
            if util <= 1.0 {
                1.0
            } else {
                util * (1.0 + beta * (util - 1.0))
            }
        };
        let kappa = self.params.stream_kappa;
        let base = self.params.stream_base;
        let node_cong: Vec<f64> = self
            .demand
            .iter()
            .zip(&self.streams)
            .map(|(&d, &st)| {
                let stream_factor = 1.0 + kappa * (st - base).max(0.0);
                cong(d, self.params.node_bw) * stream_factor
            })
            .collect();
        let link_cong: Vec<f64> = self
            .link_demand
            .iter()
            .map(|&d| cong(d, self.params.link_bw))
            .collect();

        // Pass 3: per-chunk rates.
        for w in &mut self.workers {
            let wnode = w.node;
            let core = w.core.index();
            if let WorkerState::Running {
                task,
                rate,
                traffic,
                ..
            } = &mut w.state
            {
                let spec = &self.tasks[*task];
                let exec_node = NodeId::new(wnode);
                let s_from = topo.socket_of_node(exec_node).index();
                let mut penalty = 0.0;
                for &(k, frac, lat) in traffic.iter() {
                    let s_to = topo.socket_of_node(NodeId::new(k)).index();
                    let mut c = node_cong[k];
                    if s_from != s_to {
                        let (a, b) = (s_from.min(s_to), s_from.max(s_to));
                        c = c.max(link_cong[a * ns + b]);
                    }
                    penalty += frac * lat * c;
                }
                let freq = self.freqs[core];
                let compute = spec.compute_ns / freq;
                let mem = spec.effective_bytes(exec_node) / self.params.core_bw * penalty.max(1.0);
                let mut duration = compute + mem;
                if Some(wnode) == self.outlier_node {
                    duration /= self.params.noise.outlier_factor;
                }
                *rate = if duration > 0.0 {
                    1.0 / duration
                } else {
                    f64::INFINITY
                };
            }
        }
    }

    /// Advances simulated time by `dt`, completing whatever finishes.
    fn advance(&mut self, dt: f64) {
        self.now += dt;
        let core_bw = self.params.core_bw;
        for i in 0..self.workers.len() {
            let w = &mut self.workers[i];
            match &mut w.state {
                WorkerState::Overhead { remaining_ns, next } => {
                    *remaining_ns -= dt;
                    if *remaining_ns <= EPS {
                        let t = *next;
                        let spec = &self.tasks[t];
                        let exec_node = NodeId::new(w.node);
                        let topo = &self.params.topology;
                        let sens = spec.locality.latency_sensitivity();
                        let mut traffic = Vec::with_capacity(4);
                        for k in 0..topo.num_nodes() {
                            let frac = spec.locality.traffic_fraction(
                                spec.home_node,
                                spec.data_mask,
                                NodeId::new(k),
                            );
                            if frac > 0.0 {
                                let lat = 1.0
                                    + sens
                                        * (topo
                                            .distances()
                                            .latency_factor(exec_node, NodeId::new(k))
                                            - 1.0);
                                traffic.push((k, frac, lat));
                            }
                        }
                        let ideal = spec.ideal_ns(core_bw);
                        let desired_bw = if ideal > 0.0 {
                            spec.effective_bytes(exec_node) / ideal
                        } else {
                            0.0
                        };
                        w.state = WorkerState::Running {
                            task: t,
                            remaining: 1.0,
                            rate: 0.0,
                            traffic,
                            desired_bw,
                            elapsed_ns: 0.0,
                        };
                    }
                }
                WorkerState::Running {
                    task,
                    remaining,
                    rate,
                    elapsed_ns,
                    ..
                } => {
                    *remaining -= *rate * dt;
                    *elapsed_ns += dt;
                    if *remaining <= EPS {
                        let spec = &self.tasks[*task];
                        if let Some(trace) = &mut self.trace {
                            trace.push(TaskRecord {
                                task: *task,
                                core: w.core,
                                start_ns: self.now - *elapsed_ns,
                                end_ns: self.now,
                            });
                        }
                        let node = &mut self.nodes_out[w.node];
                        node.tasks += 1;
                        node.busy_ns += *elapsed_ns;
                        node.ideal_ns += spec.ideal_ns(core_bw);
                        node.dram_bytes += spec.effective_bytes(NodeId::new(w.node));
                        if spec.home_node.index() == w.node {
                            node.local_tasks += 1;
                        }
                        w.state = WorkerState::Idle;
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SimMachine;
    use crate::plan::NodeAssignment;
    use crate::task::Locality;
    use ilan_topology::{presets, NodeMask};

    fn uniform_tasks(n: usize, nodes: usize, per_node_bytes: f64) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec {
                compute_ns: 20_000.0,
                mem_bytes: per_node_bytes,
                home_node: NodeId::new(i * nodes / n),
                locality: Locality::Chunked,
                data_mask: NodeMask::first_n(nodes),
                cache_reuse: 0.0,
                fits_l3: false,
            })
            .collect()
    }

    fn machine() -> SimMachine {
        let topo = presets::tiny_2x4();
        SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1)
    }

    fn hier_plan(tasks: usize, nodes: usize, strict_frac: f64) -> PlacementPlan {
        let mut assignments = Vec::new();
        for node in 0..nodes {
            let ts: Vec<usize> = (0..tasks).filter(|i| i * nodes / tasks == node).collect();
            let strict_count = (ts.len() as f64 * strict_frac).round() as usize;
            assignments.push(NodeAssignment {
                node: NodeId::new(node),
                tasks: ts,
                strict_count,
            });
        }
        PlacementPlan::Hierarchical { assignments }
    }

    #[test]
    fn executes_every_task_exactly_once_flat() {
        let mut m = machine();
        let tasks = uniform_tasks(40, 2, 50_000.0);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let out = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks);
        assert_eq!(out.tasks_executed(), 40);
        assert_eq!(out.threads, 8);
    }

    #[test]
    fn executes_every_task_hier_and_static() {
        let mut m = machine();
        let tasks = uniform_tasks(40, 2, 50_000.0);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        for plan in [hier_plan(40, 2, 1.0), PlacementPlan::worksharing()] {
            let out = m.run_taskloop(&cores, &plan, &tasks);
            assert_eq!(out.tasks_executed(), 40);
        }
    }

    #[test]
    fn hierarchical_beats_flat_on_locality() {
        let mut m = machine();
        let tasks = uniform_tasks(64, 2, 200_000.0);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let flat = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks);
        let hier = m.run_taskloop(&cores, &hier_plan(64, 2, 1.0), &tasks);
        assert!(
            hier.locality_fraction() > flat.locality_fraction(),
            "hier locality {} vs flat {}",
            hier.locality_fraction(),
            flat.locality_fraction()
        );
        assert!(
            hier.makespan_ns < flat.makespan_ns,
            "hier {} vs flat {}",
            hier.makespan_ns,
            flat.makespan_ns
        );
        // Strict hierarchical placement achieves perfect locality here.
        assert!((hier.locality_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strict_policy_never_migrates() {
        let mut m = machine();
        // Imbalanced: all heavy tasks on node 0.
        let mut tasks = uniform_tasks(32, 2, 50_000.0);
        for (i, t) in tasks.iter_mut().enumerate() {
            if i < 16 {
                t.compute_ns *= 8.0;
            }
        }
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let strict = m.run_taskloop(&cores, &hier_plan(32, 2, 1.0), &tasks);
        assert_eq!(strict.migrations, 0);
        // Full policy may migrate and should not be slower by much — with this
        // much imbalance it should win.
        let full = m.run_taskloop(&cores, &hier_plan(32, 2, 0.5), &tasks);
        assert!(full.migrations > 0, "expected inter-node steals");
        assert!(full.makespan_ns < strict.makespan_ns);
    }

    #[test]
    fn static_has_lowest_overhead() {
        let mut m = machine();
        let tasks = uniform_tasks(64, 2, 50_000.0);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let ws = m.run_taskloop(&cores, &PlacementPlan::worksharing(), &tasks);
        let flat = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks);
        assert!(ws.sched_overhead_ns < flat.sched_overhead_ns);
        assert_eq!(ws.migrations, 0);
    }

    #[test]
    fn empty_taskloop_is_just_overheads() {
        let mut m = machine();
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let out = m.run_taskloop(&cores, &PlacementPlan::flat(), &[]);
        assert_eq!(out.tasks_executed(), 0);
        assert!(out.makespan_ns > 0.0); // barrier still costs
        assert_eq!(out.total_busy_ns(), 0.0);
        // Overhead (summed across workers) covers at least the critical path.
        assert!(out.sched_overhead_ns >= out.makespan_ns - 1e-6);
    }

    #[test]
    fn single_worker_runs_serially() {
        let mut m = machine();
        let tasks = uniform_tasks(10, 2, 22_000.0);
        let mut cores = CpuSet::new();
        cores.insert(CoreId::new(0));
        let out = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks);
        assert_eq!(out.tasks_executed(), 10);
        assert_eq!(out.threads, 1);
        // All work on node 0.
        assert_eq!(out.nodes[0].tasks, 10);
        assert_eq!(out.nodes[1].tasks, 0);
    }

    #[test]
    fn bandwidth_contention_creates_interior_optimum() {
        // A severely bandwidth-bound loop: per-chunk traffic far beyond what
        // the node controllers can serve when all cores run. Fewer active
        // cores must then beat the full machine.
        let topo = presets::epyc_9354_2s();
        let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 3);
        let nodes = topo.num_nodes();
        let tasks: Vec<TaskSpec> = (0..512)
            .map(|i| TaskSpec {
                compute_ns: 500.0,
                mem_bytes: 2_000_000.0,
                home_node: NodeId::new(i * nodes / 512),
                locality: Locality::Scattered { spread: 0.8 },
                data_mask: NodeMask::first_n(nodes),
                cache_reuse: 0.0,
                fits_l3: false,
            })
            .collect();
        let all = topo.cpuset_of_mask(topo.all_nodes());
        let t_full = m
            .run_taskloop(&all, &PlacementPlan::flat(), &tasks)
            .makespan_ns;
        // Half the machine: nodes 0..4 (one socket).
        let half_mask = NodeMask::first_n(4);
        let half = topo.cpuset_of_mask(half_mask);
        let t_half = m
            .run_taskloop(&half, &PlacementPlan::flat(), &tasks)
            .makespan_ns;
        assert!(
            t_half < t_full,
            "molding should help a saturated loop: half={t_half} full={t_full}"
        );
    }

    #[test]
    fn compute_bound_loop_scales_with_cores() {
        let topo = presets::epyc_9354_2s();
        let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 3);
        let nodes = topo.num_nodes();
        let tasks: Vec<TaskSpec> = (0..512)
            .map(|i| TaskSpec {
                compute_ns: 400_000.0,
                mem_bytes: 10_000.0,
                home_node: NodeId::new(i * nodes / 512),
                locality: Locality::Chunked,
                data_mask: NodeMask::first_n(nodes),
                cache_reuse: 0.0,
                fits_l3: true,
            })
            .collect();
        let all = topo.cpuset_of_mask(topo.all_nodes());
        let t_full = m
            .run_taskloop(&all, &PlacementPlan::flat(), &tasks)
            .makespan_ns;
        let half = topo.cpuset_of_mask(NodeMask::first_n(4));
        let t_half = m
            .run_taskloop(&half, &PlacementPlan::flat(), &tasks)
            .makespan_ns;
        assert!(
            t_full < 0.6 * t_half,
            "compute-bound loop must scale: full={t_full} half={t_half}"
        );
    }

    #[test]
    fn work_conservation_busy_time_bounded_by_makespan() {
        let mut m = machine();
        let tasks = uniform_tasks(48, 2, 80_000.0);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        let out = m.run_taskloop(&cores, &hier_plan(48, 2, 0.75), &tasks);
        // 8 workers: total busy time can never exceed 8 × makespan.
        assert!(out.total_busy_ns() <= 8.0 * out.makespan_ns + 1e-6);
        // And busy time is at least the ideal aggregate (penalties ≥ 1).
        assert!(out.total_busy_ns() + 1e-6 >= out.total_ideal_ns());
    }

    #[test]
    #[should_panic(expected = "no active core")]
    fn plan_targeting_inactive_node_panics() {
        let mut m = machine();
        let tasks = uniform_tasks(8, 2, 10_000.0);
        // Only node 0 cores active, but the plan targets both nodes.
        let cores = m
            .topology()
            .cpuset_of_mask(NodeMask::single(NodeId::new(0)));
        m.run_taskloop(&cores, &hier_plan(8, 2, 1.0), &tasks);
    }
}
