//! Shared execution machinery of the fluid-rate engines.
//!
//! Both the single-loop [`Engine`](crate::engine::Engine) and the multi-lane
//! [`ColoMachine`](crate::ColoMachine) drive the same worker/pool state
//! machine: per-node (or per-worker) task pools, pop/steal acquisition with
//! its modelled costs, and the Idle → Overhead → Running → Idle worker
//! lifecycle. This module owns those pieces so the two engines cannot drift
//! apart on scheduling semantics.

use crate::params::MachineParams;
use crate::plan::PlacementPlan;
use crate::rates::{desired_bandwidth, traffic_rows};
use crate::task::TaskSpec;
use ilan_topology::{CoreId, CpuSet, Topology};
use ilan_trace::{EventKind, Recorder, DISPATCHER};
use std::collections::VecDeque;

/// Numerical slack for "remaining work is zero" tests.
pub(crate) const EPS: f64 = 1e-9;

/// SplitMix64 — deterministic per-invocation randomness for the flat
/// baseline's block permutation and victim order.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One per-node task pool of a hierarchical plan.
pub(crate) struct NodePool {
    /// Chunk indices in execution order. Strict chunks are at the front.
    pub(crate) queue: VecDeque<usize>,
    /// How many chunks at the front of `queue` are NUMA-strict.
    pub(crate) strict_remaining: usize,
}

impl NodePool {
    pub(crate) fn stealable(&self) -> usize {
        self.queue.len().saturating_sub(self.strict_remaining)
    }

    pub(crate) fn pop(&mut self) -> Option<usize> {
        let t = self.queue.pop_front()?;
        self.strict_remaining = self.strict_remaining.saturating_sub(1);
        Some(t)
    }

    /// Removes up to half of the stealable tail (at least one), returning the
    /// stolen chunk indices in order.
    pub(crate) fn steal_batch(&mut self) -> Vec<usize> {
        let stealable = self.stealable();
        if stealable == 0 {
            return Vec::new();
        }
        let k = (stealable / 2).max(1);
        let split = self.queue.len() - k;
        self.queue.split_off(split).into()
    }
}

pub(crate) enum PoolSet {
    /// LLVM-default tasking: recursive taskloop splitting hands each worker
    /// a contiguous block of chunks at a pseudo-random position (placement is
    /// effectively random w.r.t. data homes), and idle workers steal half a
    /// victim's remaining deque, like `splittable` taskloop tasks.
    Flat(Vec<VecDeque<usize>>),
    Hier(Vec<NodePool>),
    Static(Vec<VecDeque<usize>>),
}

impl PoolSet {
    /// Materializes a plan into pools for the given worker set. When a
    /// `tracer` is supplied, one [`EventKind::ChunkEnqueue`] is recorded per
    /// chunk (home = the node whose pool — or whose worker's deque — receives
    /// it) at dispatch time `now_ns`.
    #[allow(clippy::too_many_arguments)] // internal, shared by two engines
    pub(crate) fn build(
        plan: &PlacementPlan,
        num_tasks: usize,
        workers: &[Worker],
        node_worker_count: &[usize],
        num_nodes: usize,
        perm_seed: u64,
        mut tracer: Option<&mut Recorder>,
        now_ns: f64,
    ) -> PoolSet {
        plan.validate(num_tasks);
        let enqueue =
            |tracer: &mut Option<&mut Recorder>, chunk: usize, home: usize, strict: bool| {
                if let Some(tr) = tracer.as_deref_mut() {
                    tr.push(
                        DISPATCHER,
                        home as u32,
                        now_ns as u64,
                        EventKind::ChunkEnqueue {
                            chunk: chunk as u32,
                            home: home as u32,
                            strict,
                        },
                    );
                }
            };
        match plan {
            PlacementPlan::Flat => {
                // Contiguous blocks (taskloop splitting) assigned to workers
                // by a seeded permutation (random initial placement).
                let w = workers.len();
                let mut order: Vec<usize> = (0..w).collect();
                let mut st = perm_seed;
                for i in (1..w).rev() {
                    let j = (splitmix64(&mut st) as usize) % (i + 1);
                    order.swap(i, j);
                }
                let mut per_worker: Vec<VecDeque<usize>> =
                    (0..w).map(|_| VecDeque::new()).collect();
                for (slot, &wi) in order.iter().enumerate() {
                    let lo = slot * num_tasks / w;
                    let hi = (slot + 1) * num_tasks / w;
                    for c in lo..hi {
                        enqueue(&mut tracer, c, workers[wi].node, false);
                    }
                    per_worker[wi].extend(lo..hi);
                }
                PoolSet::Flat(per_worker)
            }
            PlacementPlan::Hierarchical { assignments } => {
                let mut per_node: Vec<NodePool> = (0..num_nodes)
                    .map(|_| NodePool {
                        queue: VecDeque::new(),
                        strict_remaining: 0,
                    })
                    .collect();
                for a in assignments {
                    let pool = &mut per_node[a.node.index()];
                    assert!(
                        a.tasks.is_empty() || node_worker_count[a.node.index()] > 0,
                        "plan assigns tasks to {} but no active core lives there",
                        a.node
                    );
                    for (j, &c) in a.tasks.iter().enumerate() {
                        enqueue(&mut tracer, c, a.node.index(), j < a.strict_count);
                    }
                    pool.queue.extend(a.tasks.iter().copied());
                    pool.strict_remaining += a.strict_count;
                }
                PoolSet::Hier(per_node)
            }
            PlacementPlan::Static => {
                let w = workers.len();
                let mut per_worker: Vec<VecDeque<usize>> =
                    (0..w).map(|_| VecDeque::new()).collect();
                for (i, q) in per_worker.iter_mut().enumerate() {
                    let lo = i * num_tasks / w;
                    let hi = (i + 1) * num_tasks / w;
                    for c in lo..hi {
                        enqueue(&mut tracer, c, workers[i].node, false);
                    }
                    q.extend(lo..hi);
                }
                PoolSet::Static(per_worker)
            }
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            PoolSet::Flat(qs) => qs.iter().all(|q| q.is_empty()),
            PoolSet::Hier(ps) => ps.iter().all(|p| p.queue.is_empty()),
            PoolSet::Static(qs) => qs.iter().all(|q| q.is_empty()),
        }
    }

    /// Serial dispatch cost paid by the encountering thread before any
    /// worker starts. Work-sharing creates no task objects: each worker just
    /// computes its slice bounds.
    pub(crate) fn dispatch_ns(&self, params: &MachineParams, num_tasks: usize) -> f64 {
        match self {
            PoolSet::Static(qs) => params.static_chunk_ns * qs.len() as f64,
            _ => params.task_create_ns * num_tasks as f64,
        }
    }
}

#[derive(Clone, Debug)]
pub(crate) enum WorkerState {
    /// Needs to acquire work at the current time.
    Idle,
    /// Performing a scheduling action (pop / steal), then starts `next`.
    Overhead { remaining_ns: f64, next: usize },
    /// Executing chunk `task`.
    Running {
        task: usize,
        /// Fraction of the chunk still to execute, in `[0, 1]`.
        remaining: f64,
        /// Progress per ns under the current machine state.
        rate: f64,
        /// Precomputed `(node, traffic_fraction, latency_factor)` rows.
        traffic: Vec<(usize, f64, f64)>,
        /// Desired DRAM bandwidth if uncontended, bytes/ns.
        desired_bw: f64,
        /// Wall time spent on this chunk so far.
        elapsed_ns: f64,
    },
    /// No work is reachable for this worker; it spins in the scheduler's
    /// idle loop until the taskloop completes (that waiting is scheduler
    /// time — LLVM's baseline burns it in `__kmp_execute_tasks`).
    Parked {
        /// When the worker entered the idle loop.
        since: f64,
    },
}

pub(crate) struct Worker {
    pub(crate) core: CoreId,
    pub(crate) node: usize,
    pub(crate) state: WorkerState,
    /// Machine time before which an injected stall keeps this worker out of
    /// the acquire loop (0 = healthy). Time still advances past a stalled
    /// worker — it just does not pop or steal until the stall expires.
    pub(crate) stall_until_ns: f64,
}

/// Builds one worker per active core, plus the per-node worker census.
pub(crate) fn make_workers(topo: &Topology, active: &CpuSet) -> (Vec<Worker>, Vec<usize>) {
    assert!(
        !active.is_empty(),
        "taskloop needs at least one active core"
    );
    let workers: Vec<Worker> = active
        .iter()
        .map(|core| {
            assert!(
                core.index() < topo.num_cores(),
                "active core {core} outside topology"
            );
            Worker {
                core,
                node: topo.node_of_core(core).index(),
                state: WorkerState::Idle,
                stall_until_ns: 0.0,
            }
        })
        .collect();
    let mut node_worker_count = vec![0usize; topo.num_nodes()];
    for w in &workers {
        node_worker_count[w.node] += 1;
    }
    (workers, node_worker_count)
}

/// Worker `i` (currently Idle) tries to acquire a chunk: the pop/steal state
/// machine shared by both engines. Mutates the worker's state (to Overhead or
/// Parked), accumulates scheduling overhead and migrations, and — on a
/// hierarchical batch steal — wakes parked peers on the thief's node.
///
/// With a `tracer`, every acquisition is recorded: pops as
/// [`EventKind::LocalPop`], batch transfers element-wise as
/// [`EventKind::InterNodeSteal`] (cross-node, matching the engines'
/// at-steal-time migration accounting) or [`EventKind::IntraNodeSteal`].
#[allow(clippy::too_many_arguments)] // internal hot path shared by two engines
pub(crate) fn seek(
    pools: &mut PoolSet,
    workers: &mut [Worker],
    i: usize,
    now: f64,
    params: &MachineParams,
    node_worker_count: &[usize],
    rng_state: &mut u64,
    overhead_ns: &mut f64,
    migrations: &mut usize,
    mut tracer: Option<&mut Recorder>,
) {
    let node = workers[i].node;
    let me = workers[i].core.index() as u32;
    let my_node = node as u32;
    let record = |tracer: &mut Option<&mut Recorder>, kind: EventKind| {
        if let Some(tr) = tracer.as_deref_mut() {
            tr.push(me, my_node, now as u64, kind);
        }
    };
    let (task, cost) = match pools {
        PoolSet::Flat(qs) => {
            if let Some(t) = qs[i].pop_front() {
                record(&mut tracer, EventKind::LocalPop { chunk: t as u32 });
                (Some(t), params.pop_cost_ns)
            } else {
                // Steal half of a pseudo-random victim's deque —
                // NUMA-oblivious, like the default LLVM scheduler.
                let w = qs.len();
                let start = (splitmix64(rng_state) as usize) % w;
                let victim = (0..w)
                    .map(|k| (start + k) % w)
                    .find(|&v| v != i && !qs[v].is_empty());
                match victim {
                    Some(v) => {
                        let keep = qs[v].len() / 2;
                        let batch = qs[v].split_off(keep);
                        let cross = workers[v].node != node;
                        if cross {
                            *migrations += batch.len();
                        }
                        for &c in &batch {
                            let kind = if cross {
                                EventKind::InterNodeSteal {
                                    chunk: c as u32,
                                    from: workers[v].node as u32,
                                }
                            } else {
                                EventKind::IntraNodeSteal {
                                    chunk: c as u32,
                                    victim: workers[v].core.index() as u32,
                                }
                            };
                            record(&mut tracer, kind);
                        }
                        qs[i] = batch;
                        let t = qs[i].pop_front().expect("stolen batch non-empty");
                        let cost = if cross {
                            params.remote_steal_cost_ns
                        } else {
                            params.pop_cost_ns + params.pop_contention_ns
                        };
                        (Some(t), cost)
                    }
                    None => (None, params.failed_steal_cost_ns),
                }
            }
        }
        PoolSet::Hier(pools) => {
            if let Some(t) = pools[node].pop() {
                record(&mut tracer, EventKind::LocalPop { chunk: t as u32 });
                let sharers = node_worker_count[node];
                (
                    Some(t),
                    params.pop_cost_ns
                        + params.pop_contention_ns * sharers.saturating_sub(1) as f64,
                )
            } else {
                // Own node exhausted: the node is "fully idle" in the
                // paper's sense, so inter-node stealing of the stealable
                // tail is permitted. Victim: most stealable work, ties to
                // the lowest node id.
                let victim = (0..pools.len())
                    .filter(|&n| n != node && pools[n].stealable() > 0)
                    .max_by_key(|&n| (pools[n].stealable(), usize::MAX - n));
                match victim {
                    Some(v) => {
                        let batch = pools[v].steal_batch();
                        *migrations += batch.len();
                        for &c in &batch {
                            record(
                                &mut tracer,
                                EventKind::InterNodeSteal {
                                    chunk: c as u32,
                                    from: v as u32,
                                },
                            );
                        }
                        let pool = &mut pools[node];
                        // Stolen chunks arrive unstrict: they may move on.
                        pool.queue.extend(batch);
                        let t = pool.pop().expect("batch steal is non-empty");
                        // Wake parked peers on this node: new work exists.
                        for (j, w) in workers.iter_mut().enumerate() {
                            if let WorkerState::Parked { since } = w.state {
                                if j != i && w.node == node {
                                    *overhead_ns += now - since;
                                    w.state = WorkerState::Idle;
                                }
                            }
                        }
                        (Some(t), params.remote_steal_cost_ns + params.pop_cost_ns)
                    }
                    None => (None, params.failed_steal_cost_ns),
                }
            }
        }
        PoolSet::Static(qs) => match qs[i].pop_front() {
            Some(t) => {
                record(&mut tracer, EventKind::LocalPop { chunk: t as u32 });
                (Some(t), params.static_chunk_ns)
            }
            None => (None, 0.0),
        },
    };

    match task {
        Some(t) => {
            *overhead_ns += cost;
            workers[i].state = WorkerState::Overhead {
                remaining_ns: cost,
                next: t,
            };
        }
        None => {
            *overhead_ns += cost;
            workers[i].state = WorkerState::Parked { since: now };
        }
    }
}

/// The Overhead → Running transition: precomputes the chunk's traffic rows
/// and uncontended bandwidth demand for the node it will execute on.
pub(crate) fn begin_chunk(
    topo: &Topology,
    params: &MachineParams,
    exec_node: usize,
    task: usize,
    spec: &TaskSpec,
) -> WorkerState {
    let exec = ilan_topology::NodeId::new(exec_node);
    WorkerState::Running {
        task,
        remaining: 1.0,
        rate: 0.0,
        traffic: traffic_rows(topo, spec, exec),
        desired_bw: desired_bandwidth(spec, exec, params.core_bw),
        elapsed_ns: 0.0,
    }
}
