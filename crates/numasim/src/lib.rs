//! A deterministic simulator of a NUMA machine for scheduler research.
//!
//! The ILAN paper evaluates on a 64-core AMD EPYC 9354 node. This environment
//! has one core and one NUMA node, so the repository substitutes a *fluid-rate
//! discrete-event simulation* of that machine: tasks progress at rates derived
//! from a roofline-style cost model, and the rates are recomputed whenever the
//! machine state changes (a task starts or finishes, a noise window opens).
//!
//! The simulator reproduces the first-order phenomena the ILAN scheduler
//! exploits:
//!
//! * **Locality** — a task accessing memory on a remote NUMA node pays a
//!   latency factor derived from the topology's SLIT distance matrix
//!   (damped by the workload's latency sensitivity, since hardware
//!   prefetching hides part of the latency for streaming access).
//! * **Interference** — each NUMA node's memory controller and each
//!   inter-socket link has finite bandwidth; when aggregate demand exceeds it,
//!   all tasks sharing the resource slow down proportionally, *plus* an
//!   overload penalty modelling queueing and row-buffer thrash. This creates
//!   an interior-optimum thread count for bandwidth-bound loops — the effect
//!   moldability exploits.
//! * **Cache reuse** — a chunk that executes on the NUMA node holding its data
//!   enjoys an L3 reuse discount when its per-node working set fits in the
//!   node's aggregate L3, modelling the cross-timestep reuse that makes
//!   deterministic hierarchical placement profitable.
//! * **Dynamic asymmetry** — seeded per-core frequency jitter and rare
//!   node-wide outlier windows reproduce the variance mechanisms the paper
//!   names (DVFS, external system noise).
//!
//! The simulator executes one *taskloop invocation* at a time: the caller
//! provides the set of active cores, a [`PlacementPlan`] (flat baseline pool,
//! hierarchical per-node pools with a NUMA-strict fraction, or static
//! work-sharing slices) and the task chunks; it returns a [`LoopOutcome`] with
//! the makespan, per-node performance, and accumulated scheduling overhead.
//! Scheduling *policy* (which plan, how many threads) lives in the `ilan`
//! crate — this crate is purely the machine.
//!
//! # Example
//!
//! ```
//! use ilan_numasim::{MachineParams, SimMachine, TaskSpec, Locality, PlacementPlan};
//! use ilan_topology::presets;
//!
//! let topo = presets::tiny_2x4();
//! let params = MachineParams::for_topology(&topo);
//! let mut machine = SimMachine::new(params, 42);
//!
//! // 64 identical chunks, data blocked across both nodes.
//! let tasks: Vec<TaskSpec> = (0..64)
//!     .map(|i| TaskSpec {
//!         compute_ns: 10_000.0,
//!         mem_bytes: 100_000.0,
//!         home_node: ilan_topology::NodeId::new(if i < 32 { 0 } else { 1 }),
//!         locality: Locality::Chunked,
//!         data_mask: machine.topology().all_nodes(),
//!         cache_reuse: 0.3,
//!         fits_l3: true,
//!     })
//!     .collect();
//!
//! let cores = machine.topology().cpuset_of_mask(machine.topology().all_nodes());
//! let outcome = machine.run_taskloop(&cores, &PlacementPlan::flat(), &tasks);
//! assert!(outcome.makespan_ns > 0.0);
//! assert_eq!(outcome.tasks_executed(), 64);
//! ```

#![warn(missing_docs)]

mod colo;
mod engine;
mod exec;
mod machine;
pub mod metrics;
mod noise;
mod outcome;
mod params;
mod plan;
mod rates;
mod task;

pub use colo::ColoMachine;
pub use machine::SimMachine;
pub use metrics::SimMetrics;
pub use noise::NoiseParams;
pub use outcome::{LoopOutcome, NodeOutcome, TaskRecord};
pub use params::MachineParams;
pub use plan::{NodeAssignment, PlacementPlan};
pub use task::{Locality, TaskSpec};

/// Event-tracing layer (re-exported): [`LoopOutcome::events`] is an
/// [`trace::EventLog`] when a run is traced.
pub use ilan_trace as trace;
