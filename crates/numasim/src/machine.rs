//! [`SimMachine`]: one simulated machine for the duration of one run.

use crate::engine::Engine;
use crate::metrics::SimMetrics;
use crate::outcome::LoopOutcome;
use crate::params::MachineParams;
use crate::plan::PlacementPlan;
use crate::task::TaskSpec;
use ilan_topology::{CpuSet, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A simulated NUMA machine.
///
/// Created per run with a seed; the seed fixes the run's noise (per-core
/// frequency factors, outlier windows) so any run can be replayed exactly.
/// Taskloop invocations execute one at a time — the paper's model, where a
/// `taskloop` is followed by an implicit barrier — and the machine keeps a
/// global clock across invocations ([`now_ns`](Self::now_ns)).
pub struct SimMachine {
    params: MachineParams,
    rng: StdRng,
    freqs: Vec<f64>,
    now_ns: f64,
    metrics: Option<SimMetrics>,
}

impl SimMachine {
    /// Builds a machine and draws its per-run noise from `seed`.
    ///
    /// # Panics
    /// Panics if `params` fails validation.
    pub fn new(params: MachineParams, seed: u64) -> Self {
        params.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let freqs = params
            .noise
            .draw_freqs(&mut rng, params.topology.num_cores());
        SimMachine {
            params,
            rng,
            freqs,
            now_ns: 0.0,
            metrics: None,
        }
    }

    /// Attaches lane instruments: every subsequent invocation folds its
    /// [`LoopOutcome`] into the given [`SimMetrics`]. Opt-in and free of
    /// side effects on the simulation — the seeded noise, the clock and all
    /// outcomes are byte-identical with or without metrics attached.
    pub fn attach_metrics(&mut self, metrics: SimMetrics) {
        self.metrics = Some(metrics);
    }

    /// The attached instruments, if any.
    pub fn metrics(&self) -> Option<&SimMetrics> {
        self.metrics.as_ref()
    }

    /// The machine's topology.
    pub fn topology(&self) -> &Topology {
        &self.params.topology
    }

    /// The machine's performance parameters.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Global simulated clock: total time elapsed across all invocations and
    /// serial sections, ns.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// The per-core frequency factors drawn for this run (1.0 = nominal).
    pub fn core_freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Advances the clock over a serial (non-taskloop) section.
    pub fn advance_serial(&mut self, ns: f64) {
        assert!(
            ns >= 0.0 && ns.is_finite(),
            "serial time must be finite and >= 0"
        );
        self.now_ns += ns;
    }

    /// Executes one taskloop invocation on the given active cores with the
    /// given placement plan, advancing the global clock by its makespan.
    ///
    /// # Panics
    /// Panics if the plan does not cover the tasks exactly, if `active` is
    /// empty or references cores outside the topology, or if the plan assigns
    /// work to a node with no active cores.
    pub fn run_taskloop(
        &mut self,
        active: &CpuSet,
        plan: &PlacementPlan,
        tasks: &[TaskSpec],
    ) -> LoopOutcome {
        for t in tasks {
            debug_assert!({
                t.validate();
                true
            });
            debug_assert!(
                t.home_node.index() < self.params.topology.num_nodes(),
                "task home node outside topology"
            );
        }
        let outlier = self
            .params
            .noise
            .draw_outlier(&mut self.rng, self.params.topology.num_nodes());
        let perm_seed: u64 = rand::Rng::random(&mut self.rng);
        let engine = Engine::new(
            &self.params,
            &self.freqs,
            outlier,
            perm_seed,
            active,
            plan,
            tasks,
            false,
        );
        let outcome = engine.run();
        self.now_ns += outcome.makespan_ns;
        if let Some(m) = &self.metrics {
            m.record_outcome(&outcome);
        }
        outcome
    }

    /// Like [`run_taskloop`](Self::run_taskloop), additionally collecting a
    /// per-chunk execution trace (see [`LoopOutcome::trace`] and
    /// [`LoopOutcome::gantt`]) and the scheduler event log
    /// ([`LoopOutcome::events`]) consumed by `ilan-trace`'s auditor and
    /// Chrome-trace exporter. Tracing allocates per chunk, so it is off by
    /// default.
    pub fn run_taskloop_traced(
        &mut self,
        active: &CpuSet,
        plan: &PlacementPlan,
        tasks: &[TaskSpec],
    ) -> LoopOutcome {
        let outlier = self
            .params
            .noise
            .draw_outlier(&mut self.rng, self.params.topology.num_nodes());
        let perm_seed: u64 = rand::Rng::random(&mut self.rng);
        let engine = Engine::new(
            &self.params,
            &self.freqs,
            outlier,
            perm_seed,
            active,
            plan,
            tasks,
            true,
        );
        let outcome = engine.run();
        self.now_ns += outcome.makespan_ns;
        if let Some(m) = &self.metrics {
            m.record_outcome(&outcome);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Locality;
    use ilan_topology::{presets, NodeId, NodeMask};

    fn tasks(n: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec {
                compute_ns: 5_000.0,
                mem_bytes: 50_000.0,
                home_node: NodeId::new(i * 2 / n),
                locality: Locality::Chunked,
                data_mask: NodeMask::first_n(2),
                cache_reuse: 0.2,
                fits_l3: true,
            })
            .collect()
    }

    #[test]
    fn same_seed_same_outcome() {
        let topo = presets::tiny_2x4();
        let run = |seed| {
            let mut m = SimMachine::new(MachineParams::for_topology(&topo), seed);
            let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
            m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks(32))
                .makespan_ns
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should differ under noise");
    }

    #[test]
    fn noiseless_hierarchical_is_seed_independent() {
        // The flat baseline's block permutation is intentionally seed-driven
        // (random placement is part of the modelled scheduler), but ILAN's
        // deterministic distribution must not depend on the seed when the
        // machine is noiseless.
        let topo = presets::tiny_2x4();
        let plan = PlacementPlan::Hierarchical {
            assignments: vec![
                crate::NodeAssignment {
                    node: NodeId::new(0),
                    tasks: (0..16).collect(),
                    strict_count: 16,
                },
                crate::NodeAssignment {
                    node: NodeId::new(1),
                    tasks: (16..32).collect(),
                    strict_count: 16,
                },
            ],
        };
        let run = |seed| {
            let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), seed);
            let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
            m.run_taskloop(&cores, &plan, &tasks(32)).makespan_ns
        };
        assert_eq!(run(1), run(99));
    }

    #[test]
    fn flat_placement_varies_with_seed_even_noiseless() {
        let topo = presets::tiny_2x4();
        let run = |seed| {
            let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), seed);
            let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
            m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks(32))
                .locality_fraction()
        };
        // Different permutations land different chunks locally. Any two
        // particular seeds may collide on the locality statistic (distinct
        // permutations often tie), so assert variation across a seed set.
        let fractions: Vec<f64> = (1..=16).map(run).collect();
        assert!(
            fractions.iter().any(|&f| f != fractions[0]),
            "flat placement ignored the seed: {fractions:?}"
        );
    }

    #[test]
    fn clock_accumulates() {
        let topo = presets::tiny_2x4();
        let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
        let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
        assert_eq!(m.now_ns(), 0.0);
        let o1 = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks(16));
        assert!((m.now_ns() - o1.makespan_ns).abs() < 1e-9);
        m.advance_serial(1_000.0);
        let o2 = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks(16));
        assert!((m.now_ns() - (o1.makespan_ns + 1_000.0 + o2.makespan_ns)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "serial time")]
    fn rejects_negative_serial() {
        let topo = presets::tiny_2x4();
        let mut m = SimMachine::new(MachineParams::for_topology(&topo), 1);
        m.advance_serial(-1.0);
    }

    /// Differential check, simulator half: the lane counters and the
    /// migration counter must agree with the traced event log and the
    /// outcome of the same invocation — and attaching metrics must not
    /// perturb the simulation.
    #[test]
    fn metrics_match_traced_event_log() {
        use crate::metrics::SimMetrics;

        let topo = presets::tiny_2x4();
        // All work homed on node 0 with a fully stealable tail: node 1's
        // idle workers must batch-steal, so migrations are guaranteed.
        let plan = PlacementPlan::Hierarchical {
            assignments: vec![crate::NodeAssignment {
                node: NodeId::new(0),
                tasks: (0..32).collect(),
                strict_count: 0,
            }],
        };
        let run = |metrics: Option<SimMetrics>| {
            let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 3);
            if let Some(metrics) = metrics {
                m.attach_metrics(metrics);
            }
            let cores = m.topology().cpuset_of_mask(m.topology().all_nodes());
            m.run_taskloop_traced(&cores, &plan, &tasks(32))
        };

        let metrics = SimMetrics::new();
        let outcome = run(Some(metrics.clone()));
        assert!(outcome.migrations > 0, "the stealable tail must migrate");

        let snap = metrics.registry().snapshot();
        assert_eq!(
            snap.counter_total("ilan_sim_migrations") as usize,
            outcome.migrations
        );
        // The traced event log tells the same story.
        assert_eq!(outcome.events.inter_node_steals(), outcome.migrations);
        // Lane task counters sum to the chunks executed, split per node.
        assert_eq!(
            snap.counter_total("ilan_sim_node_tasks") as usize,
            outcome.tasks_executed()
        );
        for (i, node) in outcome.nodes.iter().enumerate() {
            use ilan_metrics::SampleValue;
            let label = i.to_string();
            let local = match snap.get_with(
                "ilan_sim_node_tasks",
                &[("node", label.as_str()), ("locality", "local")],
            ) {
                Some(SampleValue::Counter(v)) => *v as usize,
                None => 0,
                other => panic!("node {i}: {other:?}"),
            };
            assert_eq!(local, node.local_tasks, "node {i} locality split");
        }
        assert_eq!(snap.counter_total("ilan_sim_loops"), 1);

        // Metrics are purely observational: same seed, same outcome.
        let bare = run(None);
        assert_eq!(bare.makespan_ns, outcome.makespan_ns);
        assert_eq!(bare.migrations, outcome.migrations);
    }

    #[test]
    fn freqs_match_core_count() {
        let topo = presets::epyc_9354_2s();
        let m = SimMachine::new(MachineParams::for_topology(&topo), 11);
        assert_eq!(m.core_freqs().len(), 64);
    }
}
