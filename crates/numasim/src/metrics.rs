//! Simulator lane instruments: per-invocation outcome series.
//!
//! A [`SimMetrics`] is a cheap-clone handle over an `ilan-metrics`
//! [`Registry`]. Attach one to a [`SimMachine`](crate::SimMachine) with
//! [`attach_metrics`](crate::SimMachine::attach_metrics) and every
//! subsequent invocation folds its [`crate::LoopOutcome`] into
//! the registry — the machine itself stays deterministic (metrics never
//! touch the seeded RNG or the clock).
//!
//! Metric families (all prefixed `ilan_sim_`):
//!
//! | family | kind | meaning |
//! |---|---|---|
//! | `loops` | counter | taskloop invocations simulated |
//! | `makespan_ns` | histogram | invocation makespans |
//! | `sched_overhead_ns` | histogram | accumulated scheduler time per invocation (Figure 5's quantity) |
//! | `migrations` | counter | inter-node task migrations |
//! | `node_tasks` | counter (`node`, `locality`=`local`/`remote`) | chunks per lane by locality outcome |
//! | `node_busy_ns` | counter (`node`) | busy time per lane, ns |
//! | `dram_bytes` | counter | DRAM traffic after L3 discounts |

use crate::outcome::LoopOutcome;
use ilan_metrics::{Counter, Histogram, Registry};

/// Instruments for one simulated machine (see module docs). Clones alias
/// the same underlying series.
#[derive(Clone)]
pub struct SimMetrics {
    registry: Registry,
    loops: Counter,
    makespan_ns: Histogram,
    sched_overhead_ns: Histogram,
    migrations: Counter,
    dram_bytes: Counter,
}

impl SimMetrics {
    /// Instruments registered into a fresh registry.
    pub fn new() -> Self {
        Self::with_registry(Registry::new())
    }

    /// Instruments registered into `registry` — share one registry across
    /// layers to render a single exposition.
    pub fn with_registry(registry: Registry) -> Self {
        SimMetrics {
            loops: registry.counter("ilan_sim_loops", "Taskloop invocations simulated"),
            makespan_ns: registry.histogram("ilan_sim_makespan_ns", "Invocation makespan, ns"),
            sched_overhead_ns: registry.histogram(
                "ilan_sim_sched_overhead_ns",
                "Accumulated scheduler time per invocation, ns",
            ),
            migrations: registry.counter("ilan_sim_migrations", "Inter-node task migrations"),
            dram_bytes: registry.counter(
                "ilan_sim_dram_bytes",
                "DRAM traffic after L3 reuse discounts, bytes",
            ),
            registry,
        }
    }

    /// The underlying registry: snapshot it, delta it, render it.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The current OpenMetrics exposition.
    pub fn render(&self) -> String {
        self.registry.render()
    }

    /// Folds one invocation outcome into the series. The per-node lane
    /// counters are registered on first use per node id (registration is
    /// idempotent, so repeat invocations reuse the same series).
    pub fn record_outcome(&self, outcome: &LoopOutcome) {
        self.loops.inc();
        self.makespan_ns.record(outcome.makespan_ns.max(0.0) as u64);
        self.sched_overhead_ns
            .record(outcome.sched_overhead_ns.max(0.0) as u64);
        self.migrations.add(outcome.migrations as u64);
        self.dram_bytes.add(outcome.total_dram_bytes().max(0.0) as u64);
        for (i, node) in outcome.nodes.iter().enumerate() {
            if node.tasks == 0 && node.busy_ns == 0.0 {
                continue;
            }
            let label = i.to_string();
            let lane = |locality: &str| {
                self.registry.counter_with(
                    "ilan_sim_node_tasks",
                    "Chunks executed per simulated lane, by locality outcome",
                    &[("node", label.as_str()), ("locality", locality)],
                )
            };
            lane("local").add(node.local_tasks as u64);
            lane("remote").add((node.tasks - node.local_tasks) as u64);
            self.registry
                .counter_with(
                    "ilan_sim_node_busy_ns",
                    "Busy time per simulated lane, ns",
                    &[("node", label.as_str())],
                )
                .add(node.busy_ns.max(0.0) as u64);
        }
    }
}

impl Default for SimMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::NodeOutcome;
    use ilan_metrics::SampleValue;

    #[test]
    fn outcome_folds_into_lane_series() {
        let m = SimMetrics::new();
        let outcome = LoopOutcome {
            makespan_ns: 1_000.0,
            sched_overhead_ns: 50.0,
            nodes: vec![
                NodeOutcome {
                    tasks: 4,
                    busy_ns: 800.0,
                    ideal_ns: 700.0,
                    local_tasks: 3,
                    dram_bytes: 1_000.0,
                },
                NodeOutcome::default(), // idle lane: no series registered
            ],
            migrations: 2,
            threads: 8,
            trace: Vec::new(),
            events: ilan_trace::EventLog::default(),
        };
        m.record_outcome(&outcome);
        m.record_outcome(&outcome);
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter_total("ilan_sim_loops"), 2);
        assert_eq!(snap.counter_total("ilan_sim_migrations"), 4);
        assert_eq!(
            snap.get_with(
                "ilan_sim_node_tasks",
                &[("node", "0"), ("locality", "local")]
            ),
            Some(&SampleValue::Counter(6))
        );
        assert_eq!(
            snap.get_with(
                "ilan_sim_node_tasks",
                &[("node", "0"), ("locality", "remote")]
            ),
            Some(&SampleValue::Counter(2))
        );
        // The idle lane never registered a series.
        assert_eq!(
            snap.get_with("ilan_sim_node_busy_ns", &[("node", "1")]),
            None
        );
        assert_eq!(snap.histogram("ilan_sim_makespan_ns").unwrap().count, 2);
        assert!(m.render().ends_with("# EOF\n"));
    }
}
