//! Noise model: the sources of run-to-run variance.
//!
//! The paper attributes execution-time variance to frequency scaling and
//! "external system noise" outside the scheduler's control (§5.4, the BT
//! outlier). Both are modelled here, driven by a seeded RNG so every run is
//! reproducible from its seed:
//!
//! * **Frequency jitter** — each core's effective compute frequency for a run
//!   is drawn from a normal distribution around 1.0. This creates the mild,
//!   persistent performance asymmetry between nodes that ILAN's PTT detects
//!   when choosing the fastest node.
//! * **Outlier windows** — with a small per-invocation probability, one NUMA
//!   node is slowed by a large factor for the duration of one taskloop
//!   invocation, modelling an interfering external process or a thermal
//!   excursion. A single such event is what inflated ILAN's BT std-dev in the
//!   paper.

use rand::Rng;

/// Parameters of the noise model.
#[derive(Clone, Debug)]
pub struct NoiseParams {
    /// Standard deviation of per-core frequency factors (mean 1.0).
    pub freq_jitter_sd: f64,
    /// Probability that any given taskloop invocation experiences an outlier
    /// window.
    pub outlier_prob: f64,
    /// Multiplicative slowdown of the affected node during an outlier window
    /// (e.g. 0.5 ⇒ the node runs at half speed).
    pub outlier_factor: f64,
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams {
            freq_jitter_sd: 0.012,
            outlier_prob: 0.0008,
            outlier_factor: 0.45,
        }
    }
}

impl NoiseParams {
    /// No noise at all: fully deterministic performance.
    pub fn none() -> Self {
        NoiseParams {
            freq_jitter_sd: 0.0,
            outlier_prob: 0.0,
            outlier_factor: 1.0,
        }
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.freq_jitter_sd >= 0.0 && self.freq_jitter_sd < 0.5,
            "freq jitter sd out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.outlier_prob),
            "outlier probability must be in [0,1]"
        );
        assert!(
            self.outlier_factor > 0.0 && self.outlier_factor <= 1.0,
            "outlier factor must be in (0,1]"
        );
    }

    /// Draws per-core frequency factors for one run.
    pub(crate) fn draw_freqs<R: Rng>(&self, rng: &mut R, cores: usize) -> Vec<f64> {
        (0..cores)
            .map(|_| {
                if self.freq_jitter_sd == 0.0 {
                    1.0
                } else {
                    // Box–Muller, clamped to stay physical.
                    let u1: f64 = rng.random::<f64>().max(1e-12);
                    let u2: f64 = rng.random();
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (1.0 + z * self.freq_jitter_sd).clamp(0.7, 1.3)
                }
            })
            .collect()
    }

    /// Decides whether this invocation gets an outlier window and, if so,
    /// which node is affected.
    pub(crate) fn draw_outlier<R: Rng>(&self, rng: &mut R, nodes: usize) -> Option<usize> {
        if self.outlier_prob > 0.0 && rng.random::<f64>() < self.outlier_prob {
            Some(rng.random_range(0..nodes))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_deterministic() {
        let n = NoiseParams::none();
        let mut rng = StdRng::seed_from_u64(1);
        let f = n.draw_freqs(&mut rng, 8);
        assert!(f.iter().all(|&x| x == 1.0));
        assert_eq!(n.draw_outlier(&mut rng, 8), None);
    }

    #[test]
    fn jitter_is_centered_and_clamped() {
        let n = NoiseParams {
            freq_jitter_sd: 0.05,
            ..NoiseParams::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let f = n.draw_freqs(&mut rng, 10_000);
        let mean: f64 = f.iter().sum::<f64>() / f.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean={mean}");
        assert!(f.iter().all(|&x| (0.7..=1.3).contains(&x)));
    }

    #[test]
    fn outlier_rate_matches_probability() {
        let n = NoiseParams {
            outlier_prob: 0.25,
            ..NoiseParams::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000)
            .filter(|_| n.draw_outlier(&mut rng, 4).is_some())
            .count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn same_seed_same_draws() {
        let n = NoiseParams::default();
        let a = n.draw_freqs(&mut StdRng::seed_from_u64(9), 64);
        let b = n.draw_freqs(&mut StdRng::seed_from_u64(9), 64);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outlier probability")]
    fn validate_rejects_bad_prob() {
        let n = NoiseParams {
            outlier_prob: 1.5,
            ..NoiseParams::default()
        };
        n.validate();
    }
}
