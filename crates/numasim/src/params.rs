//! Machine performance parameters.
//!
//! [`MachineParams`] couples a [`Topology`] (structure) with the quantitative
//! knobs of the cost model: bandwidths, overload behaviour, and the costs of
//! runtime operations. Defaults are calibrated to the paper's EPYC 9354 node.

use crate::noise::NoiseParams;
use ilan_topology::Topology;

/// Quantitative description of a simulated machine.
#[derive(Clone, Debug)]
pub struct MachineParams {
    /// Structural description (sockets / nodes / CCDs / cores, distances).
    pub topology: Topology,
    /// Peak achievable DRAM bandwidth of one core's memory pipeline, in
    /// bytes per nanosecond (GB/s). Limits how fast a single task can stream
    /// even on an idle machine (bounded by MLP, not controller bandwidth).
    pub core_bw: f64,
    /// Per-NUMA-node memory-controller bandwidth in bytes per nanosecond.
    /// On the EPYC 9354 each NPS4 node owns 3 DDR5-4800 channels:
    /// roughly 80 GB/s usable.
    pub node_bw: f64,
    /// Aggregate inter-socket link bandwidth between a socket pair, bytes/ns.
    /// Four xGMI-3 links carry roughly 300 GB/s usable on this platform.
    pub link_bw: f64,
    /// Overload degradation coefficient β: when aggregate demand on a
    /// resource reaches `u > 1` times its bandwidth, delivered bandwidth drops
    /// to `bw / (1 + β·(u−1))`, modelling queueing delay and row-buffer
    /// conflicts beyond pure fair sharing. β = 0 gives ideal proportional
    /// sharing (no benefit from moldability); measured systems behave like
    /// β ≈ 0.5–0.8 once queueing and row-buffer thrash set in.
    pub overload_beta: f64,
    /// Cost in ns of one pop from a shared task pool, before the contention
    /// multiplier.
    pub pop_cost_ns: f64,
    /// Additional pop cost per worker sharing the pool (CAS retries,
    /// cache-line ping-pong on the pool head).
    pub pop_contention_ns: f64,
    /// Cost in ns of one inter-node batch steal (acquire remote pool lock,
    /// move task descriptors, cache misses on remote metadata).
    pub remote_steal_cost_ns: f64,
    /// Cost in ns charged to a worker each time it scans all pools and finds
    /// nothing runnable (a failed steal sweep).
    pub failed_steal_cost_ns: f64,
    /// Per-task creation/enqueue cost paid serially by the encountering
    /// thread when the taskloop is dispatched.
    pub task_create_ns: f64,
    /// Base cost of the end-of-loop barrier; total barrier cost is
    /// `barrier_base_ns · log2(active_threads)` charged once to the makespan.
    pub barrier_base_ns: f64,
    /// Per-pop cost of a static work-sharing slice (no shared pool, only a
    /// chunk-index increment — close to free).
    pub static_chunk_ns: f64,
    /// Row-buffer interference: each memory controller loses efficiency as
    /// the number of concurrent *streaming* flows it serves grows beyond
    /// [`stream_base`](Self::stream_base) — each extra stream multiplies the
    /// controller's congestion by `1 + stream_kappa`. Irregular gathers have
    /// no row locality to destroy and contribute (almost) nothing.
    pub stream_kappa: f64,
    /// Number of concurrent streams a controller interleaves without loss.
    pub stream_base: f64,
    /// Noise model (frequency jitter, outliers).
    pub noise: NoiseParams,
}

impl MachineParams {
    /// Parameters calibrated for the given topology, with EPYC-9354-like
    /// bandwidths and runtime costs.
    pub fn for_topology(topology: &Topology) -> Self {
        MachineParams {
            topology: topology.clone(),
            core_bw: 22.0,  // 22 GB/s single-core streaming
            node_bw: 80.0,  // 3×DDR5-4800 ≈ 80 GB/s usable per NPS4 node
            link_bw: 300.0, // aggregate xGMI between a socket pair (4 wide links)
            overload_beta: 0.7,
            pop_cost_ns: 60.0,
            pop_contention_ns: 14.0,
            remote_steal_cost_ns: 1_500.0,
            failed_steal_cost_ns: 400.0,
            task_create_ns: 110.0,
            barrier_base_ns: 350.0,
            static_chunk_ns: 12.0,
            stream_kappa: 0.05,
            stream_base: 4.0,
            noise: NoiseParams::default(),
        }
    }

    /// A noiseless copy (deterministic across seeds) — used by unit tests and
    /// by exploration-logic tests where reproducibility down to the nanosecond
    /// matters.
    pub fn noiseless(mut self) -> Self {
        self.noise = NoiseParams::none();
        self
    }

    /// Validates internal consistency; called by [`SimMachine::new`]
    /// (panics on nonsensical parameters, which indicate a programming error).
    ///
    /// [`SimMachine::new`]: crate::SimMachine::new
    pub(crate) fn validate(&self) {
        assert!(self.core_bw > 0.0, "core bandwidth must be positive");
        assert!(self.node_bw > 0.0, "node bandwidth must be positive");
        assert!(self.link_bw > 0.0, "link bandwidth must be positive");
        assert!(
            self.overload_beta >= 0.0,
            "overload beta must be non-negative"
        );
        assert!(self.pop_cost_ns >= 0.0);
        assert!(self.task_create_ns >= 0.0);
        assert!(
            self.stream_kappa >= 0.0,
            "stream kappa must be non-negative"
        );
        assert!(self.stream_base >= 0.0, "stream base must be non-negative");
        self.noise.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_topology::presets;

    #[test]
    fn defaults_are_valid() {
        let p = MachineParams::for_topology(&presets::epyc_9354_2s());
        p.validate();
        assert_eq!(p.topology.num_cores(), 64);
    }

    #[test]
    fn noiseless_strips_noise() {
        let p = MachineParams::for_topology(&presets::tiny_2x4()).noiseless();
        assert_eq!(p.noise.freq_jitter_sd, 0.0);
        assert_eq!(p.noise.outlier_prob, 0.0);
    }

    #[test]
    #[should_panic(expected = "core bandwidth")]
    fn rejects_zero_bandwidth() {
        let mut p = MachineParams::for_topology(&presets::tiny_2x4());
        p.core_bw = 0.0;
        p.validate();
    }
}
