//! Placement plans: how a taskloop's chunks are initially distributed.
//!
//! The plan is an *input* to the simulator; computing a good plan is the
//! scheduler's job (the `ilan` crate). Three shapes cover the paper's three
//! execution modes:
//!
//! * [`PlacementPlan::Flat`] — the LLVM default tasking baseline: every chunk
//!   enters one shared pool and any active worker may take any chunk.
//! * [`PlacementPlan::Hierarchical`] — ILAN's mode: chunks are pre-assigned to
//!   NUMA nodes (each node's chunks conceptually live in its primary thread's
//!   queue), the first `strict_count` of a node's chunks are NUMA-strict, the
//!   rest may be batch-stolen by a fully idle remote node.
//! * [`PlacementPlan::Static`] — OpenMP `for schedule(static)` work-sharing:
//!   each active worker owns a fixed contiguous slice; no stealing at all.

use ilan_topology::NodeId;

/// Chunks assigned to one NUMA node under a hierarchical plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeAssignment {
    /// The executing node.
    pub node: NodeId,
    /// Indices into the taskloop's `Vec<TaskSpec>`, in execution order.
    pub tasks: Vec<usize>,
    /// How many of `tasks` (from the front) are NUMA-strict: they may never
    /// leave this node. The tail (`tasks[strict_count..]`) is stealable by
    /// fully idle remote nodes when the steal policy is `full`. Setting
    /// `strict_count == tasks.len()` expresses the `strict` steal policy.
    pub strict_count: usize,
}

impl NodeAssignment {
    /// Validates the assignment shape.
    pub fn validate(&self) {
        assert!(
            self.strict_count <= self.tasks.len(),
            "strict_count exceeds task count"
        );
    }
}

/// Initial distribution of a taskloop's chunks over the machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementPlan {
    /// One shared pool; all chunks in index order; any worker may pop.
    Flat,
    /// Per-node pools with NUMA-strict fractions (ILAN §3.3).
    Hierarchical {
        /// One entry per *active* node. Nodes absent from the plan run
        /// nothing (their cores, if active, may still steal under `full`).
        assignments: Vec<NodeAssignment>,
    },
    /// Blocked static partition over the active workers; no pools, no steals.
    Static,
}

impl PlacementPlan {
    /// Convenience constructor for the flat baseline.
    pub fn flat() -> Self {
        PlacementPlan::Flat
    }

    /// Convenience constructor for static work-sharing.
    pub fn worksharing() -> Self {
        PlacementPlan::Static
    }

    /// Validates that a hierarchical plan covers `num_tasks` chunks exactly
    /// once and that strict counts are in range. Flat/Static plans are always
    /// valid for any task count.
    pub fn validate(&self, num_tasks: usize) {
        if let PlacementPlan::Hierarchical { assignments } = self {
            let mut seen = vec![false; num_tasks];
            for a in assignments {
                a.validate();
                for &t in &a.tasks {
                    assert!(t < num_tasks, "task index {t} out of range");
                    assert!(!seen[t], "task index {t} assigned twice");
                    seen[t] = true;
                }
            }
            let covered = seen.iter().filter(|&&s| s).count();
            assert_eq!(
                covered, num_tasks,
                "hierarchical plan covers {covered} of {num_tasks} tasks"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_exact_cover() {
        let plan = PlacementPlan::Hierarchical {
            assignments: vec![
                NodeAssignment {
                    node: NodeId::new(0),
                    tasks: vec![0, 1, 2],
                    strict_count: 2,
                },
                NodeAssignment {
                    node: NodeId::new(1),
                    tasks: vec![3, 4],
                    strict_count: 2,
                },
            ],
        };
        plan.validate(5);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn validate_rejects_double_assignment() {
        let plan = PlacementPlan::Hierarchical {
            assignments: vec![NodeAssignment {
                node: NodeId::new(0),
                tasks: vec![0, 0],
                strict_count: 0,
            }],
        };
        plan.validate(1);
    }

    #[test]
    #[should_panic(expected = "covers 1 of 2")]
    fn validate_rejects_partial_cover() {
        let plan = PlacementPlan::Hierarchical {
            assignments: vec![NodeAssignment {
                node: NodeId::new(0),
                tasks: vec![0],
                strict_count: 0,
            }],
        };
        plan.validate(2);
    }

    #[test]
    #[should_panic(expected = "strict_count")]
    fn validate_rejects_bad_strict_count() {
        NodeAssignment {
            node: NodeId::new(0),
            tasks: vec![0],
            strict_count: 2,
        }
        .validate();
    }

    #[test]
    fn flat_and_static_always_valid() {
        PlacementPlan::flat().validate(0);
        PlacementPlan::flat().validate(100);
        PlacementPlan::worksharing().validate(7);
    }
}
