//! The shared cost model: traffic shaping, congestion and chunk durations.
//!
//! Every engine in this crate prices a running chunk the same way:
//!
//! 1. its DRAM traffic is split into per-node rows `(node, fraction,
//!    latency_factor)` from the task's [`Locality`](crate::Locality);
//! 2. all concurrently running chunks' desired bandwidths are aggregated
//!    into a [`CongestionField`] (per-controller demand, per-socket-pair
//!    link demand, per-controller streaming-flow count);
//! 3. each chunk's memory time is inflated by the field's congestion
//!    factors along its traffic rows.
//!
//! Keeping these three steps here means the single-loop engine and the
//! multi-lane colocation engine by construction share one interference
//! channel — a chunk slows down identically whether its competitor belongs
//! to the same taskloop or to another tenant's.

use crate::params::MachineParams;
use crate::task::TaskSpec;
use ilan_topology::{NodeId, Topology};

/// Builds the per-node traffic rows `(node, fraction, latency_factor)` for a
/// chunk executing on `exec_node`. The latency factor damps the topology
/// distance by the access pattern's latency sensitivity (prefetchers hide
/// part of the latency for streaming access).
pub(crate) fn traffic_rows(
    topo: &Topology,
    spec: &TaskSpec,
    exec_node: NodeId,
) -> Vec<(usize, f64, f64)> {
    let sens = spec.locality.latency_sensitivity();
    let mut traffic = Vec::with_capacity(4);
    for k in 0..topo.num_nodes() {
        let frac = spec
            .locality
            .traffic_fraction(spec.home_node, spec.data_mask, NodeId::new(k));
        if frac > 0.0 {
            let lat =
                1.0 + sens * (topo.distances().latency_factor(exec_node, NodeId::new(k)) - 1.0);
            traffic.push((k, frac, lat));
        }
    }
    traffic
}

/// The chunk's uncontended DRAM bandwidth demand in bytes/ns: its effective
/// bytes streamed over its ideal duration.
pub(crate) fn desired_bandwidth(spec: &TaskSpec, exec_node: NodeId, core_bw: f64) -> f64 {
    let ideal = spec.ideal_ns(core_bw);
    if ideal > 0.0 {
        spec.effective_bytes(exec_node) / ideal
    } else {
        0.0
    }
}

/// Aggregated bandwidth demand and the congestion factors derived from it.
///
/// Usage per event: [`clear`](Self::clear), one [`add_flow`](Self::add_flow)
/// per running chunk (across *all* loops sharing the machine), then
/// [`finalize`](Self::finalize); afterwards [`penalty`](Self::penalty) prices
/// any chunk's traffic against the field.
pub(crate) struct CongestionField {
    /// Per-node DRAM demand, bytes/ns.
    demand: Vec<f64>,
    /// Per socket-pair link demand (row-major `s × s`, only `i<j` entries
    /// used).
    link_demand: Vec<f64>,
    /// Per-node streaming-flow weight (row-buffer interference).
    streams: Vec<f64>,
    /// Per-node congestion factor (valid after `finalize`).
    node_cong: Vec<f64>,
    /// Per socket-pair link congestion factor (valid after `finalize`).
    link_cong: Vec<f64>,
    num_sockets: usize,
}

impl CongestionField {
    pub(crate) fn new(num_nodes: usize, num_sockets: usize) -> Self {
        CongestionField {
            demand: vec![0.0; num_nodes],
            link_demand: vec![0.0; num_sockets * num_sockets],
            streams: vec![0.0; num_nodes],
            node_cong: vec![1.0; num_nodes],
            link_cong: vec![1.0; num_sockets * num_sockets],
            num_sockets,
        }
    }

    pub(crate) fn clear(&mut self) {
        self.demand.iter_mut().for_each(|d| *d = 0.0);
        self.link_demand.iter_mut().for_each(|d| *d = 0.0);
        self.streams.iter_mut().for_each(|d| *d = 0.0);
    }

    /// Adds one running chunk's demand. `scale` discounts a chunk that holds
    /// only part of a core (timeshared execution under oversubscription
    /// issues proportionally less traffic); single-loop engines pass 1.0.
    pub(crate) fn add_flow(
        &mut self,
        topo: &Topology,
        spec: &TaskSpec,
        exec_node: usize,
        traffic: &[(usize, f64, f64)],
        desired_bw: f64,
        scale: f64,
    ) {
        let stream_weight = match spec.locality {
            crate::task::Locality::Chunked => 1.0,
            crate::task::Locality::Scattered { spread } => 1.0 - spread,
        };
        self.streams[spec.home_node.index()] += stream_weight * scale;
        let ns = self.num_sockets;
        let s_from = topo.socket_of_node(NodeId::new(exec_node)).index();
        for &(k, frac, _) in traffic {
            let bw = desired_bw * frac * scale;
            self.demand[k] += bw;
            let s_to = topo.socket_of_node(NodeId::new(k)).index();
            if s_from != s_to {
                let (a, b) = (s_from.min(s_to), s_from.max(s_to));
                self.link_demand[a * ns + b] += bw;
            }
        }
    }

    /// Converts accumulated demand into congestion factors.
    pub(crate) fn finalize(&mut self, params: &MachineParams) {
        let beta = params.overload_beta;
        let cong = |demand: f64, bw: f64| -> f64 {
            let util = demand / bw;
            if util <= 1.0 {
                1.0
            } else {
                util * (1.0 + beta * (util - 1.0))
            }
        };
        let kappa = params.stream_kappa;
        let base = params.stream_base;
        for (out, (&d, &st)) in self
            .node_cong
            .iter_mut()
            .zip(self.demand.iter().zip(&self.streams))
        {
            let stream_factor = 1.0 + kappa * (st - base).max(0.0);
            *out = cong(d, params.node_bw) * stream_factor;
        }
        for (out, &d) in self.link_cong.iter_mut().zip(&self.link_demand) {
            *out = cong(d, params.link_bw);
        }
    }

    /// The congestion-weighted latency penalty of a chunk's traffic when
    /// executed from `exec_node`. Cross-socket rows pay the worse of the
    /// target controller's and the link's congestion.
    pub(crate) fn penalty(
        &self,
        topo: &Topology,
        exec_node: usize,
        traffic: &[(usize, f64, f64)],
    ) -> f64 {
        let ns = self.num_sockets;
        let s_from = topo.socket_of_node(NodeId::new(exec_node)).index();
        let mut penalty = 0.0;
        for &(k, frac, lat) in traffic {
            let s_to = topo.socket_of_node(NodeId::new(k)).index();
            let mut c = self.node_cong[k];
            if s_from != s_to {
                let (a, b) = (s_from.min(s_to), s_from.max(s_to));
                c = c.max(self.link_cong[a * ns + b]);
            }
            penalty += frac * lat * c;
        }
        penalty
    }
}

/// The chunk's wall duration on a core at frequency factor `freq` under the
/// given congestion penalty: compute plus memory streamed at the single-core
/// bandwidth, inflated by the penalty (which never accelerates, hence the
/// clamp at 1).
pub(crate) fn chunk_duration(
    params: &MachineParams,
    spec: &TaskSpec,
    exec_node: NodeId,
    freq: f64,
    penalty: f64,
) -> f64 {
    let compute = spec.compute_ns / freq;
    let mem = spec.effective_bytes(exec_node) / params.core_bw * penalty.max(1.0);
    compute + mem
}
