//! Task chunk descriptions consumed by the simulator.

use ilan_topology::{NodeId, NodeMask};

/// How a chunk's memory accesses are distributed across NUMA nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Locality {
    /// All traffic goes to the chunk's home node — contiguous, blocked data
    /// (structured grids, dense rows). Running the chunk on its home node
    /// makes every access local.
    Chunked,
    /// A fraction `spread` of the traffic is distributed uniformly over all
    /// nodes in [`TaskSpec::data_mask`] (irregular gathers: CG's sparse
    /// matrix–vector products, FT's transposes); the remaining `1 − spread`
    /// goes to the home node. `spread = 0` degenerates to [`Chunked`];
    /// `spread = 1` means fully scattered access with no local preference.
    ///
    /// [`Chunked`]: Locality::Chunked
    Scattered {
        /// Fraction of traffic scattered uniformly over `data_mask`.
        spread: f64,
    },
}

impl Locality {
    /// Fraction of traffic that targets node `to`, for a chunk homed at
    /// `home` with data distributed over `data_mask`.
    pub fn traffic_fraction(self, home: NodeId, data_mask: NodeMask, to: NodeId) -> f64 {
        match self {
            Locality::Chunked => {
                if to == home {
                    1.0
                } else {
                    0.0
                }
            }
            Locality::Scattered { spread } => {
                let n = data_mask.count().max(1) as f64;
                let scattered = if data_mask.contains(to) {
                    spread / n
                } else {
                    0.0
                };
                let local = if to == home { 1.0 - spread } else { 0.0 };
                scattered + local
            }
        }
    }

    /// How strongly latency (as opposed to bandwidth) determines this access
    /// pattern's remote penalty. Scattered (pointer-chasing-like) access is
    /// latency-sensitive because prefetchers cannot hide the misses;
    /// contiguous streaming is mostly bandwidth-bound.
    pub fn latency_sensitivity(self) -> f64 {
        match self {
            // Streaming access: prefetchers hide most of the extra latency.
            Locality::Chunked => 0.18,
            // Gathers expose progressively more of the raw latency.
            Locality::Scattered { spread } => 0.22 + 0.38 * spread,
        }
    }
}

/// One task: a chunk of a taskloop's iteration space.
///
/// All quantities are *per chunk*. `compute_ns` is the chunk's pure-compute
/// time at nominal frequency; `mem_bytes` is the DRAM traffic it generates
/// with a cold cache. The effective execution time emerges from the machine
/// state (contention, distance, cache reuse) at simulation time.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Pure compute time at nominal frequency, in ns.
    pub compute_ns: f64,
    /// DRAM traffic with a cold cache, in bytes.
    pub mem_bytes: f64,
    /// The NUMA node holding the chunk's (majority of) data, as established
    /// by first-touch initialisation.
    pub home_node: NodeId,
    /// Access-pattern model.
    pub locality: Locality,
    /// Nodes over which the enclosing data structure is distributed.
    pub data_mask: NodeMask,
    /// Fraction of `mem_bytes` served from L3 instead of DRAM when the chunk
    /// executes on `home_node` *and* the per-node working set fits
    /// ([`fits_l3`](Self::fits_l3)). Models cross-timestep reuse under
    /// deterministic placement.
    pub cache_reuse: f64,
    /// Whether the per-node working set of the enclosing loop fits in one
    /// node's aggregate L3 (precomputed by the workload).
    pub fits_l3: bool,
}

impl TaskSpec {
    /// The chunk's ideal (uncontended, all-local, cold-cache) duration on a
    /// nominal-frequency core: compute plus memory streamed at the single-core
    /// bandwidth `core_bw` (bytes/ns).
    pub fn ideal_ns(&self, core_bw: f64) -> f64 {
        self.compute_ns + self.mem_bytes / core_bw
    }

    /// Effective DRAM bytes after the L3 reuse discount, given the node the
    /// chunk actually executes on.
    pub fn effective_bytes(&self, exec_node: NodeId) -> f64 {
        if exec_node == self.home_node && self.fits_l3 {
            self.mem_bytes * (1.0 - self.cache_reuse)
        } else {
            self.mem_bytes
        }
    }

    /// Panics if the spec contains non-physical values (programming error in
    /// a workload generator).
    pub fn validate(&self) {
        assert!(
            self.compute_ns.is_finite() && self.compute_ns >= 0.0,
            "compute_ns must be finite and non-negative"
        );
        assert!(
            self.mem_bytes.is_finite() && self.mem_bytes >= 0.0,
            "mem_bytes must be finite and non-negative"
        );
        assert!(
            self.compute_ns > 0.0 || self.mem_bytes > 0.0,
            "task must have some work"
        );
        assert!(
            (0.0..=1.0).contains(&self.cache_reuse),
            "cache_reuse must be in [0,1]"
        );
        if let Locality::Scattered { spread } = self.locality {
            assert!((0.0..=1.0).contains(&spread), "spread must be in [0,1]");
            assert!(
                !self.data_mask.is_empty(),
                "scattered task needs a data mask"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(locality: Locality) -> TaskSpec {
        TaskSpec {
            compute_ns: 1000.0,
            mem_bytes: 22_000.0,
            home_node: NodeId::new(1),
            locality,
            data_mask: NodeMask::first_n(4),
            cache_reuse: 0.5,
            fits_l3: true,
        }
    }

    #[test]
    fn chunked_traffic_all_home() {
        let s = spec(Locality::Chunked);
        let f = |to| {
            s.locality
                .traffic_fraction(s.home_node, s.data_mask, NodeId::new(to))
        };
        assert_eq!(f(1), 1.0);
        assert_eq!(f(0), 0.0);
        assert_eq!(f(3), 0.0);
    }

    #[test]
    fn scattered_traffic_sums_to_one() {
        let s = spec(Locality::Scattered { spread: 0.6 });
        let total: f64 = (0..4)
            .map(|to| {
                s.locality
                    .traffic_fraction(s.home_node, s.data_mask, NodeId::new(to))
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Home gets the non-scattered part plus its uniform share.
        let home = s
            .locality
            .traffic_fraction(s.home_node, s.data_mask, NodeId::new(1));
        assert!((home - (0.4 + 0.15)).abs() < 1e-12);
    }

    #[test]
    fn scattered_zero_equals_chunked() {
        let s = spec(Locality::Scattered { spread: 0.0 });
        for to in 0..4 {
            let a = s
                .locality
                .traffic_fraction(s.home_node, s.data_mask, NodeId::new(to));
            let b = Locality::Chunked.traffic_fraction(s.home_node, s.data_mask, NodeId::new(to));
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn latency_sensitivity_grows_with_spread() {
        assert!(
            Locality::Scattered { spread: 1.0 }.latency_sensitivity()
                > Locality::Scattered { spread: 0.2 }.latency_sensitivity()
        );
        assert!(
            Locality::Chunked.latency_sensitivity()
                < Locality::Scattered { spread: 0.5 }.latency_sensitivity()
        );
    }

    #[test]
    fn ideal_time_includes_memory() {
        let s = spec(Locality::Chunked);
        assert!((s.ideal_ns(22.0) - (1000.0 + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn cache_discount_applies_only_at_home() {
        let s = spec(Locality::Chunked);
        assert_eq!(s.effective_bytes(NodeId::new(1)), 11_000.0);
        assert_eq!(s.effective_bytes(NodeId::new(0)), 22_000.0);
        let mut s2 = s.clone();
        s2.fits_l3 = false;
        assert_eq!(s2.effective_bytes(NodeId::new(1)), 22_000.0);
    }

    #[test]
    #[should_panic(expected = "some work")]
    fn validate_rejects_empty_task() {
        let mut s = spec(Locality::Chunked);
        s.compute_ns = 0.0;
        s.mem_bytes = 0.0;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "data mask")]
    fn validate_rejects_scattered_without_mask() {
        let mut s = spec(Locality::Scattered { spread: 0.5 });
        s.data_mask = NodeMask::EMPTY;
        s.validate();
    }
}
