//! Focused tests of the memory-system model's individual mechanisms.
//!
//! Each test isolates one term of the cost model by constructing task sets
//! where only that term differs, so a regression in one mechanism cannot
//! hide behind another.

use ilan_numasim::{
    Locality, MachineParams, NodeAssignment, NoiseParams, PlacementPlan, SimMachine, TaskSpec,
};
use ilan_topology::{presets, CpuSet, NodeId, NodeMask};

fn machine(params: MachineParams, seed: u64) -> SimMachine {
    SimMachine::new(params, seed)
}

fn chunked_task(home: usize, compute: f64, bytes: f64) -> TaskSpec {
    TaskSpec {
        compute_ns: compute,
        mem_bytes: bytes,
        home_node: NodeId::new(home),
        locality: Locality::Chunked,
        data_mask: NodeMask::first_n(8),
        cache_reuse: 0.0,
        fits_l3: false,
    }
}

/// All work on one node's cores with local data vs the same cores with all
/// data remote (cross-socket): the remote run must be slower by roughly the
/// latency factor on the memory share.
#[test]
fn distance_latency_penalty() {
    let topo = presets::epyc_9354_2s();
    let params = MachineParams::for_topology(&topo).noiseless();
    let cores = topo.cpuset_of_mask(NodeMask::single(NodeId::new(0)));
    let plan = PlacementPlan::Hierarchical {
        assignments: vec![NodeAssignment {
            node: NodeId::new(0),
            tasks: (0..32).collect(),
            strict_count: 32,
        }],
    };
    // Local: homes on node 0. Remote: homes on node 7 (other socket).
    let local: Vec<TaskSpec> = (0..32)
        .map(|_| chunked_task(0, 10_000.0, 400_000.0))
        .collect();
    let remote: Vec<TaskSpec> = (0..32)
        .map(|_| chunked_task(7, 10_000.0, 400_000.0))
        .collect();
    let t_local = machine(params.clone(), 1)
        .run_taskloop(&cores, &plan, &local)
        .makespan_ns;
    let t_remote = machine(params, 1)
        .run_taskloop(&cores, &plan, &remote)
        .makespan_ns;
    assert!(
        t_remote > 1.1 * t_local,
        "cross-socket access must cost: local {t_local} remote {t_remote}"
    );
    assert!(
        t_remote < 3.0 * t_local,
        "prefetch damping must bound the penalty: {t_remote} vs {t_local}"
    );
}

/// The L3 reuse discount applies only at home with a fitting footprint.
#[test]
fn cache_reuse_discount() {
    let topo = presets::epyc_9354_2s();
    let params = MachineParams::for_topology(&topo).noiseless();
    let cores = topo.cpuset_of_mask(NodeMask::single(NodeId::new(0)));
    let plan = PlacementPlan::Hierarchical {
        assignments: vec![NodeAssignment {
            node: NodeId::new(0),
            tasks: (0..16).collect(),
            strict_count: 16,
        }],
    };
    let make = |reuse: f64, fits: bool| -> Vec<TaskSpec> {
        (0..16)
            .map(|_| TaskSpec {
                cache_reuse: reuse,
                fits_l3: fits,
                ..chunked_task(0, 5_000.0, 600_000.0)
            })
            .collect()
    };
    let cold = machine(params.clone(), 1)
        .run_taskloop(&cores, &plan, &make(0.0, true))
        .makespan_ns;
    let warm = machine(params.clone(), 1)
        .run_taskloop(&cores, &plan, &make(0.5, true))
        .makespan_ns;
    let no_fit = machine(params, 1)
        .run_taskloop(&cores, &plan, &make(0.5, false))
        .makespan_ns;
    assert!(warm < cold, "reuse must speed up: {warm} vs {cold}");
    assert!(
        (no_fit - cold).abs() < 1e-3 * cold,
        "reuse without fit must not apply: {no_fit} vs {cold}"
    );
}

/// Stream-concurrency penalty: many concurrent streaming flows into one
/// controller are slower than the same bytes moved by few flows.
#[test]
fn stream_concurrency_penalty() {
    let topo = presets::epyc_9354_2s();
    let mut params = MachineParams::for_topology(&topo).noiseless();
    params.stream_kappa = 0.10; // exaggerate for a crisp signal
    let tasks: Vec<TaskSpec> = (0..8)
        .map(|_| chunked_task(0, 1_000.0, 500_000.0))
        .collect();
    let plan = PlacementPlan::Hierarchical {
        assignments: vec![NodeAssignment {
            node: NodeId::new(0),
            tasks: (0..8).collect(),
            strict_count: 8,
        }],
    };
    // 8 concurrent streams (all node-0 cores) vs 2 at a time (2 cores).
    let all = topo.cpuset_of_mask(NodeMask::single(NodeId::new(0)));
    let mut two = CpuSet::new();
    two.insert(ilan_topology::CoreId::new(0));
    two.insert(ilan_topology::CoreId::new(1));
    let busy8 = machine(params.clone(), 1)
        .run_taskloop(&all, &plan, &tasks)
        .total_busy_ns();
    let busy2 = machine(params, 1)
        .run_taskloop(&two, &plan, &tasks)
        .total_busy_ns();
    // Same total bytes; with 8 concurrent flows each chunk runs slower, so
    // aggregate busy time is strictly larger.
    assert!(
        busy8 > 1.1 * busy2,
        "8 streams must thrash more than 2: {busy8} vs {busy2}"
    );
}

/// Scattered access pays no stream penalty (no row locality to destroy):
/// with a generous kappa, chunked traffic slows while scattered barely moves.
#[test]
fn scattered_traffic_is_stream_exempt() {
    let topo = presets::epyc_9354_2s();
    let base = MachineParams::for_topology(&topo).noiseless();
    let mut punishing = base.clone();
    punishing.stream_kappa = 0.25;

    let cores = topo.cpuset_of_mask(topo.all_nodes());
    let chunked: Vec<TaskSpec> = (0..64)
        .map(|i| chunked_task(i / 8, 1_000.0, 400_000.0))
        .collect();
    let scattered: Vec<TaskSpec> = (0..64)
        .map(|i| TaskSpec {
            locality: Locality::Scattered { spread: 1.0 },
            ..chunked_task(i / 8, 1_000.0, 400_000.0)
        })
        .collect();
    let ws = PlacementPlan::Static;

    let slowdown = |tasks: &[TaskSpec]| {
        let t0 = machine(base.clone(), 1)
            .run_taskloop(&cores, &ws, tasks)
            .makespan_ns;
        let t1 = machine(punishing.clone(), 1)
            .run_taskloop(&cores, &ws, tasks)
            .makespan_ns;
        t1 / t0
    };
    let chunked_slowdown = slowdown(&chunked);
    let scattered_slowdown = slowdown(&scattered);
    assert!(
        chunked_slowdown > 1.05,
        "kappa must bite streaming traffic: {chunked_slowdown}"
    );
    assert!(
        scattered_slowdown < chunked_slowdown,
        "gathers must be exempt: {scattered_slowdown} vs {chunked_slowdown}"
    );
}

/// An outlier window slows the whole invocation on the affected node.
#[test]
fn outlier_window_slows_a_node() {
    let topo = presets::tiny_2x4();
    let mut params = MachineParams::for_topology(&topo);
    // Force an outlier on every invocation.
    params.noise = NoiseParams {
        freq_jitter_sd: 0.0,
        outlier_prob: 1.0,
        outlier_factor: 0.5,
    };
    let clean = params.clone().noiseless();

    let tasks: Vec<TaskSpec> = (0..16)
        .map(|i| TaskSpec {
            compute_ns: 100_000.0,
            mem_bytes: 0.1,
            home_node: NodeId::new(i / 8),
            locality: Locality::Chunked,
            data_mask: NodeMask::first_n(2),
            cache_reuse: 0.0,
            fits_l3: false,
        })
        .collect();
    let cores = topo.cpuset_of_mask(topo.all_nodes());
    let t_clean = machine(clean, 3)
        .run_taskloop(&cores, &PlacementPlan::worksharing(), &tasks)
        .makespan_ns;
    let t_outlier = machine(params, 3)
        .run_taskloop(&cores, &PlacementPlan::worksharing(), &tasks)
        .makespan_ns;
    // Half-speed node with static slices ⇒ makespan roughly doubles.
    assert!(
        t_outlier > 1.5 * t_clean,
        "outlier must slow the run: {t_outlier} vs {t_clean}"
    );
}

/// Idle-tail accounting: a deliberately imbalanced static split produces
/// large accumulated overhead (parked workers spinning), while a balanced
/// one does not.
#[test]
fn idle_tails_are_charged_as_overhead() {
    let topo = presets::tiny_2x4();
    let params = MachineParams::for_topology(&topo).noiseless();
    let cores = topo.cpuset_of_mask(topo.all_nodes());
    let balanced: Vec<TaskSpec> = (0..8)
        .map(|i| chunked_task(i / 4, 500_000.0, 0.1))
        .collect();
    let mut imbalanced = balanced.clone();
    imbalanced[0].compute_ns = 5_000_000.0; // one 10× chunk
    let ovh_bal = machine(params.clone(), 1)
        .run_taskloop(&cores, &PlacementPlan::worksharing(), &balanced)
        .sched_overhead_ns;
    let ovh_imb = machine(params, 1)
        .run_taskloop(&cores, &PlacementPlan::worksharing(), &imbalanced)
        .sched_overhead_ns;
    assert!(
        ovh_imb > 5.0 * ovh_bal.max(1.0),
        "seven workers idling behind one straggler must dominate overhead: \
         {ovh_imb} vs {ovh_bal}"
    );
}

/// Link congestion: saturating cross-socket traffic is slower than the same
/// traffic within sockets.
#[test]
fn link_congestion_costs() {
    let topo = presets::epyc_9354_2s();
    let params = MachineParams::for_topology(&topo).noiseless();
    // All 64 cores; data homed so that execution is either aligned (local)
    // or fully cross-socket (socket 0 cores read socket 1 homes and vice
    // versa — maximal link pressure).
    let cores = topo.cpuset_of_mask(topo.all_nodes());
    let aligned: Vec<TaskSpec> = (0..64)
        .map(|i| chunked_task(i / 8, 2_000.0, 1_500_000.0))
        .collect();
    let crossed: Vec<TaskSpec> = (0..64)
        .map(|i| chunked_task((i / 8 + 4) % 8, 2_000.0, 1_500_000.0))
        .collect();
    let ws = PlacementPlan::Static;
    let t_aligned = machine(params.clone(), 1)
        .run_taskloop(&cores, &ws, &aligned)
        .makespan_ns;
    let t_crossed = machine(params, 1)
        .run_taskloop(&cores, &ws, &crossed)
        .makespan_ns;
    assert!(
        t_crossed > 1.2 * t_aligned,
        "saturated xGMI must cost: {t_crossed} vs {t_aligned}"
    );
}
