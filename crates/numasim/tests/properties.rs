//! Property-based tests of the simulator's physical invariants.

use ilan_numasim::{Locality, MachineParams, NodeAssignment, PlacementPlan, SimMachine, TaskSpec};
use ilan_topology::{presets, NodeId, NodeMask};
use proptest::prelude::*;

fn arb_tasks(max: usize) -> impl Strategy<Value = Vec<TaskSpec>> {
    proptest::collection::vec(
        (
            1_000.0f64..200_000.0, // compute
            0.0f64..1_000_000.0,   // bytes
            0usize..2,             // home node (tiny_2x4 has 2)
            0.0f64..=1.0,          // spread
            0.0f64..=0.9,          // reuse
            any::<bool>(),         // fits
        )
            .prop_map(|(c, m, home, spread, reuse, fits)| TaskSpec {
                compute_ns: c,
                mem_bytes: m,
                home_node: NodeId::new(home),
                locality: if spread < 0.05 {
                    Locality::Chunked
                } else {
                    Locality::Scattered { spread }
                },
                data_mask: NodeMask::first_n(2),
                cache_reuse: reuse,
                fits_l3: fits,
            }),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work conservation and causality for arbitrary task sets under the
    /// flat plan: every task runs once, busy time fits in workers × makespan,
    /// and busy time is at least the aggregate ideal time (all penalties are
    /// ≥ 1).
    #[test]
    fn conservation_flat(tasks in arb_tasks(80), seed in 0u64..1000) {
        let topo = presets::tiny_2x4();
        let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), seed);
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let out = m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks);
        prop_assert_eq!(out.tasks_executed(), tasks.len());
        prop_assert!(out.makespan_ns.is_finite());
        prop_assert!(out.total_busy_ns() <= 8.0 * out.makespan_ns + 1e-3);
        // Lower bound: every chunk takes at least its compute plus its
        // *reuse-discounted* memory time (the only mechanism that can beat
        // the cold-cache ideal is the L3 reuse discount).
        let floor: f64 = tasks
            .iter()
            .map(|t| {
                let min_bytes = if t.fits_l3 {
                    t.mem_bytes * (1.0 - t.cache_reuse)
                } else {
                    t.mem_bytes
                };
                t.compute_ns + min_bytes / 22.0
            })
            .sum();
        prop_assert!(
            out.total_busy_ns() + 1e-6 >= floor * 0.999,
            "busy {} below floor {}",
            out.total_busy_ns(),
            floor
        );
        // Makespan is bounded below by the critical path of one chunk
        // (reuse-discounted, as above).
        let longest = tasks
            .iter()
            .map(|t| {
                let min_bytes = if t.fits_l3 {
                    t.mem_bytes * (1.0 - t.cache_reuse)
                } else {
                    t.mem_bytes
                };
                t.compute_ns + min_bytes / 22.0
            })
            .fold(0.0, f64::max);
        prop_assert!(out.makespan_ns + 1e-6 >= longest * 0.999);
    }

    /// Under a strict hierarchical plan, chunks never leave their node: the
    /// per-node task counts equal the plan exactly and migrations are zero.
    #[test]
    fn strict_plan_is_respected(tasks in arb_tasks(60), split in 0usize..=100) {
        let topo = presets::tiny_2x4();
        let n = tasks.len();
        let cut = n * split / 100;
        let plan = PlacementPlan::Hierarchical {
            assignments: vec![
                NodeAssignment {
                    node: NodeId::new(0),
                    tasks: (0..cut).collect(),
                    strict_count: cut,
                },
                NodeAssignment {
                    node: NodeId::new(1),
                    tasks: (cut..n).collect(),
                    strict_count: n - cut,
                },
            ],
        };
        let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 1);
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let out = m.run_taskloop(&cores, &plan, &tasks);
        prop_assert_eq!(out.migrations, 0);
        prop_assert_eq!(out.nodes[0].tasks, cut);
        prop_assert_eq!(out.nodes[1].tasks, n - cut);
    }

    /// Determinism: the same seed replays the exact makespan; noiseless
    /// hierarchical runs are seed-independent.
    #[test]
    fn determinism(tasks in arb_tasks(40), seed in 0u64..100) {
        let topo = presets::tiny_2x4();
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let run = |s: u64| {
            let mut m = SimMachine::new(MachineParams::for_topology(&topo), s);
            m.run_taskloop(&cores, &PlacementPlan::flat(), &tasks).makespan_ns
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Adding compute work never speeds a loop up (monotonicity).
    #[test]
    fn monotone_in_work(tasks in arb_tasks(30), factor in 1.1f64..3.0) {
        let topo = presets::tiny_2x4();
        let cores = topo.cpuset_of_mask(topo.all_nodes());
        let heavier: Vec<TaskSpec> = tasks
            .iter()
            .map(|t| TaskSpec {
                compute_ns: t.compute_ns * factor,
                ..t.clone()
            })
            .collect();
        let mut m1 = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 0);
        let t1 = m1.run_taskloop(&cores, &PlacementPlan::worksharing(), &tasks).makespan_ns;
        let mut m2 = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 0);
        let t2 = m2.run_taskloop(&cores, &PlacementPlan::worksharing(), &heavier).makespan_ns;
        prop_assert!(t2 >= t1 - 1e-6, "heavier work finished earlier: {t1} vs {t2}");
    }

    /// The static plan always splits into contiguous per-worker slices whose
    /// makespan at 1 worker equals the serial sum (plus fixed overheads).
    #[test]
    fn single_worker_is_serial(tasks in arb_tasks(25)) {
        let topo = presets::tiny_2x4();
        let mut cores = ilan_topology::CpuSet::new();
        cores.insert(ilan_topology::CoreId::new(0));
        let mut m = SimMachine::new(MachineParams::for_topology(&topo).noiseless(), 0);
        let out = m.run_taskloop(&cores, &PlacementPlan::worksharing(), &tasks);
        // One worker executes everything; busy time ≈ makespan − overheads.
        prop_assert_eq!(out.tasks_executed(), tasks.len());
        prop_assert!(out.nodes[0].busy_ns <= out.makespan_ns);
        prop_assert!(out.nodes[0].busy_ns >= 0.9 * (out.makespan_ns - out.sched_overhead_ns) - 1.0);
    }
}
