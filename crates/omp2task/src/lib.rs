//! `omp for` → `omp taskloop` source conversion.
//!
//! The ILAN paper's benchmarks are data-parallel codes written with OpenMP
//! work-sharing loops; to evaluate task scheduling, the authors "developed a
//! simple tool to convert `omp for` constructs into `omp taskloop`, used
//! solely as an experimental aid" (§1). This crate is that tool: a
//! line-oriented pragma rewriter for C/C++ sources.
//!
//! Conversion rules:
//!
//! * `#pragma omp parallel for ⟨clauses⟩` becomes the three-pragma taskloop
//!   idiom — the team is kept, one thread generates the tasks:
//!   ```c
//!   #pragma omp parallel ⟨parallel clauses⟩
//!   #pragma omp single
//!   #pragma omp taskloop ⟨loop clauses⟩
//!   ```
//! * a bare `#pragma omp for ⟨clauses⟩` (already inside a parallel region)
//!   becomes `#pragma omp single` + `#pragma omp taskloop ⟨loop clauses⟩`.
//! * Clauses are routed to whichever directive accepts them:
//!   `num_threads`, `proc_bind`, `shared`, `default`, `if` stay on
//!   `parallel`; `private`, `firstprivate`, `lastprivate`, `reduction`,
//!   `collapse` move to `taskloop`; `schedule`, `ordered` and `nowait` have
//!   no taskloop equivalent and are dropped with a warning.
//! * Backslash line continuations are honoured; everything that is not a
//!   convertible pragma passes through byte-identically.
//!
//! This is a pragmatic text transformation, not a C parser — exactly the
//! scope the paper describes.

#![warn(missing_docs)]

use std::fmt;

/// One warning produced during conversion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warning {
    /// 1-based line number of the original pragma.
    pub line: usize,
    /// Description of what was dropped or left alone.
    pub message: String,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Summary of one conversion pass.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of `parallel for` pragmas converted.
    pub parallel_for_converted: usize,
    /// Number of bare `for` pragmas converted.
    pub for_converted: usize,
    /// Warnings (dropped clauses, unconvertible constructs).
    pub warnings: Vec<Warning>,
}

impl Report {
    /// Total pragmas rewritten.
    pub fn total_converted(&self) -> usize {
        self.parallel_for_converted + self.for_converted
    }
}

/// Where a clause belongs after the split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ClauseHome {
    Parallel,
    Taskloop,
    Dropped,
}

fn clause_home(name: &str) -> ClauseHome {
    match name {
        "num_threads" | "proc_bind" | "shared" | "default" | "if" | "copyin" => {
            ClauseHome::Parallel
        }
        "private" | "firstprivate" | "lastprivate" | "reduction" | "collapse" | "untied"
        | "mergeable" | "priority" | "grainsize" | "num_tasks" => ClauseHome::Taskloop,
        // Work-sharing-only clauses with no taskloop equivalent.
        "schedule" | "ordered" | "nowait" | "linear" => ClauseHome::Dropped,
        // Unknown clauses: keep them on the loop directive and let the
        // compiler complain if they are invalid there.
        _ => ClauseHome::Taskloop,
    }
}

/// Splits a clause list like `private(a, b) reduction(+ : s) collapse(2)`
/// into individual clauses, respecting parentheses.
fn split_clauses(s: &str) -> Vec<String> {
    let mut clauses = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for ch in s.chars() {
        match ch {
            '(' => {
                depth += 1;
                current.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(ch);
                if depth == 0 {
                    clauses.push(current.trim().to_owned());
                    current.clear();
                }
            }
            c if c.is_whitespace() && depth == 0 => {
                if !current.trim().is_empty() {
                    clauses.push(current.trim().to_owned());
                }
                current.clear();
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        clauses.push(current.trim().to_owned());
    }
    clauses
}

/// The clause's directive-routing name (text before `(`).
fn clause_name(clause: &str) -> &str {
    clause.split('(').next().unwrap_or(clause).trim()
}

/// Result of analysing one logical pragma line.
enum PragmaKind<'a> {
    ParallelFor { clauses: &'a str },
    For { clauses: &'a str },
    Other,
}

fn classify(pragma_body: &str) -> PragmaKind<'_> {
    // pragma_body is the text after "#pragma omp", e.g. "parallel for ...".
    let trimmed = pragma_body.trim_start();
    if let Some(rest) = trimmed.strip_prefix("parallel") {
        let rest_t = rest.trim_start();
        if let Some(clauses) = rest_t.strip_prefix("for") {
            // Must be the `for` keyword, not a clause like `firstprivate`.
            if clauses.is_empty() || !clauses.starts_with(|c: char| c.is_alphanumeric() || c == '_')
            {
                return PragmaKind::ParallelFor { clauses };
            }
        }
        return PragmaKind::Other;
    }
    if let Some(clauses) = trimmed.strip_prefix("for") {
        if clauses.is_empty() || !clauses.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
            return PragmaKind::For { clauses };
        }
    }
    PragmaKind::Other
}

/// Converts one source file, returning the rewritten text and a report.
pub fn convert_source(input: &str) -> (String, Report) {
    let mut out = String::with_capacity(input.len() + 256);
    let mut report = Report::default();

    // Gather logical lines (join backslash continuations), remembering the
    // starting physical line of each.
    let mut lines = input.lines().enumerate().peekable();
    while let Some((idx, line)) = lines.next() {
        let line_no = idx + 1;
        let mut logical = line.to_owned();
        while logical.trim_end().ends_with('\\') {
            let without = logical.trim_end();
            logical = without[..without.len() - 1].to_owned();
            match lines.next() {
                Some((_, next)) => logical.push_str(next.trim_start()),
                None => break,
            }
        }

        let trimmed = logical.trim_start();
        let indent = &logical[..logical.len() - trimmed.len()];
        let Some(body) = strip_omp_pragma(trimmed) else {
            out.push_str(&logical);
            out.push('\n');
            continue;
        };

        match classify(body) {
            PragmaKind::ParallelFor { clauses } => {
                report.parallel_for_converted += 1;
                let (parallel, taskloop) = route_clauses(clauses, line_no, &mut report.warnings);
                out.push_str(&format!("{indent}#pragma omp parallel{parallel}\n"));
                out.push_str(&format!("{indent}#pragma omp single\n"));
                out.push_str(&format!("{indent}#pragma omp taskloop{taskloop}\n"));
            }
            PragmaKind::For { clauses } => {
                report.for_converted += 1;
                let (parallel, taskloop) = route_clauses(clauses, line_no, &mut report.warnings);
                if !parallel.is_empty() {
                    report.warnings.push(Warning {
                        line: line_no,
                        message: format!(
                            "clauses{parallel} belong to the enclosing parallel region; \
                             please move them manually"
                        ),
                    });
                }
                out.push_str(&format!("{indent}#pragma omp single\n"));
                out.push_str(&format!("{indent}#pragma omp taskloop{taskloop}\n"));
            }
            PragmaKind::Other => {
                out.push_str(&logical);
                out.push('\n');
            }
        }
    }

    // Preserve the absence of a trailing newline.
    if !input.ends_with('\n') && out.ends_with('\n') {
        out.pop();
    }
    (out, report)
}

/// Returns the pragma body after `#pragma omp`, if this is an OpenMP pragma.
fn strip_omp_pragma(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("#pragma")?.trim_start();
    rest.strip_prefix("omp")
        .filter(|r| r.is_empty() || r.starts_with(char::is_whitespace))
}

/// Splits `clauses` into the parallel-directive suffix and the
/// taskloop-directive suffix (each either empty or starting with a space).
fn route_clauses(clauses: &str, line: usize, warnings: &mut Vec<Warning>) -> (String, String) {
    let mut parallel = String::new();
    let mut taskloop = String::new();
    for clause in split_clauses(clauses) {
        match clause_home(clause_name(&clause)) {
            ClauseHome::Parallel => {
                parallel.push(' ');
                parallel.push_str(&clause);
            }
            ClauseHome::Taskloop => {
                taskloop.push(' ');
                taskloop.push_str(&clause);
            }
            ClauseHome::Dropped => warnings.push(Warning {
                line,
                message: format!("clause `{clause}` has no taskloop equivalent; dropped"),
            }),
        }
    }
    (parallel, taskloop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_plain_parallel_for() {
        let src = "#pragma omp parallel for\nfor (int i = 0; i < n; i++) a[i] = 0;\n";
        let (out, report) = convert_source(src);
        assert_eq!(
            out,
            "#pragma omp parallel\n#pragma omp single\n#pragma omp taskloop\n\
             for (int i = 0; i < n; i++) a[i] = 0;\n"
        );
        assert_eq!(report.parallel_for_converted, 1);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn routes_clauses_to_the_right_directive() {
        let src =
            "#pragma omp parallel for num_threads(8) private(j) reduction(+:s) schedule(static)\n";
        let (out, report) = convert_source(src);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "#pragma omp parallel num_threads(8)");
        assert_eq!(lines[1], "#pragma omp single");
        assert_eq!(lines[2], "#pragma omp taskloop private(j) reduction(+:s)");
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].message.contains("schedule(static)"));
    }

    #[test]
    fn converts_bare_for_inside_parallel() {
        let src = "  #pragma omp for schedule(dynamic, 4)\n  for (...) {}\n";
        let (out, report) = convert_source(src);
        assert_eq!(
            out,
            "  #pragma omp single\n  #pragma omp taskloop\n  for (...) {}\n"
        );
        assert_eq!(report.for_converted, 1);
        assert_eq!(report.warnings.len(), 1);
    }

    #[test]
    fn preserves_indentation() {
        let src = "\t\t#pragma omp parallel for collapse(2)\n";
        let (out, _) = convert_source(src);
        for line in out.lines() {
            assert!(line.starts_with("\t\t"), "lost indentation: {line:?}");
        }
        assert!(out.contains("taskloop collapse(2)"));
    }

    #[test]
    fn leaves_other_pragmas_alone() {
        let src = "#pragma omp parallel\n#pragma omp barrier\n#pragma once\n#pragma omp critical\n";
        let (out, report) = convert_source(src);
        assert_eq!(out, src);
        assert_eq!(report.total_converted(), 0);
    }

    #[test]
    fn does_not_mangle_identifiers_starting_with_for() {
        // `parallel formatting(x)` is not `parallel for`.
        let src = "#pragma omp parallel formatting(x)\n";
        let (out, _) = convert_source(src);
        assert_eq!(out, src);
        // And `forall` is not `for`.
        let src2 = "#pragma omp forall\n";
        let (out2, _) = convert_source(src2);
        assert_eq!(out2, src2);
    }

    #[test]
    fn joins_backslash_continuations() {
        let src =
            "#pragma omp parallel for \\\n    private(i, j) \\\n    reduction(max : m)\nbody();\n";
        let (out, report) = convert_source(src);
        assert!(out.contains("#pragma omp taskloop private(i, j) reduction(max : m)"));
        assert!(out.contains("body();"));
        assert_eq!(report.parallel_for_converted, 1);
    }

    #[test]
    fn split_clauses_respects_parentheses() {
        let clauses = split_clauses("reduction(+ : a, b) private(x) collapse(2)");
        assert_eq!(
            clauses,
            vec!["reduction(+ : a, b)", "private(x)", "collapse(2)"]
        );
    }

    #[test]
    fn non_pragma_content_is_byte_identical() {
        let src =
            "int main() {\n  // #pragma omp parallel for in a comment stays? \n  return 0;\n}\n";
        // Note: a commented pragma at line start would convert; here it is
        // indented inside a comment — our line-based tool only matches lines
        // whose first token is `#pragma`, so this passes through.
        let (out, report) = convert_source(src);
        assert_eq!(out, src);
        assert_eq!(report.total_converted(), 0);
    }

    #[test]
    fn npb_style_snippet_end_to_end() {
        let src = r#"void conj_grad() {
    #pragma omp parallel for default(shared) private(j, k, sum) schedule(static)
    for (j = 0; j < lastrow - firstrow + 1; j++) {
        sum = 0.0;
        for (k = rowstr[j]; k < rowstr[j+1]; k++)
            sum += a[k] * p[colidx[k]];
        q[j] = sum;
    }
}
"#;
        let (out, report) = convert_source(src);
        assert_eq!(report.parallel_for_converted, 1);
        assert!(out.contains("#pragma omp parallel default(shared)"));
        assert!(out.contains("#pragma omp single"));
        assert!(out.contains("#pragma omp taskloop private(j, k, sum)"));
        assert!(out.contains("sum += a[k] * p[colidx[k]];"));
    }

    #[test]
    fn missing_trailing_newline_preserved() {
        let src = "x = 1;";
        let (out, _) = convert_source(src);
        assert_eq!(out, src);
    }
}
