//! `omp2task` — rewrite OpenMP work-sharing loops as taskloops.
//!
//! ```text
//! omp2task input.c            # writes the conversion to stdout
//! omp2task input.c -o out.c   # writes to a file
//! omp2task -                  # reads stdin
//! ```
//!
//! The conversion report (counts and dropped-clause warnings) goes to
//! stderr. Exit status 0 even with warnings; 1 on IO errors.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input_path = None;
    let mut output_path = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" => match it.next() {
                Some(p) => output_path = Some(p),
                None => {
                    eprintln!("-o needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                eprintln!("usage: omp2task <input.c | -> [-o output.c]");
                return ExitCode::SUCCESS;
            }
            other => input_path = Some(other.to_owned()),
        }
    }

    let Some(input_path) = input_path else {
        eprintln!("usage: omp2task <input.c | -> [-o output.c]");
        return ExitCode::FAILURE;
    };

    let source = if input_path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: stdin is not valid UTF-8");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&input_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {input_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let (converted, report) = omp2task::convert_source(&source);

    eprintln!(
        "converted {} `parallel for` and {} `for` pragma(s)",
        report.parallel_for_converted, report.for_converted
    );
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }

    match output_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, converted) {
                eprintln!("error writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{converted}"),
    }
    ExitCode::SUCCESS
}
