//! Corpus test: convert a realistic multi-loop NPB-style source file and
//! check the complete output, byte for byte.

use omp2task::convert_source;

const INPUT: &str = r#"/* cg.c — excerpt-shaped test corpus */
#include <omp.h>

static double a[NNZ], x[NA], q[NA], r[NA];

void init(void) {
    #pragma omp parallel for default(shared) private(j)
    for (j = 0; j < NA; j++) {
        x[j] = 1.0;
    }
}

double conj_grad(void) {
    double rho = 0.0;
    #pragma omp parallel default(shared) num_threads(64)
    {
        #pragma omp for private(j, sum) schedule(static) nowait
        for (j = 0; j < NA; j++) {
            double sum = 0.0;
            for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                sum += a[k] * p[colidx[k]];
            q[j] = sum;
        }

        #pragma omp for reduction(+ : rho)
        for (j = 0; j < NA; j++)
            rho += r[j] * r[j];

        #pragma omp barrier
        #pragma omp single
        { norm_temp = 0.0; }
    }
    return rho;
}

void heavy(void) {
    #pragma omp parallel for collapse(2) \
        firstprivate(scale) \
        lastprivate(last)
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            b[i][j] = scale * c[i][j];
}
"#;

const EXPECTED: &str = r#"/* cg.c — excerpt-shaped test corpus */
#include <omp.h>

static double a[NNZ], x[NA], q[NA], r[NA];

void init(void) {
    #pragma omp parallel default(shared)
    #pragma omp single
    #pragma omp taskloop private(j)
    for (j = 0; j < NA; j++) {
        x[j] = 1.0;
    }
}

double conj_grad(void) {
    double rho = 0.0;
    #pragma omp parallel default(shared) num_threads(64)
    {
        #pragma omp single
        #pragma omp taskloop private(j, sum)
        for (j = 0; j < NA; j++) {
            double sum = 0.0;
            for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                sum += a[k] * p[colidx[k]];
            q[j] = sum;
        }

        #pragma omp single
        #pragma omp taskloop reduction(+ : rho)
        for (j = 0; j < NA; j++)
            rho += r[j] * r[j];

        #pragma omp barrier
        #pragma omp single
        { norm_temp = 0.0; }
    }
    return rho;
}

void heavy(void) {
    #pragma omp parallel
    #pragma omp single
    #pragma omp taskloop collapse(2) firstprivate(scale) lastprivate(last)
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            b[i][j] = scale * c[i][j];
}
"#;

#[test]
fn npb_corpus_converts_exactly() {
    let (out, report) = convert_source(INPUT);
    assert_eq!(out, EXPECTED);
    assert_eq!(report.parallel_for_converted, 2);
    assert_eq!(report.for_converted, 2);
    // schedule(static) and nowait dropped with warnings.
    assert_eq!(report.warnings.len(), 2, "{:?}", report.warnings);
    assert_eq!(report.total_converted(), 4);
}

#[test]
fn conversion_is_idempotent() {
    // Converting already-converted output changes nothing further.
    let (once, _) = convert_source(INPUT);
    let (twice, report) = convert_source(&once);
    assert_eq!(once, twice);
    assert_eq!(report.total_converted(), 0);
}
