//! Iteration-range chunking for taskloops.
//!
//! An OpenMP `taskloop` partitions `0..n` iterations into chunks of at most
//! `grainsize` iterations; each chunk becomes one task. [`chunk_ranges`]
//! performs that partition, and [`ChunkAssignment`] implements ILAN's
//! deterministic chunk→node mapping (§3.3 of the paper): chunk *i* of *N*
//! goes to the node with rank `⌊i · nodes / N⌋` within the node mask, so
//! adjacent iterations — which tend to share data — stay collocated.

use ilan_topology::{NodeId, NodeMask};
use std::ops::Range;

/// How a taskloop's iteration space is partitioned into chunks — the
/// OpenMP `grainsize` / `num_tasks` clauses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Grain {
    /// At most this many iterations per chunk (`grainsize(n)`).
    Size(usize),
    /// Split into (up to) this many chunks (`num_tasks(n)`).
    Count(usize),
    /// Implementation default: roughly four chunks per worker, so stealing
    /// has slack without drowning in per-task overhead.
    #[default]
    Auto,
}

/// Minimum iterations an [`Grain::Auto`] chunk targets. Loops too small to
/// give every worker four chunks of this size get fewer chunks instead of
/// single-iteration ones: a tiny loop split into `len` one-iteration tasks
/// spends more time in the scheduler than in its body.
const AUTO_MIN_CHUNK_ITERS: usize = 4;

impl Grain {
    /// Resolves to a concrete grainsize for a loop of `len` iterations on
    /// `workers` workers. Always at least 1.
    ///
    /// `Auto` targets four chunks per worker, clamped so chunks keep at
    /// least `AUTO_MIN_CHUNK_ITERS` (4) iterations (save a smaller final
    /// remainder): the chunk count never exceeds `⌈len/4⌉`, and therefore
    /// never exceeds `len`. Previously `len < 4·workers` resolved to
    /// grainsize 1 and `len` single-iteration tasks.
    pub fn resolve(self, len: usize, workers: usize) -> usize {
        match self {
            Grain::Size(g) => g.max(1),
            Grain::Count(n) => len.div_ceil(n.max(1)).max(1),
            Grain::Auto => {
                let target_chunks = len
                    .div_ceil(AUTO_MIN_CHUNK_ITERS)
                    .clamp(1, 4 * workers.max(1));
                len.div_ceil(target_chunks).max(1)
            }
        }
    }
}

/// Splits `range` into chunks of at most `grainsize` iterations.
///
/// Every iteration appears in exactly one chunk; chunks are in ascending
/// order; all chunks except possibly the last have exactly `grainsize`
/// iterations.
///
/// # Panics
/// Panics if `grainsize == 0`.
pub fn chunk_ranges(range: Range<usize>, grainsize: usize) -> Vec<Range<usize>> {
    assert!(grainsize > 0, "grainsize must be positive");
    let mut out = Vec::with_capacity(range.len().div_ceil(grainsize).max(1));
    let mut lo = range.start;
    while lo < range.end {
        let hi = (lo + grainsize).min(range.end);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Deterministic blocked assignment of chunks to the nodes of a mask.
#[derive(Clone, Debug)]
pub struct ChunkAssignment {
    mask: NodeMask,
    num_chunks: usize,
}

impl ChunkAssignment {
    /// Creates the assignment of `num_chunks` chunks over the nodes in
    /// `mask`.
    ///
    /// # Panics
    /// Panics if `mask` is empty.
    pub fn new(mask: NodeMask, num_chunks: usize) -> Self {
        assert!(
            !mask.is_empty(),
            "cannot assign chunks to an empty node mask"
        );
        ChunkAssignment { mask, num_chunks }
    }

    /// The node executing chunk `i`.
    ///
    /// # Panics
    /// Panics (in debug) if `i >= num_chunks`.
    pub fn node_of_chunk(&self, i: usize) -> NodeId {
        debug_assert!(i < self.num_chunks, "chunk index out of range");
        let k = self.mask.count();
        let rank = i * k / self.num_chunks.max(1);
        self.mask.nth(rank).expect("rank < mask count")
    }

    /// The chunk indices assigned to each node of the mask, in mask order.
    /// Chunks within a node are in ascending (adjacent-iteration) order.
    pub fn per_node(&self) -> Vec<(NodeId, Vec<usize>)> {
        let mut out: Vec<(NodeId, Vec<usize>)> =
            self.mask.iter().map(|n| (n, Vec::new())).collect();
        for i in 0..self.num_chunks {
            let node = self.node_of_chunk(i);
            let rank = self.mask.rank_of(node).expect("node in mask");
            out[rank].1.push(i);
        }
        out
    }

    /// The contiguous range of chunk indices assigned to the node of mask
    /// rank `rank` — the allocation-free inverse of
    /// [`node_of_chunk`](Self::node_of_chunk) the dispatch hot path uses
    /// instead of materialising [`per_node`](Self::per_node).
    ///
    /// # Panics
    /// Panics (in debug) if `rank >= mask.count()`.
    pub fn chunks_of_rank(&self, rank: usize) -> Range<usize> {
        let k = self.mask.count();
        debug_assert!(rank < k, "rank out of mask");
        let n = self.num_chunks;
        (rank * n).div_ceil(k)..((rank + 1) * n).div_ceil(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grain_size_resolves_directly() {
        assert_eq!(Grain::Size(16).resolve(1000, 8), 16);
        assert_eq!(Grain::Size(0).resolve(1000, 8), 1);
    }

    #[test]
    fn grain_count_splits_evenly() {
        // 100 iterations in 8 chunks → grainsize 13 → 8 chunks (7×13 + 9).
        let g = Grain::Count(8).resolve(100, 4);
        assert_eq!(g, 13);
        assert_eq!(chunk_ranges(0..100, g).len(), 8);
        // More requested chunks than iterations → one-iteration chunks.
        assert_eq!(Grain::Count(500).resolve(100, 4), 1);
        assert_eq!(Grain::Count(0).resolve(100, 4), 100);
    }

    #[test]
    fn grain_auto_targets_four_per_worker() {
        let g = Grain::Auto.resolve(6400, 8);
        let chunks = chunk_ranges(0..6400, g).len();
        assert_eq!(chunks, 32);
        // Degenerate inputs stay sane.
        assert_eq!(Grain::Auto.resolve(1, 64), 1);
        assert_eq!(Grain::Auto.resolve(0, 0).max(1), 1);
    }

    #[test]
    fn grain_auto_tiny_loops_do_not_drown_in_tasks() {
        // Regression: len < 4·workers used to resolve to grainsize 1 and
        // `len` single-iteration tasks. Now chunks keep ≥ 4 iterations.
        let workers = 8;
        for len in [1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 33, 63, 64, 127] {
            let g = Grain::Auto.resolve(len, workers);
            let chunks = chunk_ranges(0..len, g).len();
            assert!(chunks <= len, "len={len}: {chunks} chunks > len");
            assert!(
                chunks <= len.div_ceil(4).max(1),
                "len={len}: {chunks} chunks of grain {g} drown the loop"
            );
            assert!(
                chunks <= 4 * workers,
                "len={len}: {chunks} chunks exceed 4 per worker"
            );
        }
        // Exact boundaries around len == 4·workers == 32.
        assert_eq!(Grain::Auto.resolve(31, 8), 4); // 8 chunks
        assert_eq!(Grain::Auto.resolve(32, 8), 4); // 8 chunks
        assert_eq!(Grain::Auto.resolve(33, 8), 4); // 9 chunks
        assert_eq!(Grain::Auto.resolve(128, 8), 4); // 32 chunks, full fan-out
        assert_eq!(Grain::Auto.resolve(129, 8), 5); // count capped at 4·workers
                                                    // Large loops keep the classic four-chunks-per-worker target.
        assert_eq!(
            chunk_ranges(0..6400, Grain::Auto.resolve(6400, 8)).len(),
            32
        );
    }

    #[test]
    fn chunks_of_rank_matches_per_node() {
        for (nodes, chunks) in [(1, 1), (2, 7), (3, 10), (4, 16), (8, 3), (5, 64)] {
            let a = ChunkAssignment::new(NodeMask::first_n(nodes), chunks);
            for (rank, (_, idxs)) in a.per_node().into_iter().enumerate() {
                let range = a.chunks_of_rank(rank);
                assert_eq!(
                    range.clone().collect::<Vec<_>>(),
                    idxs,
                    "nodes={nodes} chunks={chunks} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn chunks_cover_range_exactly() {
        let chunks = chunk_ranges(0..100, 16);
        assert_eq!(chunks.len(), 7);
        let mut covered = [false; 100];
        for c in &chunks {
            for i in c.clone() {
                assert!(!covered[i], "iteration {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        assert_eq!(chunks.last().unwrap().len(), 4);
    }

    #[test]
    fn chunking_nonzero_start() {
        let chunks = chunk_ranges(10..26, 8);
        assert_eq!(chunks, vec![10..18, 18..26]);
    }

    #[test]
    fn empty_range_no_chunks() {
        assert!(chunk_ranges(5..5, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "grainsize")]
    fn zero_grainsize_panics() {
        chunk_ranges(0..10, 0);
    }

    #[test]
    fn blocked_assignment_is_monotone() {
        let a = ChunkAssignment::new(NodeMask::first_n(4), 16);
        let nodes: Vec<usize> = (0..16).map(|i| a.node_of_chunk(i).index()).collect();
        // Non-decreasing, each node gets 4 consecutive chunks.
        assert_eq!(nodes, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    fn assignment_respects_sparse_mask() {
        let mask = NodeMask::from_bits(0b0101_0000); // nodes {4, 6}
        let a = ChunkAssignment::new(mask, 6);
        let nodes: Vec<usize> = (0..6).map(|i| a.node_of_chunk(i).index()).collect();
        assert_eq!(nodes, vec![4, 4, 4, 6, 6, 6]);
    }

    #[test]
    fn uneven_division_balanced_within_one() {
        let a = ChunkAssignment::new(NodeMask::first_n(3), 10);
        let per = a.per_node();
        let counts: Vec<usize> = per.iter().map(|(_, c)| c.len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "counts {counts:?}");
    }

    #[test]
    fn fewer_chunks_than_nodes() {
        let a = ChunkAssignment::new(NodeMask::first_n(8), 3);
        let per = a.per_node();
        let nonempty = per.iter().filter(|(_, c)| !c.is_empty()).count();
        assert_eq!(nonempty, 3);
        assert_eq!(per.iter().map(|(_, c)| c.len()).sum::<usize>(), 3);
    }

    #[test]
    #[should_panic(expected = "empty node mask")]
    fn empty_mask_panics() {
        ChunkAssignment::new(NodeMask::EMPTY, 4);
    }
}
