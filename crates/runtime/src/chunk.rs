//! Iteration-range chunking for taskloops.
//!
//! An OpenMP `taskloop` partitions `0..n` iterations into chunks of at most
//! `grainsize` iterations; each chunk becomes one task. [`chunk_ranges`]
//! performs that partition, and [`ChunkAssignment`] implements ILAN's
//! deterministic chunk→node mapping (§3.3 of the paper): chunk *i* of *N*
//! goes to the node with rank `⌊i · nodes / N⌋` within the node mask, so
//! adjacent iterations — which tend to share data — stay collocated.

use ilan_topology::{NodeId, NodeMask};
use std::ops::Range;

/// How a taskloop's iteration space is partitioned into chunks — the
/// OpenMP `grainsize` / `num_tasks` clauses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Grain {
    /// At most this many iterations per chunk (`grainsize(n)`).
    Size(usize),
    /// Split into (up to) this many chunks (`num_tasks(n)`).
    Count(usize),
    /// Implementation default: roughly four chunks per worker, so stealing
    /// has slack without drowning in per-task overhead.
    #[default]
    Auto,
}

impl Grain {
    /// Resolves to a concrete grainsize for a loop of `len` iterations on
    /// `workers` workers. Always at least 1.
    pub fn resolve(self, len: usize, workers: usize) -> usize {
        match self {
            Grain::Size(g) => g.max(1),
            Grain::Count(n) => len.div_ceil(n.max(1)).max(1),
            Grain::Auto => len.div_ceil(4 * workers.max(1)).max(1),
        }
    }
}

/// Splits `range` into chunks of at most `grainsize` iterations.
///
/// Every iteration appears in exactly one chunk; chunks are in ascending
/// order; all chunks except possibly the last have exactly `grainsize`
/// iterations.
///
/// # Panics
/// Panics if `grainsize == 0`.
pub fn chunk_ranges(range: Range<usize>, grainsize: usize) -> Vec<Range<usize>> {
    assert!(grainsize > 0, "grainsize must be positive");
    let mut out = Vec::with_capacity(range.len().div_ceil(grainsize).max(1));
    let mut lo = range.start;
    while lo < range.end {
        let hi = (lo + grainsize).min(range.end);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Deterministic blocked assignment of chunks to the nodes of a mask.
#[derive(Clone, Debug)]
pub struct ChunkAssignment {
    mask: NodeMask,
    num_chunks: usize,
}

impl ChunkAssignment {
    /// Creates the assignment of `num_chunks` chunks over the nodes in
    /// `mask`.
    ///
    /// # Panics
    /// Panics if `mask` is empty.
    pub fn new(mask: NodeMask, num_chunks: usize) -> Self {
        assert!(
            !mask.is_empty(),
            "cannot assign chunks to an empty node mask"
        );
        ChunkAssignment { mask, num_chunks }
    }

    /// The node executing chunk `i`.
    ///
    /// # Panics
    /// Panics (in debug) if `i >= num_chunks`.
    pub fn node_of_chunk(&self, i: usize) -> NodeId {
        debug_assert!(i < self.num_chunks, "chunk index out of range");
        let k = self.mask.count();
        let rank = i * k / self.num_chunks.max(1);
        self.mask.nth(rank).expect("rank < mask count")
    }

    /// The chunk indices assigned to each node of the mask, in mask order.
    /// Chunks within a node are in ascending (adjacent-iteration) order.
    pub fn per_node(&self) -> Vec<(NodeId, Vec<usize>)> {
        let mut out: Vec<(NodeId, Vec<usize>)> =
            self.mask.iter().map(|n| (n, Vec::new())).collect();
        for i in 0..self.num_chunks {
            let node = self.node_of_chunk(i);
            let rank = self.mask.rank_of(node).expect("node in mask");
            out[rank].1.push(i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grain_size_resolves_directly() {
        assert_eq!(Grain::Size(16).resolve(1000, 8), 16);
        assert_eq!(Grain::Size(0).resolve(1000, 8), 1);
    }

    #[test]
    fn grain_count_splits_evenly() {
        // 100 iterations in 8 chunks → grainsize 13 → 8 chunks (7×13 + 9).
        let g = Grain::Count(8).resolve(100, 4);
        assert_eq!(g, 13);
        assert_eq!(chunk_ranges(0..100, g).len(), 8);
        // More requested chunks than iterations → one-iteration chunks.
        assert_eq!(Grain::Count(500).resolve(100, 4), 1);
        assert_eq!(Grain::Count(0).resolve(100, 4), 100);
    }

    #[test]
    fn grain_auto_targets_four_per_worker() {
        let g = Grain::Auto.resolve(6400, 8);
        let chunks = chunk_ranges(0..6400, g).len();
        assert_eq!(chunks, 32);
        // Degenerate inputs stay sane.
        assert_eq!(Grain::Auto.resolve(1, 64), 1);
        assert_eq!(Grain::Auto.resolve(0, 0).max(1), 1);
    }

    #[test]
    fn chunks_cover_range_exactly() {
        let chunks = chunk_ranges(0..100, 16);
        assert_eq!(chunks.len(), 7);
        let mut covered = [false; 100];
        for c in &chunks {
            for i in c.clone() {
                assert!(!covered[i], "iteration {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        assert_eq!(chunks.last().unwrap().len(), 4);
    }

    #[test]
    fn chunking_nonzero_start() {
        let chunks = chunk_ranges(10..26, 8);
        assert_eq!(chunks, vec![10..18, 18..26]);
    }

    #[test]
    fn empty_range_no_chunks() {
        assert!(chunk_ranges(5..5, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "grainsize")]
    fn zero_grainsize_panics() {
        chunk_ranges(0..10, 0);
    }

    #[test]
    fn blocked_assignment_is_monotone() {
        let a = ChunkAssignment::new(NodeMask::first_n(4), 16);
        let nodes: Vec<usize> = (0..16).map(|i| a.node_of_chunk(i).index()).collect();
        // Non-decreasing, each node gets 4 consecutive chunks.
        assert_eq!(nodes, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    fn assignment_respects_sparse_mask() {
        let mask = NodeMask::from_bits(0b0101_0000); // nodes {4, 6}
        let a = ChunkAssignment::new(mask, 6);
        let nodes: Vec<usize> = (0..6).map(|i| a.node_of_chunk(i).index()).collect();
        assert_eq!(nodes, vec![4, 4, 4, 6, 6, 6]);
    }

    #[test]
    fn uneven_division_balanced_within_one() {
        let a = ChunkAssignment::new(NodeMask::first_n(3), 10);
        let per = a.per_node();
        let counts: Vec<usize> = per.iter().map(|(_, c)| c.len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "counts {counts:?}");
    }

    #[test]
    fn fewer_chunks_than_nodes() {
        let a = ChunkAssignment::new(NodeMask::first_n(8), 3);
        let per = a.per_node();
        let nonempty = per.iter().filter(|(_, c)| !c.is_empty()).count();
        assert_eq!(nonempty, 3);
        assert_eq!(per.iter().map(|(_, c)| c.len()).sum::<usize>(), 3);
    }

    #[test]
    #[should_panic(expected = "empty node mask")]
    fn empty_mask_panics() {
        ChunkAssignment::new(NodeMask::EMPTY, 4);
    }
}
