//! A counting completion latch.
//!
//! The caller of a taskloop blocks on the latch until every chunk has been
//! executed. Workers decrement; the final decrement wakes the waiter. Uses a
//! bounded-backoff spin phase before parking, since taskloop tails are
//! usually short. The latch is resettable so one instance can serve every
//! invocation of a pool's lifetime (the dispatch arena owns exactly one).

use crate::sleep::Backoff;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts outstanding chunks; wakes waiters when the count reaches zero.
pub(crate) struct CountLatch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl CountLatch {
    pub(crate) fn new(count: usize) -> Self {
        CountLatch {
            remaining: AtomicUsize::new(count),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Re-arms a released latch to `count`. Must only be called when no
    /// waiter is blocked and no decrement is in flight (the dispatcher
    /// resets between invocations, after the previous wait returned).
    pub(crate) fn reset(&self, count: usize) {
        debug_assert!(
            self.is_released(),
            "resetting a latch that still has outstanding counts"
        );
        self.remaining.store(count, Ordering::Release);
    }

    /// Decrements the counter by one; the decrement that reaches zero
    /// notifies all waiters.
    pub(crate) fn count_down(&self) {
        let prev = self.remaining.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "latch decremented below zero");
        if prev == 1 {
            // Take the lock to pair with the waiter's check-then-sleep.
            let _guard = self.mutex.lock();
            self.cond.notify_all();
        }
    }

    /// Whether the latch has already released.
    pub(crate) fn is_released(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Blocks until the counter reaches zero.
    pub(crate) fn wait(&self) {
        // Fast path + bounded backoff: most loops finish while the caller
        // is hot, but unbounded spinning would steal cycles from the very
        // workers being waited on.
        let mut backoff = Backoff::new();
        while !backoff.is_completed() {
            if self.is_released() {
                return;
            }
            backoff.snooze();
        }
        let mut guard = self.mutex.lock();
        while !self.is_released() {
            self.cond.wait(&mut guard);
        }
    }

    /// Blocks until the counter reaches zero or `timeout` elapses. Returns
    /// whether the latch released — `false` means the deadline fired first
    /// (the watchdog's cue to inspect progress and escalate).
    pub(crate) fn wait_for(&self, timeout: std::time::Duration) -> bool {
        let mut backoff = Backoff::new();
        while !backoff.is_completed() {
            if self.is_released() {
                return true;
            }
            backoff.snooze();
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.mutex.lock();
        while !self.is_released() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return self.is_released();
            }
            if self.cond.wait_for(&mut guard, deadline - now).timed_out() {
                return self.is_released();
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_count_is_released_immediately() {
        let l = CountLatch::new(0);
        assert!(l.is_released());
        l.wait(); // must not block
    }

    #[test]
    fn releases_after_n_decrements() {
        let l = CountLatch::new(3);
        l.count_down();
        l.count_down();
        assert!(!l.is_released());
        l.count_down();
        assert!(l.is_released());
    }

    #[test]
    fn reset_rearms_released_latch() {
        let l = CountLatch::new(1);
        l.count_down();
        assert!(l.is_released());
        l.reset(2);
        assert!(!l.is_released());
        l.count_down();
        l.count_down();
        assert!(l.is_released());
        l.wait();
    }

    #[test]
    fn wait_for_times_out_then_succeeds() {
        let l = CountLatch::new(1);
        assert!(!l.wait_for(std::time::Duration::from_millis(5)));
        l.count_down();
        assert!(l.wait_for(std::time::Duration::from_millis(5)));
    }

    #[test]
    fn cross_thread_wait() {
        let l = Arc::new(CountLatch::new(4));
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            for _ in 0..4 {
                std::thread::yield_now();
                l2.count_down();
            }
        });
        l.wait();
        assert!(l.is_released());
        h.join().unwrap();
    }
}
