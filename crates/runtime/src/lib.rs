//! A native work-stealing task runtime with NUMA-hierarchical scheduling.
//!
//! This crate re-implements, in Rust, the scheduler-visible behaviour of the
//! LLVM OpenMP tasking layer that the ILAN paper extends:
//!
//! * a pool of worker threads pinned 1:1 to cores (when the OS allows),
//! * `taskloop`-style execution: an iteration range is partitioned into
//!   chunks, each chunk becomes a task,
//! * three execution modes matching the paper's comparison points:
//!   - [`ExecMode::Flat`] — the default LLVM tasking baseline: one shared
//!     queue, every worker takes any chunk (random placement in effect);
//!   - [`ExecMode::Hierarchical`] — ILAN's mode: chunks are pre-assigned to
//!     NUMA nodes and enqueued on per-node queues; an initial fraction is
//!     NUMA-strict, the tail may be stolen by fully idle remote nodes
//!     (`full` steal policy) or not at all (`strict`);
//!   - [`ExecMode::WorkSharing`] — OpenMP `for schedule(static)`: fixed
//!     contiguous slices per worker, no queues, no stealing.
//!
//! The runtime reports per-invocation statistics ([`LoopReport`]) — makespan,
//! per-node busy time, scheduling overhead, migrations — which is exactly the
//! feedback ILAN's Performance Trace Table consumes. The policy side
//! (choosing thread counts, node masks and steal policies) lives in the
//! `ilan` crate; this crate only executes.
//!
//! # Example
//!
//! ```
//! use ilan_runtime::{ThreadPool, PoolConfig, ExecMode};
//! use ilan_topology::presets;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! // A small pool (oversubscription is fine for functional use).
//! let pool = ThreadPool::new(PoolConfig::new(presets::smp(4))).unwrap();
//! let sum = AtomicUsize::new(0);
//! let report = pool.taskloop(0..1000, 16, ExecMode::Flat, |range| {
//!     sum.fetch_add(range.sum::<usize>(), Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
//! assert_eq!(report.tasks_executed(), 63); // ceil(1000/16)
//! ```

#![warn(missing_docs)]

mod chunk;
mod latch;
pub mod metrics;
mod pin;
mod pool;
mod report;
mod sleep;

pub use chunk::{chunk_ranges, ChunkAssignment, Grain};
pub use metrics::{PoolMetrics, TAIL_FACTOR, TAIL_MIN_SAMPLES};
pub use pin::{pin_current_thread, PinMode};
pub use pool::{
    ExecMode, PoolConfig, PoolError, StealPolicy, ThreadPool, WakeMode, DEFAULT_INLINE_THRESHOLD,
    DEFAULT_WATCHDOG,
};
pub use report::{LoopReport, NodeReport};

/// Event-tracing layer (re-exported): [`trace::EventLog`] is what the traced
/// taskloop variants return.
pub use ilan_trace as trace;

/// Metrics layer (re-exported): counters, histograms, registries and the
/// flight-recorder types the pool's [`PoolMetrics`] is built from.
pub use ilan_metrics as metrics_core;
