//! The pool's always-on instrument panel.
//!
//! One [`PoolMetrics`] is built per [`ThreadPool`](crate::ThreadPool)
//! (unless disabled via [`PoolConfig::metrics`](crate::PoolConfig::metrics))
//! and owns every instrument the pool records into, its registry, the
//! flight recorder, and the tail tracker that drives anomaly detection.
//!
//! Cost discipline: workers accumulate into their private `WorkerTally` and
//! flush once per invocation into per-worker sharded counters (relaxed
//! stores, closed by the exit-latch edge); the dispatcher records a handful
//! of counters and two histogram samples per dispatched invocation. Nothing
//! here allocates on the warm dispatch path — the zero-allocation test
//! covers a metrics-on pool.

use ilan_metrics::{
    Counter, FlightDump, FlightRecorder, Histogram, Registry, ShardedCounter, TailTracker,
};

/// Tail-breach factor: an invocation slower than `median × TAIL_FACTOR`
/// trips the flight recorder.
pub const TAIL_FACTOR: u64 = 8;

/// Dispatched invocations observed before the tail threshold arms.
pub const TAIL_MIN_SAMPLES: u64 = 32;

/// All instruments of one pool, plus its registry and flight recorder.
///
/// Metric families (all prefixed `ilan_pool_`):
///
/// | family | kind | meaning |
/// |---|---|---|
/// | `loops` | counter (`path`=`inline`/`dispatched`) | invocations by execution path |
/// | `dispatch_ns` | histogram | arena fill + wakeup posting latency |
/// | `loop_ns` | histogram | dispatched-invocation makespan (drives the tail tracker) |
/// | `wakeups` | counter (`mode`) | sleep-slot posts by wake mode |
/// | `park_ns` | histogram | worker sleep duration per invocation |
/// | `acquisitions` | counter (`kind`) | chunk acquisitions: `local_pop` / `intra_steal` / `inter_steal` |
/// | `steal_attempts`, `steal_hits` | counter (`scope`=`local`/`remote`) | probe traffic split by NUMA scope |
/// | `degraded` | counter (`stage`) | watchdog escalations |
/// | `faults_injected` | counter | chaos-layer injections seen by the dispatcher |
/// | `flight_triggers` | counter | anomalies seen by the flight recorder |
pub struct PoolMetrics {
    registry: Registry,
    pub(crate) loops_inline: Counter,
    pub(crate) loops_dispatched: Counter,
    pub(crate) dispatch_ns: Histogram,
    pub(crate) loop_ns: Histogram,
    pub(crate) wakeups_targeted: Counter,
    pub(crate) wakeups_broadcast: Counter,
    pub(crate) park_ns: Histogram,
    pub(crate) acq_local_pop: ShardedCounter,
    pub(crate) acq_intra_steal: ShardedCounter,
    pub(crate) acq_inter_steal: ShardedCounter,
    pub(crate) steal_attempts_local: ShardedCounter,
    pub(crate) steal_attempts_remote: ShardedCounter,
    pub(crate) steal_hits_local: ShardedCounter,
    pub(crate) steal_hits_remote: ShardedCounter,
    pub(crate) degraded_stage1: Counter,
    pub(crate) degraded_stage2: Counter,
    pub(crate) faults_injected: Counter,
    pub(crate) flight_triggers: Counter,
    pub(crate) flight: FlightRecorder,
    pub(crate) tail: TailTracker,
}

impl PoolMetrics {
    pub(crate) fn new(workers: usize) -> Self {
        let r = Registry::new();
        let loop_ns = r.histogram(
            "ilan_pool_loop_ns",
            "Dispatched taskloop invocation makespan, ns",
        );
        let acq = |kind: &str| {
            r.sharded_counter_with(
                "ilan_pool_acquisitions",
                "Chunk acquisitions by locality outcome",
                &[("kind", kind)],
                workers,
            )
        };
        let steal = |name: &str, help: &str, scope: &str| {
            r.sharded_counter_with(name, help, &[("scope", scope)], workers)
        };
        let degraded = |stage: &str| {
            r.counter_with(
                "ilan_pool_degraded",
                "Watchdog escalations by stage",
                &[("stage", stage)],
            )
        };
        PoolMetrics {
            loops_inline: r.counter_with(
                "ilan_pool_loops",
                "Taskloop invocations by execution path",
                &[("path", "inline")],
            ),
            loops_dispatched: r.counter_with(
                "ilan_pool_loops",
                "Taskloop invocations by execution path",
                &[("path", "dispatched")],
            ),
            dispatch_ns: r.histogram(
                "ilan_pool_dispatch_ns",
                "Dispatch latency (arena fill + wakeup posting), ns",
            ),
            wakeups_targeted: r.counter_with(
                "ilan_pool_wakeups",
                "Sleep-slot posts by wake mode",
                &[("mode", "targeted")],
            ),
            wakeups_broadcast: r.counter_with(
                "ilan_pool_wakeups",
                "Sleep-slot posts by wake mode",
                &[("mode", "broadcast")],
            ),
            park_ns: r.histogram("ilan_pool_park_ns", "Worker sleep duration per wakeup, ns"),
            acq_local_pop: acq("local_pop"),
            acq_intra_steal: acq("intra_steal"),
            acq_inter_steal: acq("inter_steal"),
            steal_attempts_local: steal(
                "ilan_pool_steal_attempts",
                "Steal probes by NUMA scope",
                "local",
            ),
            steal_attempts_remote: steal(
                "ilan_pool_steal_attempts",
                "Steal probes by NUMA scope",
                "remote",
            ),
            steal_hits_local: steal(
                "ilan_pool_steal_hits",
                "Successful steal probes by NUMA scope",
                "local",
            ),
            steal_hits_remote: steal(
                "ilan_pool_steal_hits",
                "Successful steal probes by NUMA scope",
                "remote",
            ),
            degraded_stage1: degraded("1"),
            degraded_stage2: degraded("2"),
            faults_injected: r.counter(
                "ilan_pool_faults_injected",
                "Chaos-layer fault injections observed by the dispatcher",
            ),
            flight_triggers: r.counter(
                "ilan_pool_flight_triggers",
                "Anomalies reported to the flight recorder",
            ),
            flight: FlightRecorder::new(),
            tail: TailTracker::new(loop_ns.clone(), TAIL_FACTOR, TAIL_MIN_SAMPLES),
            loop_ns,
            registry: r,
        }
    }

    /// The pool's registry: snapshot it, delta it, render it.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The dispatch-latency histogram (arena fill + wakeup posting, ns).
    pub fn dispatch_ns(&self) -> &Histogram {
        &self.dispatch_ns
    }

    /// The dispatched-invocation makespan histogram (ns) — the one the
    /// tail tracker watches.
    pub fn loop_ns(&self) -> &Histogram {
        &self.loop_ns
    }

    /// The flight recorder holding (at most) the last anomaly dump.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Takes the parked flight dump, if an anomaly has fired.
    pub fn take_flight_dump(&self) -> Option<FlightDump> {
        self.flight.take()
    }

    /// The current OpenMetrics exposition.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}
