//! Thread-to-core pinning.
//!
//! ILAN requires 1:1 thread-to-core pinning so that its Performance Trace
//! Table can attribute timing differences to physical compute domains
//! (paper §3.5). On Linux we use `sched_setaffinity`; elsewhere, or when the
//! requested core does not exist (e.g. simulating a 64-core machine on a
//! laptop), pinning degrades gracefully according to the [`PinMode`].

use ilan_topology::CoreId;

/// Pinning behaviour of a thread pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PinMode {
    /// Pin each worker to its core when the OS exposes that core; silently
    /// leave workers unpinned otherwise. The default, and the right choice
    /// for functional testing on small machines.
    #[default]
    Auto,
    /// Never pin. Useful for benchmarking the runtime's scheduling logic in
    /// isolation from placement effects.
    Never,
    /// Require pinning: pool construction fails if any worker cannot be
    /// pinned. Use on the real target machine.
    Require,
}

/// Attempts to pin the calling thread to `core`. Returns whether the pin
/// took effect.
pub fn pin_current_thread(core: CoreId) -> bool {
    pin_impl(core)
}

#[cfg(target_os = "linux")]
fn pin_impl(core: CoreId) -> bool {
    // SAFETY: cpu_set_t is a plain bitmask struct; CPU_* are the glibc
    // macros re-exported by libc as inline functions. sched_setaffinity with
    // pid 0 affects only the calling thread.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        if core.index() >= libc::CPU_SETSIZE as usize {
            return false;
        }
        libc::CPU_SET(core.index(), &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_impl(_core: CoreId) -> bool {
    false
}

/// Number of CPUs the OS will let us pin to (0 if undeterminable).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn online_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_to_core_zero_succeeds_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(pin_current_thread(CoreId::new(0)));
        }
    }

    #[test]
    fn pin_to_absent_core_fails() {
        // Core 100000 exceeds CPU_SETSIZE and any real machine.
        assert!(!pin_current_thread(CoreId::new(100_000)));
    }

    #[test]
    fn online_cpus_positive() {
        assert!(online_cpus() >= 1);
    }

    #[test]
    fn default_mode_is_auto() {
        assert_eq!(PinMode::default(), PinMode::Auto);
    }
}
