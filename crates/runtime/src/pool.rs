//! The worker pool and taskloop execution engine.
//!
//! # Hot-path architecture
//!
//! The pool executes one taskloop at a time. All per-invocation state lives
//! in a persistent **dispatch arena** owned by the pool ([`RunData`] inside
//! [`Shared`]): the chunk table, the per-node injector set, the active-worker
//! flags and the completion latch are allocated once and reused, so a warm
//! invocation performs no heap allocation on the dispatch path.
//!
//! Workers sleep on private [`SleepSlot`]s (an eventcount each) instead of a
//! global mutex/condvar. The dispatcher publishes a fresh epoch token into
//! exactly the slots of the workers a loop activates, so a taskloop confined
//! to a 2-node mask never wakes the other nodes' workers at all. The token
//! encodes participation in its low bit — a worker woken without it (only
//! possible under [`WakeMode::Broadcast`]) goes straight back to sleep
//! without ever dereferencing the arena.
//!
//! Synchronisation protocol (the safety story for the `UnsafeCell` arena):
//!
//! 1. the dispatcher, holding the dispatch lock, mutates [`RunData`] while no
//!    worker is active (the previous invocation's exit latch has released);
//! 2. it then posts epoch tokens — the `SeqCst` epoch store in
//!    [`SleepSlot::post`] publishes every arena write to the workers' acquire
//!    loads in [`SleepSlot::wait`];
//! 3. a participating worker reads the arena only between receiving its
//!    token and decrementing the exit latch;
//! 4. the dispatcher blocks on the exit latch before touching the arena
//!    again (the latch decrement/`wait` pair is the closing AcqRel edge, so
//!    workers may flush their statistics with relaxed stores).

use crate::chunk::{ChunkAssignment, Grain};
use crate::latch::CountLatch;
use crate::metrics::PoolMetrics;
use crate::pin::{pin_current_thread, PinMode};
use crate::report::{LoopReport, NodeReport};
use crate::sleep::{Backoff, SleepSlot};
use crossbeam_deque::{Injector, Steal, Stealer, Worker as Deque};
use crossbeam_utils::CachePadded;
use ilan_faults::FaultPlan;
use ilan_metrics::{FlightDump, FlightReason, ShardedCounter};
use ilan_topology::{NodeId, NodeMask, Topology};
use ilan_trace::{EventKind, EventLog, FaultTag, TraceSet, DISPATCHER};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Inter-node steal policy of a hierarchical taskloop (paper §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealPolicy {
    /// Work-stealing confined to the chunk's assigned NUMA node.
    Strict,
    /// The stealable tail of each node's chunks may migrate to another node
    /// once that node has exhausted its own queues.
    Full,
}

/// How one taskloop invocation is executed.
#[derive(Clone, Debug)]
pub enum ExecMode {
    /// LLVM-default tasking baseline: one shared queue, every worker takes
    /// any chunk. Uses all workers.
    Flat,
    /// OpenMP `for schedule(static)` work-sharing: fixed contiguous slices,
    /// no queues, no stealing. Uses all workers.
    WorkSharing,
    /// ILAN hierarchical distribution: chunks pre-assigned to the nodes of
    /// `mask`, an initial fraction NUMA-strict, optional inter-node stealing
    /// of the tail.
    Hierarchical {
        /// Nodes eligible to execute the loop.
        mask: NodeMask,
        /// Total active threads, distributed evenly over the mask's nodes
        /// (each node activates its lowest cores first). Clamped to the
        /// cores available in the mask; 0 means "all cores of the mask".
        threads: usize,
        /// Fraction of each node's chunks that are NUMA-strict under
        /// [`StealPolicy::Full`]; ignored under `Strict` (everything is
        /// strict then).
        strict_fraction: f64,
        /// Whether the stealable tail may migrate across nodes.
        policy: StealPolicy,
    },
}

/// How the dispatcher wakes workers for a new invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WakeMode {
    /// Post the new epoch only to the workers the invocation activates;
    /// everyone else sleeps through it. The default.
    #[default]
    Targeted,
    /// Post to every worker, participating or not (the non-participants wake
    /// only to go back to sleep). This reproduces the wakeup cost of the old
    /// global-condvar broadcast and exists as an in-tree baseline for the
    /// overhead benchmarks; it is never faster than `Targeted`.
    Broadcast,
}

/// Loops of at most this many iterations (or resolving to a single chunk)
/// run inline on the calling thread by default: below this size the fixed
/// dispatch cost — wakeups, queue traffic, the implicit barrier — dwarfs any
/// parallel speedup. Tune per pool with [`PoolConfig::inline_threshold`].
pub const DEFAULT_INLINE_THRESHOLD: usize = 32;

/// Watchdog deadline armed automatically when a fault plan is installed
/// without an explicit [`PoolConfig::watchdog`] — long enough that a healthy
/// invocation (or one with only the plan's bounded temporary stalls) never
/// trips it, short enough that chaos tests stay fast.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_millis(25);

/// Per-worker participation claims (armed watchdog only): the low two bits
/// hold the state, the rest the invocation epoch. The epoch tag is what
/// makes the protocol safe against late wakers — a worker that slept through
/// its whole invocation finds the claim word re-tagged for a newer epoch and
/// its compare-exchange fails, so it can never wander into an arena that is
/// being rewritten.
const CLAIM_OPEN: u64 = 0;
const CLAIM_WORKER: u64 = 1;
const CLAIM_DISPATCHER: u64 = 2;

#[inline]
fn claim_word(epoch: u64, state: u64) -> u64 {
    (epoch << 2) | state
}

/// Pool construction parameters.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Machine model: one worker is spawned per topology core.
    pub topology: Topology,
    /// Pinning behaviour.
    pub pin: PinMode,
    /// Wakeup strategy for new invocations.
    pub wake: WakeMode,
    /// Loops with at most this many iterations execute inline on the caller
    /// (see [`DEFAULT_INLINE_THRESHOLD`]). Set to 0 to dispatch everything
    /// except single-chunk loops.
    pub inline_threshold: usize,
    /// Watchdog deadline per invocation: when the exit latch has not
    /// released and no chunk has completed for this long, the dispatcher
    /// escalates — first re-broadcasting wakeups, then claiming
    /// never-started workers and draining their chunks itself. `None`
    /// disarms the watchdog unless [`faults`](Self::faults) is set (a fault
    /// plan with dropped wakeups or permanent stalls *requires* one, so it
    /// auto-arms [`DEFAULT_WATCHDOG`]).
    pub watchdog: Option<Duration>,
    /// Deterministic fault plan for chaos testing (see `ilan-faults`).
    pub faults: Option<FaultPlan>,
    /// Whether the pool carries its always-on instrument panel
    /// ([`PoolMetrics`]): counters, histograms and the flight recorder.
    /// Default `true`; disabling exists for the overhead benchmark's
    /// metrics-off baseline.
    pub metrics: bool,
    /// Whether the flight recorder keeps the per-worker trace rings filled
    /// on untraced dispatched invocations, so an anomaly can dump the
    /// complete invocation retrospectively. Default `true`; requires
    /// [`metrics`](Self::metrics). Ring writes are the only cost until an
    /// anomaly actually fires.
    pub flight: bool,
}

impl PoolConfig {
    /// Configuration with default (auto) pinning, targeted wakeups and the
    /// default inline threshold.
    pub fn new(topology: Topology) -> Self {
        PoolConfig {
            topology,
            pin: PinMode::Auto,
            wake: WakeMode::default(),
            inline_threshold: DEFAULT_INLINE_THRESHOLD,
            watchdog: None,
            faults: None,
            metrics: true,
            flight: true,
        }
    }

    /// Sets the pinning mode.
    pub fn pin(mut self, pin: PinMode) -> Self {
        self.pin = pin;
        self
    }

    /// Sets the wakeup strategy.
    pub fn wake(mut self, wake: WakeMode) -> Self {
        self.wake = wake;
        self
    }

    /// Sets the sequential-inline threshold.
    pub fn inline_threshold(mut self, iters: usize) -> Self {
        self.inline_threshold = iters;
        self
    }

    /// Arms the watchdog with an explicit escalation deadline.
    pub fn watchdog(mut self, deadline: Duration) -> Self {
        self.watchdog = Some(deadline);
        self
    }

    /// Installs a deterministic fault plan (arming the watchdog with
    /// [`DEFAULT_WATCHDOG`] if no explicit deadline was set).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables or disables the instrument panel (default on). Disabling
    /// also disables the flight recorder.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Enables or disables the flight recorder's always-on rings
    /// (default on).
    pub fn flight(mut self, on: bool) -> Self {
        self.flight = on;
        self
    }
}

/// Errors from pool construction.
#[derive(Debug)]
pub enum PoolError {
    /// [`PinMode::Require`] was set and some worker could not be pinned.
    PinFailed {
        /// Index of the first core that could not be pinned.
        core: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::PinFailed { core } => {
                write!(f, "required pinning failed for core {core}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Erased pointer to the loop body closure.
///
/// Validity: the dispatching call does not return until every active worker
/// has left the loop (worker-exit latch), so the pointee outlives all
/// dereferences. Between invocations the arena parks a pointer to a static
/// no-op so it never dangles into a returned stack frame.
struct BodyPtr(*const (dyn Fn(Range<usize>) + Sync));
// SAFETY: the pointee is `Sync` and only shared for the duration of the
// dispatch call, which outlives all uses (see struct docs).
unsafe impl Send for BodyPtr {}
unsafe impl Sync for BodyPtr {}

fn noop_body(_: Range<usize>) {}

impl BodyPtr {
    fn noop() -> BodyPtr {
        static NOOP: fn(Range<usize>) = noop_body;
        BodyPtr(&NOOP as &(dyn Fn(Range<usize>) + Sync) as *const _)
    }
}

/// One chunk of a taskloop.
struct Chunk {
    range: Range<usize>,
    /// The node this chunk is assigned to (its data home under blocked
    /// first-touch initialisation; the mask assignment in hierarchical
    /// mode — matching the paper's definition of a migration).
    home: NodeId,
}

/// Which acquisition discipline the current invocation uses. The queues
/// themselves are persistent ([`QueueSet`]); this only selects among them.
#[derive(Clone, Copy)]
enum QueueKind {
    Flat,
    Hier { policy: StealPolicy },
    Static,
}

/// The pool's persistent injector set, reused by every invocation. Queues
/// are fully drained by the invocation that filled them (exactly-once
/// execution), so reuse needs no cleanup — a debug assertion checks.
struct QueueSet {
    flat: Injector<usize>,
    /// Per-node queue of NUMA-strict chunk indices.
    strict: Vec<Injector<usize>>,
    /// Per-node queue of chunks stealable across nodes.
    shared: Vec<Injector<usize>>,
}

impl QueueSet {
    fn new(num_nodes: usize) -> Self {
        QueueSet {
            flat: Injector::new(),
            strict: (0..num_nodes).map(|_| Injector::new()).collect(),
            shared: (0..num_nodes).map(|_| Injector::new()).collect(),
        }
    }

    #[cfg(debug_assertions)]
    fn is_empty(&self) -> bool {
        self.flat.is_empty()
            && self.strict.iter().all(Injector::is_empty)
            && self.shared.iter().all(Injector::is_empty)
    }
}

/// Per-node statistic counters. Each instance is wrapped in `CachePadded`
/// inside [`Shared::node_stats`] so two nodes' counters never share a cache
/// line (workers of different nodes would otherwise false-share on flush).
struct NodeAtomics {
    tasks: AtomicUsize,
    local_tasks: AtomicUsize,
    busy_ns: AtomicU64,
}

impl NodeAtomics {
    fn new() -> Self {
        NodeAtomics {
            tasks: AtomicUsize::new(0),
            local_tasks: AtomicUsize::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        self.tasks.store(0, Ordering::Relaxed);
        self.local_tasks.store(0, Ordering::Relaxed);
        self.busy_ns.store(0, Ordering::Relaxed);
    }
}

/// The dispatch arena: all mutable per-invocation state, reused across the
/// pool's lifetime. Mutated only by the dispatcher between invocations (see
/// the module-level protocol); read by participating workers during one.
struct RunData {
    body: BodyPtr,
    kind: QueueKind,
    chunks: Vec<Chunk>,
    /// Which workers participate in this invocation. Only the dispatcher
    /// reads this (to decide whom to wake); workers learn of participation
    /// from their epoch token's low bit.
    active: Vec<bool>,
    /// Per-worker contiguous chunk-index slices (work-sharing mode only).
    static_slices: Vec<Range<usize>>,
    threads: usize,
    /// Per-worker event rings; `None` outside traced invocations.
    trace: Option<TraceSet>,
    /// Rings kept from the previous traced invocation, reused when large
    /// enough so back-to-back traced loops do not reallocate.
    trace_cache: Option<TraceSet>,
    /// Trace epoch: event timestamps are nanoseconds since this instant.
    t0: Instant,
}

impl RunData {
    /// Records a worker event when tracing is on; a single predictable
    /// branch otherwise.
    #[inline]
    fn emit(&self, worker: usize, node: NodeId, kind: EventKind) {
        self.emit_at(worker, node, Instant::now(), kind);
    }

    /// Like [`emit`](Self::emit), but stamped with an [`Instant`] the caller
    /// already holds — the hot path reuses the clock reads it takes anyway
    /// (chunk timing, acquisition overhead) instead of paying one more per
    /// event.
    #[inline]
    fn emit_at(&self, worker: usize, node: NodeId, at: Instant, kind: EventKind) {
        if let Some(trace) = &self.trace {
            trace.ring(worker).push(
                worker as u32,
                node.index() as u32,
                at.duration_since(self.t0).as_nanos() as u64,
                kind,
            );
        }
    }
}

struct Shared {
    topology: Topology,
    shutdown: AtomicBool,
    /// Monotone invocation counter; `(epoch << 1) | participate` is the
    /// token posted into sleep slots.
    epoch: AtomicU64,
    /// One sleep slot per worker (each internally cache-padded).
    slots: Vec<SleepSlot>,
    /// Stealer handles onto every worker's private deque, indexed by worker
    /// (== core) id. Intra-node peers steal through these; remote steals go
    /// through the shared injectors only, so NUMA-strict chunks never leave
    /// their node once they reach a private deque.
    stealers: Vec<Stealer<usize>>,
    queues: QueueSet,
    /// The dispatch arena (see module docs for the access protocol).
    run: UnsafeCell<RunData>,
    /// Per-node counters, one cache line each.
    node_stats: Vec<CachePadded<NodeAtomics>>,
    migrations: CachePadded<AtomicUsize>,
    overhead_ns: CachePadded<AtomicU64>,
    /// Released when every active worker has left the loop; reset by the
    /// dispatcher between invocations.
    exit_latch: CountLatch,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Armed watchdog deadline; `None` disables all claim bookkeeping.
    watchdog: Option<Duration>,
    /// Installed fault plan, consulted on the dispatch and worker paths.
    faults: Option<FaultPlan>,
    /// Chunks completed in the current invocation; the watchdog re-arms its
    /// deadline while this is still advancing.
    progress: CachePadded<AtomicU64>,
    /// Per-worker participation claims, `claim_word(epoch, state)` (see the
    /// CLAIM_* constants). Only meaningful while the watchdog is armed.
    claims: Vec<AtomicU64>,
    /// The instrument panel; `None` only when `PoolConfig::metrics(false)`.
    metrics: Option<PoolMetrics>,
    /// Whether untraced dispatched invocations keep the trace rings filled
    /// for the flight recorder.
    flight: bool,
}

// SAFETY: the `UnsafeCell<RunData>` is governed by the epoch/latch protocol
// documented at module level — the dispatcher only takes `&mut` while no
// worker holds `&` (before posting tokens / after the exit latch releases),
// and workers only take `&` inside their participation window. Every other
// field is inherently Sync.
unsafe impl Sync for Shared {}

/// A pool of worker threads, one per topology core.
///
/// The pool executes one taskloop at a time (taskloops end with an implicit
/// barrier in the paper's execution model); concurrent [`taskloop`] calls
/// from different threads serialize on an internal lock.
///
/// [`taskloop`]: ThreadPool::taskloop
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    dispatch_lock: Mutex<()>,
    pinned_workers: usize,
    wake: WakeMode,
    inline_threshold: usize,
}

impl ThreadPool {
    /// Spawns one worker per topology core.
    pub fn new(config: PoolConfig) -> Result<Self, PoolError> {
        let cores = config.topology.num_cores();
        let num_nodes = config.topology.num_nodes();
        // One private deque per worker; the Worker end moves into its
        // thread, the Stealer ends are shared.
        let mut deques: Vec<Deque<usize>> = (0..cores).map(|_| Deque::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = deques.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            topology: config.topology.clone(),
            shutdown: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            slots: (0..cores).map(|_| SleepSlot::new()).collect(),
            stealers,
            queues: QueueSet::new(num_nodes),
            run: UnsafeCell::new(RunData {
                body: BodyPtr::noop(),
                kind: QueueKind::Flat,
                chunks: Vec::new(),
                active: Vec::new(),
                static_slices: Vec::new(),
                threads: 0,
                trace: None,
                trace_cache: None,
                t0: Instant::now(),
            }),
            node_stats: (0..num_nodes)
                .map(|_| CachePadded::new(NodeAtomics::new()))
                .collect(),
            migrations: CachePadded::new(AtomicUsize::new(0)),
            overhead_ns: CachePadded::new(AtomicU64::new(0)),
            exit_latch: CountLatch::new(0),
            panic: Mutex::new(None),
            // A fault plan without an explicit deadline auto-arms the
            // default watchdog: dropped wakeups and permanent stalls are
            // unrecoverable without one.
            watchdog: config
                .watchdog
                .or_else(|| config.faults.is_some().then_some(DEFAULT_WATCHDOG)),
            faults: config.faults.clone(),
            progress: CachePadded::new(AtomicU64::new(0)),
            claims: (0..cores).map(|_| AtomicU64::new(0)).collect(),
            metrics: config.metrics.then(|| PoolMetrics::new(cores)),
            flight: config.metrics && config.flight,
        });

        let pin_results: Arc<Vec<AtomicBool>> =
            Arc::new((0..cores).map(|_| AtomicBool::new(false)).collect());
        let ready = Arc::new(CountLatch::new(cores));

        let mut handles = Vec::with_capacity(cores);
        for (i, deque) in deques.drain(..).enumerate() {
            let shared = Arc::clone(&shared);
            let pin_results = Arc::clone(&pin_results);
            let ready = Arc::clone(&ready);
            let pin_mode = config.pin;
            let handle = std::thread::Builder::new()
                .name(format!("ilan-worker-{i}"))
                .spawn(move || {
                    if pin_mode != PinMode::Never {
                        let ok = pin_current_thread(ilan_topology::CoreId::new(i));
                        pin_results[i].store(ok, Ordering::Release);
                    }
                    // Register the thread handle before signalling ready: the
                    // ready latch orders it against the first post().
                    shared.slots[i].register(crate::sleep::thread_current());
                    ready.count_down();
                    worker_main(&shared, i, &deque);
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        ready.wait();

        let pinned = pin_results
            .iter()
            .filter(|r| r.load(Ordering::Acquire))
            .count();
        if config.pin == PinMode::Require && pinned < cores {
            let core = pin_results
                .iter()
                .position(|r| !r.load(Ordering::Acquire))
                .unwrap_or(0);
            // Tear the pool down before reporting failure.
            shutdown_workers(&shared);
            for h in handles {
                let _ = h.join();
            }
            return Err(PoolError::PinFailed { core });
        }

        Ok(ThreadPool {
            shared,
            handles,
            dispatch_lock: Mutex::new(()),
            pinned_workers: pinned,
            wake: config.wake,
            inline_threshold: config.inline_threshold,
        })
    }

    /// The pool's topology.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// Number of workers successfully pinned to their cores.
    pub fn pinned_workers(&self) -> usize {
        self.pinned_workers
    }

    /// Total worker count (== topology cores).
    pub fn num_workers(&self) -> usize {
        self.handles.len()
    }

    /// The pool's instrument panel, unless built with
    /// [`PoolConfig::metrics(false)`](PoolConfig::metrics).
    pub fn metrics(&self) -> Option<&PoolMetrics> {
        self.shared.metrics.as_ref()
    }

    /// Takes the flight recorder's parked anomaly dump, if one fired.
    pub fn take_flight_dump(&self) -> Option<FlightDump> {
        self.shared.metrics.as_ref()?.take_flight_dump()
    }

    /// The current OpenMetrics exposition (empty-but-valid when metrics
    /// are disabled).
    pub fn metrics_text(&self) -> String {
        self.shared
            .metrics
            .as_ref()
            .map_or_else(|| "# EOF\n".to_string(), |m| m.render())
    }

    /// Executes a taskloop over `range` with chunks of at most `grainsize`
    /// iterations, under the given execution mode. Blocks until every chunk
    /// has executed and all participating workers have quiesced (the
    /// taskloop's implicit barrier), then returns the invocation report.
    ///
    /// # Panics
    /// Re-raises any panic from the body, and panics if a hierarchical mode
    /// references an empty node mask.
    pub fn taskloop<F>(
        &self,
        range: Range<usize>,
        grainsize: usize,
        mode: ExecMode,
        body: F,
    ) -> LoopReport
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.taskloop_with(range, Grain::Size(grainsize), mode, body)
    }

    /// Like [`taskloop`](Self::taskloop) with an OpenMP-style [`Grain`]
    /// specification (`grainsize` / `num_tasks` / implementation default).
    pub fn taskloop_with<F>(
        &self,
        range: Range<usize>,
        grain: Grain,
        mode: ExecMode,
        body: F,
    ) -> LoopReport
    where
        F: Fn(Range<usize>) + Sync,
    {
        let mut report = LoopReport::default();
        self.run_loop(range, grain, mode, &body, false, &mut report);
        report
    }

    /// Like [`taskloop_with`](Self::taskloop_with), writing the statistics
    /// into a caller-provided report instead of returning a fresh one. The
    /// report's node vector is reused (cleared and refilled), so an
    /// iterative caller invoking many loops allocates nothing per
    /// invocation once warm.
    pub fn taskloop_into<F>(
        &self,
        range: Range<usize>,
        grain: Grain,
        mode: ExecMode,
        body: F,
        report: &mut LoopReport,
    ) where
        F: Fn(Range<usize>) + Sync,
    {
        self.run_loop(range, grain, mode, &body, false, report);
    }

    /// Like [`taskloop`](Self::taskloop), additionally recording every
    /// scheduler action (enqueues, pops, steals, chunk start/end, latch
    /// releases) into per-worker lock-free rings and returning the merged
    /// [`EventLog`] alongside the report. Traced loops always take the full
    /// dispatch path (never the sequential inline shortcut), since the
    /// point of tracing is to observe the scheduler.
    pub fn taskloop_traced<F>(
        &self,
        range: Range<usize>,
        grainsize: usize,
        mode: ExecMode,
        body: F,
    ) -> (LoopReport, EventLog)
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.taskloop_with_traced(range, Grain::Size(grainsize), mode, body)
    }

    /// Traced variant of [`taskloop_with`](Self::taskloop_with).
    pub fn taskloop_with_traced<F>(
        &self,
        range: Range<usize>,
        grain: Grain,
        mode: ExecMode,
        body: F,
    ) -> (LoopReport, EventLog)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let mut report = LoopReport::default();
        let log = self.run_loop(range, grain, mode, &body, true, &mut report);
        (report, log.expect("traced run always yields a log"))
    }

    fn run_loop(
        &self,
        range: Range<usize>,
        grain: Grain,
        mode: ExecMode,
        body: &(dyn Fn(Range<usize>) + Sync),
        traced: bool,
        report: &mut LoopReport,
    ) -> Option<EventLog> {
        let all_workers = self.num_workers();
        let len = range.len();
        let grainsize = grain.resolve(len, all_workers);
        let num_chunks = len.div_ceil(grainsize);

        // Validate hierarchical parameters before choosing a path, so the
        // inline shortcut rejects exactly what the dispatch path rejects.
        if let ExecMode::Hierarchical {
            mask,
            strict_fraction,
            ..
        } = &mode
        {
            assert!(!mask.is_empty(), "hierarchical mode needs a non-empty mask");
            assert!(
                (0.0..=1.0).contains(strict_fraction),
                "strict_fraction must be in [0,1]"
            );
        }

        // Sequential inline fast path: a loop too small to amortize a
        // dispatch — or one that is a single chunk and therefore sequential
        // anyway — runs on the calling thread with no wakeups, no queue
        // traffic and no trace-ring writes.
        if !traced && (len <= self.inline_threshold || num_chunks <= 1) {
            self.run_inline(range, grainsize, num_chunks, &mode, body, report);
            if let Some(m) = &self.shared.metrics {
                m.loops_inline.inc();
            }
            return None;
        }

        let _dispatch_guard = self.dispatch_lock.lock();
        let dispatch_start = Instant::now();
        let shared = &*self.shared;
        let topo = &shared.topology;
        let num_nodes = topo.num_nodes();

        // Chunks are placed on the mask's nodes in hierarchical mode (that
        // assignment defines a migration, per the paper); on the blocked
        // first-touch layout over all nodes otherwise, so locality
        // statistics are comparable across modes.
        let assignment = match &mode {
            ExecMode::Hierarchical { mask, .. } => ChunkAssignment::new(*mask, num_chunks.max(1)),
            _ => ChunkAssignment::new(topo.all_nodes(), num_chunks.max(1)),
        };

        {
            // SAFETY: dispatch lock held, and every worker of the previous
            // invocation has passed its exit-latch decrement (the previous
            // run_loop waited on the latch before returning), so no other
            // thread references the arena.
            let rd = unsafe { &mut *shared.run.get() };
            rd.t0 = Instant::now();

            // Rings are installed for traced runs and — the flight recorder's
            // always-on stance — for plain dispatched runs too, so an anomaly
            // can dump the complete invocation it occurred in. The cache
            // makes warm invocations allocation-free either way.
            rd.trace = if traced || shared.flight {
                // Generous ring bounds: a worker emits at most one
                // acquisition, one start, and one end per chunk, plus its
                // latch release and a possible steal-refusal marker; the
                // dispatcher one enqueue per chunk — plus, under an armed
                // watchdog, fault markers, degradation events and a full
                // drain (acquire+start+end per chunk) in the worst case.
                let need_worker = 3 * num_chunks + 8;
                let need_disp = if shared.watchdog.is_some() {
                    4 * num_chunks + 2 * all_workers + num_nodes + 8
                } else {
                    num_chunks + 4
                };
                let mut t = match rd.trace_cache.take() {
                    Some(t)
                        if t.num_rings() == all_workers
                            && t.worker_capacity() >= need_worker
                            && t.dispatcher_capacity() >= need_disp =>
                    {
                        t
                    }
                    _ => TraceSet::new(all_workers, need_worker, need_disp),
                };
                t.reset();
                Some(t)
            } else {
                None
            };

            rd.chunks.clear();
            let mut lo = range.start;
            let mut i = 0usize;
            while lo < range.end {
                let hi = (lo + grainsize).min(range.end);
                rd.chunks.push(Chunk {
                    range: lo..hi,
                    home: assignment.node_of_chunk(i),
                });
                lo = hi;
                i += 1;
            }
            debug_assert_eq!(rd.chunks.len(), num_chunks);

            rd.active.clear();
            rd.active.resize(all_workers, false);
            #[cfg(debug_assertions)]
            debug_assert!(
                shared.queues.is_empty(),
                "queues left dirty by the previous invocation"
            );

            // One timestamp for the whole placement loop: the enqueues span
            // a few microseconds and ring order already fixes their sequence,
            // so per-chunk clock reads buy nothing on the dispatch path.
            let enq_ns = rd.t0.elapsed().as_nanos() as u64;
            rd.kind = match &mode {
                ExecMode::Flat => {
                    rd.active.iter_mut().for_each(|a| *a = true);
                    for (idx, c) in rd.chunks.iter().enumerate() {
                        shared.queues.flat.push(idx);
                        emit_enqueue(&rd.trace, enq_ns, idx, c.home, false);
                    }
                    QueueKind::Flat
                }
                ExecMode::WorkSharing => {
                    rd.active.iter_mut().for_each(|a| *a = true);
                    rd.static_slices.clear();
                    for w in 0..all_workers {
                        let lo = w * num_chunks / all_workers;
                        let hi = (w + 1) * num_chunks / all_workers;
                        rd.static_slices.push(lo..hi);
                    }
                    for (idx, c) in rd.chunks.iter().enumerate() {
                        emit_enqueue(&rd.trace, enq_ns, idx, c.home, false);
                    }
                    QueueKind::Static
                }
                ExecMode::Hierarchical {
                    mask,
                    threads,
                    strict_fraction,
                    policy,
                } => {
                    // Distribute threads over the mask's nodes, lowest cores
                    // first within each node.
                    let k = mask.count();
                    let max_threads = k * topo.cores_per_node();
                    let want = if *threads == 0 {
                        max_threads
                    } else {
                        (*threads).min(max_threads)
                    };
                    for (rank, node) in mask.iter().enumerate() {
                        let per = want / k + usize::from(rank < want % k);
                        for core in topo.cores_of_node(node).take(per) {
                            rd.active[core.index()] = true;
                        }
                    }
                    // Ensure at least the primary of the first node is active.
                    if !rd.active.iter().any(|&a| a) {
                        rd.active[topo.primary_core(mask.first().unwrap()).index()] = true;
                    }

                    // Enqueue each node's contiguous chunk slice: the first
                    // `strict_count` stay NUMA-strict, the tail is stealable.
                    for (rank, node) in mask.iter().enumerate() {
                        let idxs = assignment.chunks_of_rank(rank);
                        let strict_count = match policy {
                            StealPolicy::Strict => idxs.len(),
                            StealPolicy::Full => {
                                ((idxs.len() as f64) * strict_fraction).round() as usize
                            }
                        };
                        for (j, idx) in idxs.enumerate() {
                            let strict = j < strict_count;
                            if strict {
                                shared.queues.strict[node.index()].push(idx);
                            } else {
                                shared.queues.shared[node.index()].push(idx);
                            }
                            emit_enqueue(&rd.trace, enq_ns, idx, node, strict);
                        }
                    }
                    QueueKind::Hier { policy: *policy }
                }
            };

            rd.threads = rd.active.iter().filter(|&&a| a).count();
            // SAFETY: lifetime extension only; validity argued on BodyPtr.
            rd.body = BodyPtr(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(Range<usize>) + Sync),
                    *const (dyn Fn(Range<usize>) + Sync),
                >(body as *const _)
            });

            for s in &shared.node_stats {
                s.reset();
            }
            shared.migrations.store(0, Ordering::Relaxed);
            shared.overhead_ns.store(0, Ordering::Relaxed);
            shared.exit_latch.reset(rd.threads);
        }

        // Publication: the arena is complete; from here only shared
        // references exist until the exit latch releases.
        // SAFETY: the `&mut` above has ended; workers also only take `&`.
        let rd = unsafe { &*shared.run.get() };
        let start = Instant::now();
        let epoch = shared.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let run_token = (epoch << 1) | 1;
        let idle_token = epoch << 1;
        if shared.watchdog.is_some() {
            // Claim/progress bookkeeping for this epoch. At this point every
            // active worker's claim holds WORKER or DISPATCHER of an older
            // epoch (an invocation only ends once each active slot was
            // claimed one way or the other), so re-opening for this epoch
            // races nothing; the token posts below publish these stores.
            shared.progress.store(0, Ordering::Relaxed);
            for (i, &a) in rd.active.iter().enumerate() {
                if a {
                    shared.claims[i].store(claim_word(epoch, CLAIM_OPEN), Ordering::Relaxed);
                }
            }
        }
        // Chaos: record the plan's scheduled faults for this invocation on
        // the dispatcher ring, then post wakeups — skipping any the plan
        // drops (the watchdog's broadcast escalation repairs those). The
        // count feeds the faults-injected counter and (as an anomaly) the
        // flight recorder, whether or not rings are installed.
        let mut faults_this_run: u64 = 0;
        if let Some(plan) = &shared.faults {
            for &w in plan.stalls().keys() {
                if (w as usize) < rd.active.len() && rd.active[w as usize] {
                    faults_this_run += 1;
                    if rd.trace.is_some() {
                        let node = topo.node_of_core(ilan_topology::CoreId::new(w as usize));
                        emit_dispatcher(
                            rd,
                            node.index() as u32,
                            EventKind::FaultInjected {
                                fault: FaultTag::WorkerStall,
                                target: w,
                            },
                        );
                    }
                }
            }
            for &n in plan.slow_nodes().keys() {
                if (n as usize) < num_nodes {
                    faults_this_run += 1;
                    if rd.trace.is_some() {
                        emit_dispatcher(
                            rd,
                            n,
                            EventKind::FaultInjected {
                                fault: FaultTag::SlowNode,
                                target: n,
                            },
                        );
                    }
                }
            }
        }
        let drops_wakeup = |i: usize| {
            shared
                .faults
                .as_ref()
                .is_some_and(|p| p.drops_wakeup(epoch, i as u32))
        };
        let mut wakeup_posts: u64 = 0;
        for (i, &a) in rd.active.iter().enumerate() {
            if a {
                if drops_wakeup(i) {
                    faults_this_run += 1;
                    let node = topo.node_of_core(ilan_topology::CoreId::new(i));
                    emit_dispatcher(
                        rd,
                        node.index() as u32,
                        EventKind::FaultInjected {
                            fault: FaultTag::DroppedWakeup,
                            target: i as u32,
                        },
                    );
                    continue;
                }
                shared.slots[i].post(run_token);
                wakeup_posts += 1;
            } else if self.wake == WakeMode::Broadcast {
                shared.slots[i].post(idle_token);
                wakeup_posts += 1;
            }
        }
        let dispatch_ns = dispatch_start.elapsed().as_nanos() as u64;
        let degraded_stage = match shared.watchdog {
            None => {
                shared.exit_latch.wait();
                0
            }
            Some(deadline) => guarded_wait(shared, rd, epoch, run_token, idle_token, deadline),
        };
        let makespan = start.elapsed();

        if let Some(payload) = shared.panic.lock().take() {
            std::panic::resume_unwind(payload);
        }

        report.makespan = makespan;
        report.sched_overhead = Duration::from_nanos(shared.overhead_ns.load(Ordering::Acquire));
        report.nodes.clear();
        report
            .nodes
            .extend(shared.node_stats.iter().map(|s| NodeReport {
                tasks: s.tasks.load(Ordering::Acquire),
                local_tasks: s.local_tasks.load(Ordering::Acquire),
                busy: Duration::from_nanos(s.busy_ns.load(Ordering::Acquire)),
            }));
        report.migrations = shared.migrations.load(Ordering::Acquire);
        report.threads = rd.threads;
        report.degraded = degraded_stage > 0;
        // The report's defining relation: a chunk is either local to the
        // node that ran it or it migrated there, never both, never neither.
        debug_assert_eq!(
            report.nodes.iter().map(|n| n.tasks).sum::<usize>(),
            report.nodes.iter().map(|n| n.local_tasks).sum::<usize>() + report.migrations,
            "LoopReport inconsistent: tasks != local_tasks + migrations"
        );

        // Dispatcher-side metrics: a few relaxed counter bumps and two
        // histogram samples per dispatched invocation. The tail tracker
        // owns `loop_ns`, so observing the makespan also records it.
        let mut tail_breach: Option<(u64, u64)> = None;
        if let Some(m) = &shared.metrics {
            m.loops_dispatched.inc();
            m.dispatch_ns.record(dispatch_ns);
            match self.wake {
                WakeMode::Targeted => m.wakeups_targeted.add(wakeup_posts),
                WakeMode::Broadcast => m.wakeups_broadcast.add(wakeup_posts),
            }
            match degraded_stage {
                1 => m.degraded_stage1.inc(),
                2 => m.degraded_stage2.inc(),
                _ => {}
            }
            if faults_this_run > 0 {
                m.faults_injected.add(faults_this_run);
            }
            let mk = makespan.as_nanos() as u64;
            if let Some(threshold_ns) = m.tail.observe(mk) {
                tail_breach = Some((mk, threshold_ns));
            }
        }

        // SAFETY: all workers have quiesced (latch released above); the
        // shared reborrow `rd` is dead past this point.
        let rd = unsafe { &mut *shared.run.get() };
        rd.body = BodyPtr::noop();
        let collected = rd.trace.take();
        if traced {
            return collected.map(|t| {
                let log = t.collect(num_nodes);
                rd.trace_cache = Some(t);
                log
            });
        }

        // Flight recorder: on an anomalous untraced invocation, collect the
        // rings retrospectively (the only time an untraced run pays for log
        // collection) and park the dump. Reason priority mirrors severity:
        // a degradation outranks the injected fault that caused it, which
        // outranks a mere slow tail.
        if let Some(m) = &shared.metrics {
            let reason = if degraded_stage > 0 {
                Some(FlightReason::Degraded {
                    stage: degraded_stage,
                })
            } else if faults_this_run > 0 {
                Some(FlightReason::FaultInjected {
                    count: faults_this_run,
                })
            } else {
                tail_breach.map(|(observed_ns, threshold_ns)| FlightReason::TailBreach {
                    observed_ns,
                    threshold_ns,
                })
            };
            if let Some(reason) = reason {
                m.flight_triggers.inc();
                match collected {
                    Some(t) => {
                        if m.flight.wants_capture() {
                            let log = t.collect(num_nodes);
                            m.flight.capture(reason, log, m.registry().render());
                        } else {
                            m.flight.note_trigger();
                        }
                        rd.trace_cache = Some(t);
                    }
                    None => m.flight.note_trigger(),
                }
                return None;
            }
        }
        if let Some(t) = collected {
            rd.trace_cache = Some(t);
        }
        None
    }

    /// The sequential fast path: executes every chunk on the calling thread,
    /// attributing each to its assigned home node (which it trivially
    /// executes "on", so the loop is fully local and migration-free).
    fn run_inline(
        &self,
        range: Range<usize>,
        grainsize: usize,
        num_chunks: usize,
        mode: &ExecMode,
        body: &(dyn Fn(Range<usize>) + Sync),
        report: &mut LoopReport,
    ) {
        let topo = self.topology();
        report.nodes.clear();
        report.nodes.resize(topo.num_nodes(), NodeReport::default());

        let assignment = match mode {
            ExecMode::Hierarchical { mask, .. } => ChunkAssignment::new(*mask, num_chunks.max(1)),
            _ => ChunkAssignment::new(topo.all_nodes(), num_chunks.max(1)),
        };

        let start = Instant::now();
        let mut lo = range.start;
        let mut i = 0usize;
        while lo < range.end {
            let hi = (lo + grainsize).min(range.end);
            let home = assignment.node_of_chunk(i);
            let body_start = Instant::now();
            body(lo..hi);
            let elapsed = body_start.elapsed();
            let n = &mut report.nodes[home.index()];
            n.tasks += 1;
            n.local_tasks += 1;
            n.busy += elapsed;
            lo = hi;
            i += 1;
        }
        report.makespan = start.elapsed();
        report.sched_overhead = Duration::ZERO;
        report.migrations = 0;
        report.threads = 1;
        report.degraded = false;
    }
}

/// Wakes every worker for shutdown: the posted token has the participate
/// bit clear, so woken workers check the shutdown flag and exit.
fn shutdown_workers(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    let epoch = shared.epoch.fetch_add(1, Ordering::Relaxed) + 1;
    for slot in &shared.slots {
        slot.post(epoch << 1);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        shutdown_workers(&self.shared);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Records one chunk-placement event on the dispatcher ring, if tracing.
/// `at_ns` is a timestamp the dispatch loop read once for all placements.
fn emit_enqueue(trace: &Option<TraceSet>, at_ns: u64, chunk: usize, home: NodeId, strict: bool) {
    if let Some(trace) = trace {
        trace.dispatcher().push(
            DISPATCHER,
            home.index() as u32,
            at_ns,
            EventKind::ChunkEnqueue {
                chunk: chunk as u32,
                home: home.index() as u32,
                strict,
            },
        );
    }
}

/// Records an event on the dispatcher's ring, if tracing.
fn emit_dispatcher(rd: &RunData, node: u32, kind: EventKind) {
    if let Some(trace) = &rd.trace {
        trace
            .dispatcher()
            .push(DISPATCHER, node, rd.t0.elapsed().as_nanos() as u64, kind);
    }
}

/// Deadline-bounded latch wait with two escalation stages. Returns the
/// highest escalation stage reached (0 = finished without help).
///
/// Stage 0 waits out `deadline`, re-arming while chunks keep completing —
/// slow progress is not a stall. Stage 1 degrades `WakeMode::Targeted` to a
/// broadcast re-post of the same tokens (repairing dropped wakeups;
/// re-posting is idempotent because `SleepSlot::wait` only returns on an
/// epoch *change*). Stage 2 claims every active worker that never started
/// participating and executes their chunks on the dispatcher, counting the
/// latch down on their behalf, then waits unboundedly for the workers that
/// did start.
fn guarded_wait(
    shared: &Shared,
    rd: &RunData,
    epoch: u64,
    run_token: u64,
    idle_token: u64,
    deadline: Duration,
) -> u8 {
    let mut last_progress = shared.progress.load(Ordering::Relaxed);
    loop {
        if shared.exit_latch.wait_for(deadline) {
            return 0;
        }
        let now = shared.progress.load(Ordering::Relaxed);
        if now == last_progress {
            break;
        }
        last_progress = now;
    }

    // Stage 1: broadcast re-post.
    emit_dispatcher(rd, 0, EventKind::Degraded { stage: 1, count: 0 });
    for (i, &a) in rd.active.iter().enumerate() {
        shared.slots[i].post(if a { run_token } else { idle_token });
    }
    let mut last_progress = shared.progress.load(Ordering::Relaxed);
    loop {
        if shared.exit_latch.wait_for(deadline) {
            return 1;
        }
        let now = shared.progress.load(Ordering::Relaxed);
        if now == last_progress {
            break;
        }
        last_progress = now;
    }

    // Stage 2: claim-and-drain. The compare-exchange races the claimed
    // worker's own participation CAS; whoever wins owns that slot's latch
    // decrement, so the count stays exact either way.
    let mut claimed: Vec<usize> = Vec::new();
    for (i, &a) in rd.active.iter().enumerate() {
        if a && shared.claims[i]
            .compare_exchange(
                claim_word(epoch, CLAIM_OPEN),
                claim_word(epoch, CLAIM_DISPATCHER),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            claimed.push(i);
        }
    }
    if !claimed.is_empty() {
        emit_dispatcher(
            rd,
            0,
            EventKind::Degraded {
                stage: 2,
                count: claimed.len() as u32,
            },
        );
        drain_on_dispatcher(shared, rd, &claimed);
        for _ in &claimed {
            shared.exit_latch.count_down();
        }
    }
    // Whoever remains did start participating and will finish: wait them out.
    shared.exit_latch.wait();
    2
}

/// Executes all work reachable from the dispatcher on behalf of `claimed`
/// (never-started) workers. In work-sharing mode that is exactly their
/// static slices; in the queued modes the claimed workers own nothing yet,
/// so the drain empties every injector and private deque it can reach —
/// healthy workers racing it is fine, the queues are exactly-once.
fn drain_on_dispatcher(shared: &Shared, rd: &RunData, claimed: &[usize]) {
    if let QueueKind::Static = rd.kind {
        for &i in claimed {
            for chunk_idx in rd.static_slices[i].clone() {
                execute_chunk_on_dispatcher(shared, rd, chunk_idx);
            }
        }
        return;
    }
    let deque: Deque<usize> = Deque::new_fifo();
    loop {
        let next = deque.pop().or_else(|| {
            if let Some(i) = batch_steal_until(&shared.queues.flat, &deque) {
                return Some(i);
            }
            for q in shared
                .queues
                .strict
                .iter()
                .chain(shared.queues.shared.iter())
            {
                if let Some(i) = batch_steal_until(q, &deque) {
                    return Some(i);
                }
            }
            for s in &shared.stealers {
                if let Some(i) = peer_steal_until(s, &deque) {
                    return Some(i);
                }
            }
            None
        });
        let Some(chunk_idx) = next else { break };
        execute_chunk_on_dispatcher(shared, rd, chunk_idx);
    }
}

/// Executes one chunk on the dispatcher, attributed to the chunk's home node
/// (the drain substitutes for that node's claimed worker, so the chunk
/// counts as local there and the audit's confinement rules keep holding).
fn execute_chunk_on_dispatcher(shared: &Shared, rd: &RunData, chunk_idx: usize) {
    let chunk = &rd.chunks[chunk_idx];
    let node = chunk.home.index() as u32;
    if let Some(m) = &shared.metrics {
        // The drain substitutes for the claimed worker on the chunk's home
        // node, so the acquisition counts as a local pop — keeping the
        // counters equal to the trace's steal matrix even in degraded runs.
        m.acq_local_pop.add(0, 1);
    }
    emit_dispatcher(
        rd,
        node,
        EventKind::LocalPop {
            chunk: chunk_idx as u32,
        },
    );
    emit_dispatcher(
        rd,
        node,
        EventKind::ChunkStart {
            chunk: chunk_idx as u32,
        },
    );
    let body_start = Instant::now();
    // SAFETY: same argument as `execute_chunk` — the dispatch call keeps the
    // body alive until this very function's caller finishes the invocation.
    let body = unsafe { &*rd.body.0 };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| body(chunk.range.clone())));
    let elapsed = body_start.elapsed();
    if let Err(payload) = result {
        let mut slot = shared.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    let stats = &shared.node_stats[chunk.home.index()];
    stats.tasks.fetch_add(1, Ordering::Relaxed);
    stats.local_tasks.fetch_add(1, Ordering::Relaxed);
    stats
        .busy_ns
        .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    emit_dispatcher(
        rd,
        node,
        EventKind::ChunkEnd {
            chunk: chunk_idx as u32,
        },
    );
}

/// Parks a permanently stalled worker until the dispatcher claims its slot
/// (stage-2 degradation), the invocation is superseded, or shutdown.
fn wait_out_permanent_stall(shared: &Shared, index: usize, epoch: u64, seen: u64) {
    let released = claim_word(epoch, CLAIM_DISPATCHER);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.claims[index].load(Ordering::Acquire) == released {
            return;
        }
        if shared.slots[index].epoch() != seen {
            // A newer token was posted: the old invocation is over (its
            // latch could only release once this slot was claimed).
            return;
        }
        std::thread::sleep(Duration::from_micros(50));
    }
}

fn worker_main(shared: &Shared, index: usize, deque: &Deque<usize>) {
    let mut seen = 0u64;
    loop {
        let park_start = Instant::now();
        seen = shared.slots[index].wait(seen);
        let park_ns = park_start.elapsed().as_nanos() as u64;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if seen & 1 == 0 {
            // Woken without the participate bit (broadcast mode, or a spurious
            // epoch bump): this invocation is not ours — and crucially we must
            // not read the arena, whose contents we were never published.
            continue;
        }
        let epoch = seen >> 1;
        // Chaos: scheduled stalls fire before any arena access.
        if let Some(plan) = &shared.faults {
            if let Some(spec) = plan.stall_of(index as u32) {
                if spec.permanent {
                    // Never participate; the watchdog claims this slot and
                    // drains on our behalf, so touching the latch here would
                    // double-count.
                    wait_out_permanent_stall(shared, index, epoch, seen);
                    continue;
                }
                std::thread::sleep(Duration::from_nanos(spec.delay_ns));
            }
        }
        if shared.watchdog.is_some() {
            // Claim participation for this epoch. Losing the race means the
            // dispatcher already drained for us (we woke too late) — or the
            // claim word was re-tagged for a newer epoch entirely, in which
            // case the arena may be mid-rewrite and must not be read.
            let open = claim_word(epoch, CLAIM_OPEN);
            let mine = claim_word(epoch, CLAIM_WORKER);
            if shared.claims[index]
                .compare_exchange(open, mine, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
        }
        {
            // SAFETY: the participate bit proves the dispatcher posted this
            // epoch for us after completing its arena writes (release via the
            // slot epoch store); the dispatcher takes no `&mut` until we pass
            // the exit-latch decrement below.
            let run = unsafe { &*shared.run.get() };
            let done_at = work(shared, run, index, deque, park_ns);
            let node = shared
                .topology
                .node_of_core(ilan_topology::CoreId::new(index));
            run.emit_at(index, node, done_at, EventKind::LatchRelease);
        }
        shared.exit_latch.count_down();
        debug_assert!(deque.pop().is_none(), "worker left chunks in its deque");
    }
}

/// Statistics a worker accumulates privately during one invocation and
/// flushes exactly once at the end — the hot loop touches no shared counter,
/// so workers never contend (or false-share) on statistics cache lines.
#[derive(Default)]
struct WorkerTally {
    tasks: usize,
    local_tasks: usize,
    busy_ns: u64,
    migrations: usize,
    overhead_ns: u64,
    park_ns: u64,
    local_pops: u64,
    intra_steals: u64,
    inter_steals: u64,
    attempts_local: u64,
    attempts_remote: u64,
    hits_local: u64,
    hits_remote: u64,
}

impl WorkerTally {
    /// Mirrors [`acquisition_kind`]'s classification, so the metrics
    /// counters and the trace's steal matrix agree by construction.
    fn count_acquisition(&mut self, migrated: bool, from_peer: bool) {
        if migrated {
            self.inter_steals += 1;
        } else if from_peer {
            self.intra_steals += 1;
        } else {
            self.local_pops += 1;
        }
    }

    /// Relaxed stores suffice: the exit-latch decrement (AcqRel) that
    /// follows the flush is what the dispatcher's latch wait synchronises
    /// with before reading.
    fn flush(self, shared: &Shared, my_node: NodeId, worker: usize) {
        let stats = &shared.node_stats[my_node.index()];
        stats.tasks.fetch_add(self.tasks, Ordering::Relaxed);
        stats
            .local_tasks
            .fetch_add(self.local_tasks, Ordering::Relaxed);
        stats.busy_ns.fetch_add(self.busy_ns, Ordering::Relaxed);
        shared
            .migrations
            .fetch_add(self.migrations, Ordering::Relaxed);
        shared
            .overhead_ns
            .fetch_add(self.overhead_ns, Ordering::Relaxed);
        if let Some(m) = &shared.metrics {
            m.park_ns.record(self.park_ns);
            // Zero tallies stay unflushed: on the common no-steal invocation
            // this is one RMW (the local pops), not seven.
            let add = |c: &ShardedCounter, n: u64| {
                if n > 0 {
                    c.add(worker, n);
                }
            };
            add(&m.acq_local_pop, self.local_pops);
            add(&m.acq_intra_steal, self.intra_steals);
            add(&m.acq_inter_steal, self.inter_steals);
            add(&m.steal_attempts_local, self.attempts_local);
            add(&m.steal_attempts_remote, self.attempts_remote);
            add(&m.steal_hits_local, self.hits_local);
            add(&m.steal_hits_remote, self.hits_remote);
        }
    }
}

/// Executes one chunk and records its statistics into the worker's tally.
fn execute_chunk(
    shared: &Shared,
    run: &RunData,
    chunk_idx: usize,
    worker: usize,
    my_node: NodeId,
    migrated: bool,
    tally: &mut WorkerTally,
) {
    let chunk = &run.chunks[chunk_idx];
    let body_start = Instant::now();
    run.emit_at(
        worker,
        my_node,
        body_start,
        EventKind::ChunkStart {
            chunk: chunk_idx as u32,
        },
    );
    // SAFETY: the dispatcher keeps the body alive until exit_latch releases,
    // which happens after this call returns.
    let body = unsafe { &*run.body.0 };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| body(chunk.range.clone())));
    let mut elapsed = body_start.elapsed();

    if let Err(payload) = result {
        let mut slot = shared.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    // Chaos: a slowed node pads each chunk to `elapsed × factor`, modelling
    // a degraded memory/compute path. Spinning (not sleeping) keeps the pad
    // precise at microsecond scales.
    if let Some(plan) = &shared.faults {
        let factor = plan.node_slowdown(my_node.index() as u32);
        if factor > 1.0 {
            let target = elapsed.mul_f64(factor);
            while body_start.elapsed() < target {
                std::hint::spin_loop();
            }
            elapsed = target;
        }
    }

    tally.busy_ns += elapsed.as_nanos() as u64;
    tally.tasks += 1;
    if chunk.home == my_node {
        tally.local_tasks += 1;
    }
    if migrated {
        tally.migrations += 1;
    }
    run.emit_at(
        worker,
        my_node,
        body_start + elapsed,
        EventKind::ChunkEnd {
            chunk: chunk_idx as u32,
        },
    );
    if shared.watchdog.is_some() {
        // Progress heartbeat: the watchdog re-arms its deadline while this
        // advances, so slow invocations are never mistaken for stalled ones.
        shared.progress.fetch_add(1, Ordering::Relaxed);
    }
}

/// Pops or steals chunk indices until no work is reachable for this worker.
/// Returns the instant the worker observed no more reachable work, so the
/// caller can stamp its latch-release event without another clock read.
fn work(
    shared: &Shared,
    run: &RunData,
    index: usize,
    deque: &Deque<usize>,
    park_ns: u64,
) -> Instant {
    let topo = &shared.topology;
    let my_core = ilan_topology::CoreId::new(index);
    let my_node = topo.node_of_core(my_core);
    let mut tally = WorkerTally {
        park_ns,
        ..WorkerTally::default()
    };

    if let QueueKind::Static = run.kind {
        // Work-sharing: drain the private slice, nothing to steal.
        for chunk_idx in run.static_slices[index].clone() {
            let migrated = run.chunks[chunk_idx].home != my_node;
            tally.count_acquisition(migrated, false);
            if run.trace.is_some() {
                run.emit(
                    index,
                    my_node,
                    acquisition_kind(run, chunk_idx, my_node, None),
                );
            }
            execute_chunk(shared, run, chunk_idx, index, my_node, migrated, &mut tally);
        }
        tally.flush(shared, my_node, index);
        return Instant::now();
    }

    let done_at;
    loop {
        let acquire_start = Instant::now();
        // Fast path: the private deque (filled by earlier batch steals).
        let acquired = match deque.pop() {
            Some(i) => Some((i, None)),
            None => acquire(shared, run, index, my_node, topo, deque, &mut tally),
        };
        let acquire_elapsed = acquire_start.elapsed();
        tally.overhead_ns += acquire_elapsed.as_nanos() as u64;
        let Some((chunk_idx, victim)) = acquired else {
            done_at = acquire_start + acquire_elapsed;
            break;
        };
        // A chunk migrated iff it executes away from its assigned node —
        // regardless of which queue it physically travelled through (a peer's
        // deque may hold chunks that were batch-stolen from a remote node).
        let migrated = run.chunks[chunk_idx].home != my_node;
        tally.count_acquisition(migrated, victim.is_some());
        if run.trace.is_some() {
            run.emit_at(
                index,
                my_node,
                acquire_start + acquire_elapsed,
                acquisition_kind(run, chunk_idx, my_node, victim),
            );
        }
        execute_chunk(shared, run, chunk_idx, index, my_node, migrated, &mut tally);
    }

    tally.flush(shared, my_node, index);
    done_at
}

/// Classifies an acquisition by its locality outcome: crossing nodes is an
/// inter-node steal (== one migration), a same-node peer-deque grab is an
/// intra-node steal, anything else is a local pop.
fn acquisition_kind(
    run: &RunData,
    chunk_idx: usize,
    my_node: NodeId,
    victim: Option<usize>,
) -> EventKind {
    let chunk = chunk_idx as u32;
    let home = run.chunks[chunk_idx].home;
    if home != my_node {
        EventKind::InterNodeSteal {
            chunk,
            from: home.index() as u32,
        }
    } else if let Some(v) = victim {
        EventKind::IntraNodeSteal {
            chunk,
            victim: v as u32,
        }
    } else {
        EventKind::LocalPop { chunk }
    }
}

/// One acquisition sweep when the private deque is empty. Batch steals from
/// injectors refill the deque (amortizing synchronization, like LLVM's
/// taskloop splitting); peer-deque steals stay within the NUMA node so
/// strict chunks never migrate. Returns the chunk index plus the worker it
/// was taken from, for peer-deque steals; the caller derives migration from
/// the chunk's assigned home (a peer's deque can hold chunks it had itself
/// batch-stolen from a remote node).
fn acquire(
    shared: &Shared,
    run: &RunData,
    index: usize,
    my_node: NodeId,
    topo: &Topology,
    deque: &Deque<usize>,
    tally: &mut WorkerTally,
) -> Option<(usize, Option<usize>)> {
    match run.kind {
        QueueKind::Flat => {
            tally.attempts_local += 1;
            if let Some(i) = batch_steal_until(&shared.queues.flat, deque) {
                tally.hits_local += 1;
                return Some((i, None));
            }
            // Steal from peer deques anywhere (the flat baseline is
            // NUMA-oblivious), scanning from the next worker around. Probe
            // scope follows the victim's node, not the queue the chunk was
            // assigned to — it measures where the probe traffic lands.
            let n = shared.stealers.len();
            for k in 1..n {
                let v = (index + k) % n;
                let remote = topo.node_of_core(ilan_topology::CoreId::new(v)) != my_node;
                if remote {
                    tally.attempts_remote += 1;
                } else {
                    tally.attempts_local += 1;
                }
                if let Some(i) = peer_steal_until(&shared.stealers[v], deque) {
                    if remote {
                        tally.hits_remote += 1;
                    } else {
                        tally.hits_local += 1;
                    }
                    return Some((i, Some(v)));
                }
            }
            None
        }
        QueueKind::Hier { policy } => {
            tally.attempts_local += 1;
            if let Some(i) = batch_steal_until(&shared.queues.strict[my_node.index()], deque) {
                tally.hits_local += 1;
                return Some((i, None));
            }
            tally.attempts_local += 1;
            if let Some(i) = batch_steal_until(&shared.queues.shared[my_node.index()], deque) {
                tally.hits_local += 1;
                return Some((i, None));
            }
            // Intra-node peer deques (chunks there stay on this node unless
            // the peer had already pulled them across).
            for peer in topo.cores_of_node(my_node) {
                if peer.index() != index {
                    tally.attempts_local += 1;
                    if let Some(i) = peer_steal_until(&shared.stealers[peer.index()], deque) {
                        tally.hits_local += 1;
                        return Some((i, Some(peer.index())));
                    }
                }
            }
            if policy == StealPolicy::Full {
                // Chaos: a refusing worker declines the whole remote sweep
                // and idles instead, shifting its share onto its peers.
                if shared
                    .faults
                    .as_ref()
                    .is_some_and(|p| p.refuses_remote_steal(index as u32))
                {
                    run.emit(
                        index,
                        my_node,
                        EventKind::FaultInjected {
                            fault: FaultTag::StealRefusal,
                            target: index as u32,
                        },
                    );
                    return None;
                }
                // Own node fully idle: visit other nodes' *shared injectors*
                // nearest-first. Never their private deques — those may hold
                // NUMA-strict chunks.
                for victim in topo.distances().neighbors_by_distance(my_node) {
                    tally.attempts_remote += 1;
                    if let Some(i) = batch_steal_until(&shared.queues.shared[victim.index()], deque)
                    {
                        tally.hits_remote += 1;
                        return Some((i, None));
                    }
                }
            }
            None
        }
        QueueKind::Static => unreachable!("static slices are drained directly in `work`"),
    }
}

/// Steals a batch from an injector into the private deque and pops one.
/// `Retry` (a lost race in the upstream lock-free implementation) backs off
/// with bounded exponential delay instead of raw-spinning on the contended
/// line.
fn batch_steal_until(q: &Injector<usize>, deque: &Deque<usize>) -> Option<usize> {
    let mut backoff = Backoff::new();
    loop {
        match q.steal_batch_and_pop(deque) {
            Steal::Success(i) => return Some(i),
            Steal::Empty => return None,
            Steal::Retry => backoff.snooze(),
        }
    }
}

/// Steals up to half of a peer's deque into ours and pops one, with the
/// same bounded backoff on `Retry`.
fn peer_steal_until(victim: &Stealer<usize>, deque: &Deque<usize>) -> Option<usize> {
    let mut backoff = Backoff::new();
    loop {
        match victim.steal_batch_and_pop(deque) {
            Steal::Success(i) => return Some(i),
            Steal::Empty => return None,
            Steal::Retry => backoff.snooze(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_topology::presets;
    use std::sync::atomic::AtomicUsize;

    fn pool(topo: Topology) -> ThreadPool {
        ThreadPool::new(PoolConfig::new(topo).pin(PinMode::Never)).unwrap()
    }

    #[test]
    fn flat_executes_all_iterations_once() {
        let p = pool(presets::tiny_2x4());
        let flags: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let report = p.taskloop(0..1000, 7, ExecMode::Flat, |r| {
            for i in r {
                flags[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
        assert_eq!(report.tasks_executed(), 1000_usize.div_ceil(7));
        assert_eq!(report.threads, 8);
    }

    #[test]
    fn hierarchical_strict_executes_all_and_never_migrates() {
        let p = pool(presets::tiny_2x4());
        let count = AtomicUsize::new(0);
        let mode = ExecMode::Hierarchical {
            mask: p.topology().all_nodes(),
            threads: 0,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        };
        let report = p.taskloop(0..512, 8, mode, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 512);
        assert_eq!(report.migrations, 0);
        assert!((report.locality_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worksharing_executes_all() {
        let p = pool(presets::tiny_2x4());
        let count = AtomicUsize::new(0);
        let report = p.taskloop(0..999, 10, ExecMode::WorkSharing, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 999);
        assert_eq!(report.tasks_executed(), 100);
        assert_eq!(report.migrations, 0);
    }

    #[test]
    fn hierarchical_reduced_threads() {
        let p = pool(presets::tiny_2x4());
        let count = AtomicUsize::new(0);
        let mode = ExecMode::Hierarchical {
            mask: NodeMask::first_n(1),
            threads: 2,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        };
        let report = p.taskloop(0..100, 5, mode, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(report.threads, 2);
        // Everything ran on node 0.
        assert_eq!(report.nodes[0].tasks, 20);
        assert_eq!(report.nodes[1].tasks, 0);
    }

    #[test]
    fn full_policy_migrates_under_imbalance() {
        let p = pool(presets::tiny_2x4());
        // All the heavy work lands in node 0's chunks.
        let mode = ExecMode::Hierarchical {
            mask: p.topology().all_nodes(),
            threads: 0,
            strict_fraction: 0.0,
            policy: StealPolicy::Full,
        };
        let report = p.taskloop(0..64, 1, mode, |r| {
            if r.start < 32 {
                // Node-0 chunks are slow.
                std::thread::sleep(Duration::from_micros(300));
            }
        });
        assert_eq!(report.tasks_executed(), 64);
        // With a fully stealable tail and this much imbalance, at least one
        // chunk must have migrated.
        assert!(report.migrations > 0, "expected migrations");
    }

    #[test]
    fn empty_range_is_fine() {
        let p = pool(presets::tiny_2x4());
        let report = p.taskloop(10..10, 4, ExecMode::Flat, |_| {
            panic!("body must not run");
        });
        assert_eq!(report.tasks_executed(), 0);
    }

    #[test]
    fn body_panic_propagates() {
        let p = pool(presets::tiny_2x4());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.taskloop(0..10, 1, ExecMode::Flat, |r| {
                if r.start == 5 {
                    panic!("boom in chunk");
                }
            });
        }));
        assert!(result.is_err());
        // Pool is still usable afterwards.
        let count = AtomicUsize::new(0);
        p.taskloop(0..10, 1, ExecMode::Flat, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn body_panic_propagates_on_dispatch_path() {
        // Same as above but past the inline threshold, exercising the
        // worker-side catch_unwind + dispatcher resume.
        let p = pool(presets::tiny_2x4());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.taskloop(0..100, 1, ExecMode::Flat, |r| {
                if r.start == 50 {
                    panic!("boom in chunk");
                }
            });
        }));
        assert!(result.is_err());
        let count = AtomicUsize::new(0);
        let report = p.taskloop(0..100, 1, ExecMode::Flat, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(report.tasks_executed(), 100);
    }

    #[test]
    fn sequential_loops_reuse_pool() {
        let p = pool(presets::tiny_2x4());
        for n in [1usize, 17, 256, 33] {
            let count = AtomicUsize::new(0);
            p.taskloop(0..n, 4, ExecMode::Flat, |r| {
                count.fetch_add(r.len(), Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), n);
        }
    }

    #[test]
    fn single_core_topology_works() {
        let p = pool(presets::smp(1));
        let count = AtomicUsize::new(0);
        let report = p.taskloop(0..50, 8, ExecMode::Flat, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 50);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn require_pin_fails_for_oversized_topology() {
        // 64 cores cannot be pinned on this machine unless it really has 64.
        if crate::pin::online_cpus() < 64 {
            let r = ThreadPool::new(PoolConfig::new(presets::epyc_9354_2s()).pin(PinMode::Require));
            assert!(matches!(r, Err(PoolError::PinFailed { .. })));
        }
    }

    #[test]
    fn reports_are_consistent() {
        let p = pool(presets::tiny_2x4());
        let report = p.taskloop(0..256, 4, ExecMode::Flat, |r| {
            std::hint::black_box(r.sum::<usize>());
        });
        assert_eq!(report.tasks_executed(), 64);
        let per_node: usize = report.nodes.iter().map(|n| n.tasks).sum();
        assert_eq!(per_node, 64);
        assert!(report.makespan > Duration::ZERO);
    }

    /// The audit expectations implied by a report.
    fn expect_from(report: &LoopReport) -> ilan_trace::AuditExpect {
        ilan_trace::AuditExpect {
            migrations: Some(report.migrations),
            latch_releases: Some(report.threads),
            per_node: Some(
                report
                    .nodes
                    .iter()
                    .map(|n| ilan_trace::NodeTally {
                        tasks: n.tasks,
                        local_tasks: Some(n.local_tasks),
                    })
                    .collect(),
            ),
        }
    }

    #[test]
    fn traced_strict_run_audits_clean() {
        let p = pool(presets::tiny_2x4());
        let mode = ExecMode::Hierarchical {
            mask: p.topology().all_nodes(),
            threads: 0,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        };
        let (report, log) = p.taskloop_traced(0..256, 4, mode, |r| {
            std::hint::black_box(r.sum::<usize>());
        });
        assert_eq!(log.dropped, 0);
        let audit = ilan_trace::audit(&log, &expect_from(&report));
        assert!(audit.ok(), "audit violations: {audit}");
        assert_eq!(audit.chunks, 64);
        assert_eq!(audit.inter_node_steals, 0);
        assert_eq!(audit.latch_releases, 8);
    }

    #[test]
    fn traced_flat_run_audits_clean() {
        let p = pool(presets::tiny_2x4());
        let (report, log) = p.taskloop_traced(0..500, 5, ExecMode::Flat, |r| {
            std::hint::black_box(r.sum::<usize>());
        });
        let audit = ilan_trace::audit(&log, &expect_from(&report));
        assert!(audit.ok(), "audit violations: {audit}");
        assert_eq!(audit.chunks, 100);
    }

    /// Regression for the report relation `tasks == local_tasks +
    /// migrations`: chunks that reach a worker's private deque via a remote
    /// batch steal and are then taken by an intra-node peer used to be
    /// counted as local, undercounting migrations.
    #[test]
    fn full_policy_report_relation_holds() {
        let p = pool(presets::tiny_2x4());
        for _ in 0..5 {
            let mode = ExecMode::Hierarchical {
                mask: p.topology().all_nodes(),
                threads: 0,
                strict_fraction: 0.0,
                policy: StealPolicy::Full,
            };
            let (report, log) = p.taskloop_traced(0..64, 1, mode, |r| {
                if r.start < 32 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
            let tasks: usize = report.nodes.iter().map(|n| n.tasks).sum();
            let local: usize = report.nodes.iter().map(|n| n.local_tasks).sum();
            assert_eq!(
                tasks,
                local + report.migrations,
                "tasks != local + migrations"
            );
            let audit = ilan_trace::audit(&log, &expect_from(&report));
            assert!(audit.ok(), "audit violations: {audit}");
        }
    }

    #[test]
    fn inline_fast_path_runs_small_loops_on_caller() {
        let p = pool(presets::tiny_2x4());
        let caller = std::thread::current().id();
        let off_thread = AtomicBool::new(false);
        let count = AtomicUsize::new(0);
        let report = p.taskloop(0..32, 4, ExecMode::Flat, |r| {
            if std::thread::current().id() != caller {
                off_thread.store(true, Ordering::Relaxed);
            }
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
        assert!(
            !off_thread.load(Ordering::Relaxed),
            "inline loop left the calling thread"
        );
        assert_eq!(report.threads, 1);
        assert_eq!(report.tasks_executed(), 8);
        assert_eq!(report.migrations, 0);
        assert!((report.locality_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(report.sched_overhead, Duration::ZERO);
    }

    #[test]
    fn inline_threshold_boundary() {
        let p = pool(presets::tiny_2x4());
        // At the threshold: inline (single caller thread).
        let at = p.taskloop(0..DEFAULT_INLINE_THRESHOLD, 4, ExecMode::Flat, |_| {});
        assert_eq!(at.threads, 1);
        // One past it: full dispatch (all workers).
        let past = p.taskloop(0..DEFAULT_INLINE_THRESHOLD + 1, 4, ExecMode::Flat, |_| {});
        assert_eq!(past.threads, 8);
    }

    #[test]
    fn single_chunk_loops_inline_regardless_of_length() {
        let p = pool(presets::tiny_2x4());
        let count = AtomicUsize::new(0);
        let report = p.taskloop(0..10_000, 10_000, ExecMode::Flat, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
        assert_eq!(report.threads, 1);
        assert_eq!(report.tasks_executed(), 1);
    }

    #[test]
    fn inline_threshold_zero_dispatches_tiny_loops() {
        let p = ThreadPool::new(
            PoolConfig::new(presets::tiny_2x4())
                .pin(PinMode::Never)
                .inline_threshold(0),
        )
        .unwrap();
        let report = p.taskloop(0..8, 1, ExecMode::Flat, |_| {});
        assert_eq!(report.threads, 8);
        assert_eq!(report.tasks_executed(), 8);
    }

    #[test]
    fn inline_hierarchical_attributes_to_mask_nodes() {
        let p = pool(presets::tiny_2x4());
        let mode = ExecMode::Hierarchical {
            mask: NodeMask::first_n(1),
            threads: 0,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        };
        let report = p.taskloop(0..16, 4, mode, |_| {});
        assert_eq!(report.threads, 1);
        assert_eq!(report.nodes[0].tasks, 4);
        assert_eq!(report.nodes[1].tasks, 0);
        assert_eq!(report.migrations, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty mask")]
    fn inline_path_still_validates_mask() {
        let p = pool(presets::tiny_2x4());
        let mode = ExecMode::Hierarchical {
            mask: NodeMask::EMPTY,
            threads: 0,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        };
        p.taskloop(0..4, 1, mode, |_| {});
    }

    #[test]
    fn traced_small_loop_takes_dispatch_path() {
        let p = pool(presets::tiny_2x4());
        let (report, log) = p.taskloop_traced(0..8, 1, ExecMode::Flat, |r| {
            std::hint::black_box(r.sum::<usize>());
        });
        assert_eq!(report.threads, 8, "traced loops must not inline");
        let audit = ilan_trace::audit(&log, &expect_from(&report));
        assert!(audit.ok(), "audit violations: {audit}");
        assert_eq!(audit.chunks, 8);
    }

    #[test]
    fn broadcast_wake_mode_is_equivalent() {
        let p = ThreadPool::new(
            PoolConfig::new(presets::tiny_2x4())
                .pin(PinMode::Never)
                .wake(WakeMode::Broadcast),
        )
        .unwrap();
        let flags: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        let report = p.taskloop(0..500, 5, ExecMode::Flat, |r| {
            for i in r {
                flags[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
        assert_eq!(report.tasks_executed(), 100);
        assert_eq!(report.threads, 8);
        // A masked loop under broadcast: non-participants wake but stay out.
        let count = AtomicUsize::new(0);
        let mode = ExecMode::Hierarchical {
            mask: NodeMask::first_n(1),
            threads: 2,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        };
        let report = p.taskloop(0..100, 5, mode, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(report.threads, 2);
        assert_eq!(report.nodes[1].tasks, 0);
    }

    #[test]
    fn taskloop_into_reuses_caller_report() {
        let p = pool(presets::tiny_2x4());
        let mut report = LoopReport::default();
        let count = AtomicUsize::new(0);
        p.taskloop_into(
            0..256,
            Grain::Size(4),
            ExecMode::Flat,
            |r| {
                count.fetch_add(r.len(), Ordering::Relaxed);
            },
            &mut report,
        );
        assert_eq!(count.load(Ordering::Relaxed), 256);
        assert_eq!(report.tasks_executed(), 64);
        assert_eq!(report.threads, 8);
        // Stale contents are fully overwritten by the next invocation.
        p.taskloop_into(
            0..100,
            Grain::Size(5),
            ExecMode::WorkSharing,
            |_| {},
            &mut report,
        );
        assert_eq!(report.tasks_executed(), 20);
        assert_eq!(report.migrations, 0);
    }

    /// A plan whose only fault is a permanent stall of worker `w`.
    fn permanent_stall_plan(topo: &Topology, w: u32) -> FaultPlan {
        use ilan_faults::FaultConfig;
        // Scan seeds for one that permanently stalls exactly `w`; the plan
        // space is dense enough that a handful of seeds always suffices.
        let config = FaultConfig {
            max_worker_stalls: 1,
            permanent_stalls: true,
            max_stall_ns: 1_000_000,
            ..FaultConfig::none()
        };
        for seed in 0..10_000u64 {
            let p = FaultPlan::new(
                seed,
                topo.num_cores() as u32,
                topo.num_nodes() as u32,
                config,
            );
            if p.stalls().len() == 1 && p.stall_of(w).is_some_and(|s| s.permanent) {
                return p;
            }
        }
        panic!("no seed permanently stalls worker {w}");
    }

    #[test]
    fn permanently_stalled_worker_degrades_but_completes() {
        let topo = presets::tiny_2x4();
        let plan = permanent_stall_plan(&topo, 5);
        let p = ThreadPool::new(
            PoolConfig::new(topo)
                .pin(PinMode::Never)
                .watchdog(Duration::from_millis(10))
                .faults(plan),
        )
        .unwrap();
        for _ in 0..3 {
            let flags: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
            let start = Instant::now();
            let (report, log) = p.taskloop_traced(0..500, 5, ExecMode::Flat, |r| {
                for i in r {
                    flags[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            // Degradation is bounded: two deadline windows plus the drain.
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "degraded completion took {:?}",
                start.elapsed()
            );
            assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
            assert_eq!(report.tasks_executed(), 100);
            assert!(report.degraded, "a permanent stall must degrade the run");
            let audit = ilan_trace::audit(&log, &expect_from(&report));
            assert!(audit.ok(), "audit violations: {audit}");
        }
    }

    #[test]
    fn permanently_stalled_worker_in_worksharing_mode() {
        let topo = presets::tiny_2x4();
        let plan = permanent_stall_plan(&topo, 2);
        let p = ThreadPool::new(
            PoolConfig::new(topo)
                .pin(PinMode::Never)
                .watchdog(Duration::from_millis(10))
                .faults(plan),
        )
        .unwrap();
        let flags: Vec<AtomicUsize> = (0..300).map(|_| AtomicUsize::new(0)).collect();
        let (report, log) = p.taskloop_traced(0..300, 3, ExecMode::WorkSharing, |r| {
            for i in r {
                flags[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
        assert!(report.degraded);
        let audit = ilan_trace::audit(&log, &expect_from(&report));
        assert!(audit.ok(), "audit violations: {audit}");
    }

    #[test]
    fn watchdog_without_faults_stays_quiet() {
        let p = ThreadPool::new(
            PoolConfig::new(presets::tiny_2x4())
                .pin(PinMode::Never)
                .watchdog(Duration::from_millis(200)),
        )
        .unwrap();
        let (report, log) = p.taskloop_traced(0..400, 4, ExecMode::Flat, |r| {
            std::hint::black_box(r.sum::<usize>());
        });
        assert!(!report.degraded);
        let audit = ilan_trace::audit(&log, &expect_from(&report));
        assert!(audit.ok(), "audit violations: {audit}");
        assert_eq!(audit.claimed_workers, 0);
    }

    #[test]
    fn slow_invocation_does_not_trip_the_watchdog() {
        // Each chunk outlasts the deadline, but progress keeps advancing:
        // the watchdog must keep re-arming instead of escalating.
        let p = ThreadPool::new(
            PoolConfig::new(presets::smp(2))
                .pin(PinMode::Never)
                .watchdog(Duration::from_millis(5)),
        )
        .unwrap();
        let report = p.taskloop(0..40, 1, ExecMode::Flat, |_| {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(!report.degraded, "steady progress was mistaken for a stall");
        assert_eq!(report.tasks_executed(), 40);
    }

    #[test]
    fn chaos_plan_runs_audit_clean_across_seeds() {
        use ilan_faults::FaultConfig;
        // A fast chaos sweep at the pool level: every fault class the
        // runtime implements, several seeds, full invariant audit each run.
        let config = FaultConfig {
            max_stall_ns: 200_000, // keep temporary stalls test-fast
            ..FaultConfig::chaos()
        };
        for seed in 0..6u64 {
            let topo = presets::tiny_2x4();
            let plan = FaultPlan::new(
                seed,
                topo.num_cores() as u32,
                topo.num_nodes() as u32,
                config,
            );
            let p = ThreadPool::new(
                PoolConfig::new(topo)
                    .pin(PinMode::Never)
                    .watchdog(Duration::from_millis(10))
                    .faults(plan),
            )
            .unwrap();
            let mode = ExecMode::Hierarchical {
                mask: p.topology().all_nodes(),
                threads: 0,
                strict_fraction: 0.5,
                policy: StealPolicy::Full,
            };
            let flags: Vec<AtomicUsize> = (0..400).map(|_| AtomicUsize::new(0)).collect();
            let (report, log) = p.taskloop_traced(0..400, 4, mode, |r| {
                for i in r {
                    flags[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                flags.iter().all(|f| f.load(Ordering::Relaxed) == 1),
                "seed {seed}: lost or repeated iterations"
            );
            let audit = ilan_trace::audit(&log, &expect_from(&report));
            assert!(audit.ok(), "seed {seed}: audit violations: {audit}");
        }
    }

    #[test]
    fn traced_runs_reuse_rings_across_invocations() {
        let p = pool(presets::tiny_2x4());
        let mode = ExecMode::Hierarchical {
            mask: p.topology().all_nodes(),
            threads: 0,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        };
        let (first_report, first_log) = p.taskloop_traced(0..256, 4, mode.clone(), |_| {});
        for _ in 0..3 {
            let (report, log) = p.taskloop_traced(0..256, 4, mode.clone(), |_| {});
            let audit = ilan_trace::audit(&log, &expect_from(&report));
            assert!(audit.ok(), "audit violations: {audit}");
            assert_eq!(audit.chunks, 64);
        }
        // The first log is an owned snapshot, unaffected by ring reuse.
        let audit = ilan_trace::audit(&first_log, &expect_from(&first_report));
        assert!(audit.ok(), "first log corrupted by reuse: {audit}");
    }
}
