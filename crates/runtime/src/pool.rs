//! The worker pool and taskloop execution engine.

use crate::chunk::{chunk_ranges, ChunkAssignment, Grain};
use crate::latch::CountLatch;
use crate::pin::{pin_current_thread, PinMode};
use crate::report::{LoopReport, NodeReport};
use crossbeam_deque::{Injector, Steal, Stealer, Worker as Deque};
use crossbeam_utils::CachePadded;
use ilan_topology::{NodeId, NodeMask, Topology};
use ilan_trace::{EventKind, EventLog, TraceSet, DISPATCHER};
use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Inter-node steal policy of a hierarchical taskloop (paper §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealPolicy {
    /// Work-stealing confined to the chunk's assigned NUMA node.
    Strict,
    /// The stealable tail of each node's chunks may migrate to another node
    /// once that node has exhausted its own queues.
    Full,
}

/// How one taskloop invocation is executed.
#[derive(Clone, Debug)]
pub enum ExecMode {
    /// LLVM-default tasking baseline: one shared queue, every worker takes
    /// any chunk. Uses all workers.
    Flat,
    /// OpenMP `for schedule(static)` work-sharing: fixed contiguous slices,
    /// no queues, no stealing. Uses all workers.
    WorkSharing,
    /// ILAN hierarchical distribution: chunks pre-assigned to the nodes of
    /// `mask`, an initial fraction NUMA-strict, optional inter-node stealing
    /// of the tail.
    Hierarchical {
        /// Nodes eligible to execute the loop.
        mask: NodeMask,
        /// Total active threads, distributed evenly over the mask's nodes
        /// (each node activates its lowest cores first). Clamped to the
        /// cores available in the mask; 0 means "all cores of the mask".
        threads: usize,
        /// Fraction of each node's chunks that are NUMA-strict under
        /// [`StealPolicy::Full`]; ignored under `Strict` (everything is
        /// strict then).
        strict_fraction: f64,
        /// Whether the stealable tail may migrate across nodes.
        policy: StealPolicy,
    },
}

/// Pool construction parameters.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Machine model: one worker is spawned per topology core.
    pub topology: Topology,
    /// Pinning behaviour.
    pub pin: PinMode,
}

impl PoolConfig {
    /// Configuration with default (auto) pinning.
    pub fn new(topology: Topology) -> Self {
        PoolConfig {
            topology,
            pin: PinMode::Auto,
        }
    }

    /// Sets the pinning mode.
    pub fn pin(mut self, pin: PinMode) -> Self {
        self.pin = pin;
        self
    }
}

/// Errors from pool construction.
#[derive(Debug)]
pub enum PoolError {
    /// [`PinMode::Require`] was set and some worker could not be pinned.
    PinFailed {
        /// Index of the first core that could not be pinned.
        core: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::PinFailed { core } => {
                write!(f, "required pinning failed for core {core}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Erased pointer to the loop body closure.
///
/// Validity: the dispatching call does not return until every active worker
/// has left the loop (worker-exit latch), so the pointee outlives all
/// dereferences.
struct BodyPtr(*const (dyn Fn(Range<usize>) + Sync));
// SAFETY: the pointee is `Sync` and only shared for the duration of the
// dispatch call, which outlives all uses (see struct docs).
unsafe impl Send for BodyPtr {}
unsafe impl Sync for BodyPtr {}

/// One chunk of a taskloop.
struct Chunk {
    range: Range<usize>,
    /// The node this chunk is assigned to (its data home under blocked
    /// first-touch initialisation).
    home: NodeId,
}

// One `Queues` exists per taskloop invocation, so the size spread between
// variants is irrelevant next to the allocation traffic it gates.
#[allow(clippy::large_enum_variant)]
enum Queues {
    Flat(Injector<usize>),
    Hier {
        /// Per-node queue of NUMA-strict chunk indices.
        strict: Vec<Injector<usize>>,
        /// Per-node queue of chunks stealable across nodes.
        shared: Vec<Injector<usize>>,
        policy: StealPolicy,
    },
    /// Per-worker contiguous chunk-index slices.
    Static(Vec<Range<usize>>),
}

struct NodeAtomics {
    tasks: CachePadded<AtomicUsize>,
    local_tasks: AtomicUsize,
    busy_ns: AtomicU64,
}

impl NodeAtomics {
    fn new() -> Self {
        NodeAtomics {
            tasks: CachePadded::new(AtomicUsize::new(0)),
            local_tasks: AtomicUsize::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }
}

struct LoopRun {
    body: BodyPtr,
    chunks: Vec<Chunk>,
    queues: Queues,
    /// Which workers participate in this invocation.
    active: Vec<bool>,
    /// Released when every active worker has left the loop.
    exit_latch: CountLatch,
    node_stats: Vec<NodeAtomics>,
    migrations: AtomicUsize,
    overhead_ns: AtomicU64,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    threads: usize,
    /// Per-worker event rings; `None` outside traced invocations.
    trace: Option<TraceSet>,
    /// Trace epoch: event timestamps are nanoseconds since this instant.
    t0: Instant,
}

impl LoopRun {
    /// Records a worker event when tracing is on; a single predictable
    /// branch otherwise.
    #[inline]
    fn emit(&self, worker: usize, node: NodeId, kind: EventKind) {
        if let Some(trace) = &self.trace {
            trace.ring(worker).push(
                worker as u32,
                node.index() as u32,
                self.t0.elapsed().as_nanos() as u64,
                kind,
            );
        }
    }
}

struct SyncState {
    epoch: u64,
    run: Option<Arc<LoopRun>>,
}

struct Shared {
    topology: Topology,
    sync: Mutex<SyncState>,
    cond: Condvar,
    shutdown: AtomicBool,
    /// Stealer handles onto every worker's private Chase–Lev deque, indexed
    /// by worker (== core) id. Intra-node peers steal through these; remote
    /// steals go through the shared injectors only, so NUMA-strict chunks
    /// never leave their node once they reach a private deque.
    stealers: Vec<Stealer<usize>>,
}

/// A pool of worker threads, one per topology core.
///
/// The pool executes one taskloop at a time (taskloops end with an implicit
/// barrier in the paper's execution model); concurrent [`taskloop`] calls
/// from different threads serialize on an internal lock.
///
/// [`taskloop`]: ThreadPool::taskloop
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    dispatch_lock: Mutex<()>,
    pinned_workers: usize,
}

impl ThreadPool {
    /// Spawns one worker per topology core.
    pub fn new(config: PoolConfig) -> Result<Self, PoolError> {
        let cores = config.topology.num_cores();
        // One private Chase–Lev deque per worker; the Worker end moves into
        // its thread, the Stealer ends are shared.
        let mut deques: Vec<Deque<usize>> = (0..cores).map(|_| Deque::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = deques.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            topology: config.topology.clone(),
            sync: Mutex::new(SyncState {
                epoch: 0,
                run: None,
            }),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stealers,
        });

        let pin_results: Arc<Vec<AtomicBool>> =
            Arc::new((0..cores).map(|_| AtomicBool::new(false)).collect());
        let ready = Arc::new(CountLatch::new(cores));

        let mut handles = Vec::with_capacity(cores);
        for (i, deque) in deques.drain(..).enumerate() {
            let shared = Arc::clone(&shared);
            let pin_results = Arc::clone(&pin_results);
            let ready = Arc::clone(&ready);
            let pin_mode = config.pin;
            let handle = std::thread::Builder::new()
                .name(format!("ilan-worker-{i}"))
                .spawn(move || {
                    if pin_mode != PinMode::Never {
                        let ok = pin_current_thread(ilan_topology::CoreId::new(i));
                        pin_results[i].store(ok, Ordering::Release);
                    }
                    ready.count_down();
                    worker_main(&shared, i, &deque);
                })
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
        ready.wait();

        let pinned = pin_results
            .iter()
            .filter(|r| r.load(Ordering::Acquire))
            .count();
        if config.pin == PinMode::Require && pinned < cores {
            let core = pin_results
                .iter()
                .position(|r| !r.load(Ordering::Acquire))
                .unwrap_or(0);
            // Tear the pool down before reporting failure.
            shared.shutdown.store(true, Ordering::Release);
            {
                let _g = shared.sync.lock();
                shared.cond.notify_all();
            }
            for h in handles {
                let _ = h.join();
            }
            return Err(PoolError::PinFailed { core });
        }

        Ok(ThreadPool {
            shared,
            handles,
            dispatch_lock: Mutex::new(()),
            pinned_workers: pinned,
        })
    }

    /// The pool's topology.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// Number of workers successfully pinned to their cores.
    pub fn pinned_workers(&self) -> usize {
        self.pinned_workers
    }

    /// Total worker count (== topology cores).
    pub fn num_workers(&self) -> usize {
        self.handles.len()
    }

    /// Executes a taskloop over `range` with chunks of at most `grainsize`
    /// iterations, under the given execution mode. Blocks until every chunk
    /// has executed and all participating workers have quiesced (the
    /// taskloop's implicit barrier), then returns the invocation report.
    ///
    /// # Panics
    /// Re-raises any panic from the body, and panics if `grainsize == 0` or
    /// a hierarchical mode references an empty node mask.
    pub fn taskloop<F>(
        &self,
        range: Range<usize>,
        grainsize: usize,
        mode: ExecMode,
        body: F,
    ) -> LoopReport
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.taskloop_with(range, Grain::Size(grainsize), mode, body)
    }

    /// Like [`taskloop`](Self::taskloop) with an OpenMP-style [`Grain`]
    /// specification (`grainsize` / `num_tasks` / implementation default).
    pub fn taskloop_with<F>(
        &self,
        range: Range<usize>,
        grain: Grain,
        mode: ExecMode,
        body: F,
    ) -> LoopReport
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.run_loop(range, grain, mode, &body, false).0
    }

    /// Like [`taskloop`](Self::taskloop), additionally recording every
    /// scheduler action (enqueues, pops, steals, chunk start/end, latch
    /// releases) into per-worker lock-free rings and returning the merged
    /// [`EventLog`] alongside the report.
    pub fn taskloop_traced<F>(
        &self,
        range: Range<usize>,
        grainsize: usize,
        mode: ExecMode,
        body: F,
    ) -> (LoopReport, EventLog)
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.taskloop_with_traced(range, Grain::Size(grainsize), mode, body)
    }

    /// Traced variant of [`taskloop_with`](Self::taskloop_with).
    pub fn taskloop_with_traced<F>(
        &self,
        range: Range<usize>,
        grain: Grain,
        mode: ExecMode,
        body: F,
    ) -> (LoopReport, EventLog)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let (report, log) = self.run_loop(range, grain, mode, &body, true);
        (report, log.expect("traced run always yields a log"))
    }

    fn run_loop(
        &self,
        range: Range<usize>,
        grain: Grain,
        mode: ExecMode,
        body: &(dyn Fn(Range<usize>) + Sync),
        traced: bool,
    ) -> (LoopReport, Option<EventLog>) {
        let _dispatch_guard = self.dispatch_lock.lock();
        let topo = &self.shared.topology;
        let num_nodes = topo.num_nodes();
        let all_workers = self.num_workers();
        let grainsize = grain.resolve(range.len(), all_workers);
        let ranges = chunk_ranges(range, grainsize);
        let num_chunks = ranges.len();

        // Data homes: blocked first-touch layout over all nodes, identical in
        // every mode so locality statistics are comparable.
        let data_homes = ChunkAssignment::new(topo.all_nodes(), num_chunks.max(1));
        let chunks: Vec<Chunk> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, range)| Chunk {
                range,
                home: data_homes.node_of_chunk(i),
            })
            .collect();

        // Resolve the active worker set and the queues.
        let mut active = vec![false; all_workers];
        let mut strict_flags = vec![false; num_chunks];
        let queues = match &mode {
            ExecMode::Flat => {
                active.iter_mut().for_each(|a| *a = true);
                let q = Injector::new();
                for i in 0..num_chunks {
                    q.push(i);
                }
                Queues::Flat(q)
            }
            ExecMode::WorkSharing => {
                active.iter_mut().for_each(|a| *a = true);
                let mut slices = Vec::with_capacity(all_workers);
                for w in 0..all_workers {
                    let lo = w * num_chunks / all_workers;
                    let hi = (w + 1) * num_chunks / all_workers;
                    slices.push(lo..hi);
                }
                Queues::Static(slices)
            }
            ExecMode::Hierarchical {
                mask,
                threads,
                strict_fraction,
                policy,
            } => {
                assert!(!mask.is_empty(), "hierarchical mode needs a non-empty mask");
                assert!(
                    (0.0..=1.0).contains(strict_fraction),
                    "strict_fraction must be in [0,1]"
                );
                // Distribute threads over the mask's nodes, lowest cores
                // first within each node.
                let k = mask.count();
                let max_threads = k * topo.cores_per_node();
                let want = if *threads == 0 {
                    max_threads
                } else {
                    (*threads).min(max_threads)
                };
                for (rank, node) in mask.iter().enumerate() {
                    let per = want / k + usize::from(rank < want % k);
                    for core in topo.cores_of_node(node).take(per) {
                        active[core.index()] = true;
                    }
                }
                // Ensure at least the primary of the first node is active.
                if !active.iter().any(|&a| a) {
                    active[topo.primary_core(mask.first().unwrap()).index()] = true;
                }

                let strict: Vec<Injector<usize>> =
                    (0..num_nodes).map(|_| Injector::new()).collect();
                let shared: Vec<Injector<usize>> =
                    (0..num_nodes).map(|_| Injector::new()).collect();
                let assignment = ChunkAssignment::new(*mask, num_chunks.max(1));
                for (node, idxs) in assignment.per_node() {
                    let strict_count = match policy {
                        StealPolicy::Strict => idxs.len(),
                        StealPolicy::Full => {
                            ((idxs.len() as f64) * strict_fraction).round() as usize
                        }
                    };
                    for (j, idx) in idxs.into_iter().enumerate() {
                        if j < strict_count {
                            strict_flags[idx] = true;
                            strict[node.index()].push(idx);
                        } else {
                            shared[node.index()].push(idx);
                        }
                    }
                }
                Queues::Hier {
                    strict,
                    shared,
                    policy: *policy,
                }
            }
        };

        // In hierarchical mode chunks are assigned to the mask's nodes, not
        // their data homes; recompute homes so migration statistics reflect
        // the *assignment* (matching the paper's definition of a migration).
        let chunks = if let ExecMode::Hierarchical { mask, .. } = &mode {
            let assignment = ChunkAssignment::new(*mask, num_chunks.max(1));
            chunks
                .into_iter()
                .enumerate()
                .map(|(i, c)| Chunk {
                    range: c.range,
                    home: assignment.node_of_chunk(i),
                })
                .collect()
        } else {
            chunks
        };

        let threads = active.iter().filter(|&&a| a).count();
        let body_ref: &(dyn Fn(Range<usize>) + Sync) = &body;
        // SAFETY: extending the body's lifetime; validity argued on BodyPtr.
        let body_ptr = BodyPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(Range<usize>) + Sync),
                *const (dyn Fn(Range<usize>) + Sync),
            >(body_ref as *const _)
        });

        // Generous ring bounds: a worker emits at most one acquisition, one
        // start, and one end per chunk, plus its latch release; the
        // dispatcher emits one enqueue per chunk.
        let trace = traced.then(|| TraceSet::new(all_workers, 3 * num_chunks + 4, num_chunks + 4));
        let run = Arc::new(LoopRun {
            body: body_ptr,
            chunks,
            queues,
            active,
            exit_latch: CountLatch::new(threads),
            node_stats: (0..num_nodes).map(|_| NodeAtomics::new()).collect(),
            migrations: AtomicUsize::new(0),
            overhead_ns: AtomicU64::new(0),
            panic: Mutex::new(None),
            threads,
            trace,
            t0: Instant::now(),
        });

        // Record the dispatch: where every chunk was placed, before any
        // worker can observe the new epoch.
        if let Some(trace) = &run.trace {
            for (i, c) in run.chunks.iter().enumerate() {
                trace.dispatcher().push(
                    DISPATCHER,
                    c.home.index() as u32,
                    run.t0.elapsed().as_nanos() as u64,
                    EventKind::ChunkEnqueue {
                        chunk: i as u32,
                        home: c.home.index() as u32,
                        strict: strict_flags[i],
                    },
                );
            }
        }

        let start = Instant::now();
        {
            let mut g = self.shared.sync.lock();
            g.epoch += 1;
            g.run = Some(Arc::clone(&run));
            self.shared.cond.notify_all();
        }
        run.exit_latch.wait();
        let makespan = start.elapsed();
        {
            let mut g = self.shared.sync.lock();
            g.run = None;
        }

        if let Some(payload) = run.panic.lock().take() {
            std::panic::resume_unwind(payload);
        }

        let nodes: Vec<NodeReport> = run
            .node_stats
            .iter()
            .map(|s| NodeReport {
                tasks: s.tasks.load(Ordering::Acquire),
                local_tasks: s.local_tasks.load(Ordering::Acquire),
                busy: Duration::from_nanos(s.busy_ns.load(Ordering::Acquire)),
            })
            .collect();

        let migrations = run.migrations.load(Ordering::Acquire);
        // The report's defining relation: a chunk is either local to the
        // node that ran it or it migrated there, never both, never neither.
        debug_assert_eq!(
            nodes.iter().map(|n| n.tasks).sum::<usize>(),
            nodes.iter().map(|n| n.local_tasks).sum::<usize>() + migrations,
            "LoopReport inconsistent: tasks != local_tasks + migrations"
        );

        let log = run.trace.as_ref().map(|t| t.collect(num_nodes));
        let report = LoopReport {
            makespan,
            sched_overhead: Duration::from_nanos(run.overhead_ns.load(Ordering::Acquire)),
            nodes,
            migrations,
            threads: run.threads,
        };
        (report, log)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sync.lock();
            self.shared.cond.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(shared: &Shared, index: usize, deque: &Deque<usize>) {
    let mut seen_epoch = 0u64;
    loop {
        let run = {
            let mut g = shared.sync.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if g.epoch != seen_epoch {
                    seen_epoch = g.epoch;
                    break g.run.clone();
                }
                shared.cond.wait(&mut g);
            }
        };
        let Some(run) = run else { continue };
        if run.active[index] {
            work(shared, &run, index, deque);
            let node = shared
                .topology
                .node_of_core(ilan_topology::CoreId::new(index));
            run.emit(index, node, EventKind::LatchRelease);
            run.exit_latch.count_down();
            debug_assert!(deque.pop().is_none(), "worker left chunks in its deque");
        }
    }
}

/// Executes one chunk and records its statistics.
fn execute_chunk(run: &LoopRun, chunk_idx: usize, worker: usize, my_node: NodeId, migrated: bool) {
    let chunk = &run.chunks[chunk_idx];
    run.emit(
        worker,
        my_node,
        EventKind::ChunkStart {
            chunk: chunk_idx as u32,
        },
    );
    let body_start = Instant::now();
    // SAFETY: the dispatcher keeps the body alive until exit_latch releases,
    // which happens after this call returns.
    let body = unsafe { &*run.body.0 };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| body(chunk.range.clone())));
    let elapsed = body_start.elapsed();

    if let Err(payload) = result {
        let mut slot = run.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    let stats = &run.node_stats[my_node.index()];
    stats
        .busy_ns
        .fetch_add(elapsed.as_nanos() as u64, Ordering::AcqRel);
    stats.tasks.fetch_add(1, Ordering::AcqRel);
    if chunk.home == my_node {
        stats.local_tasks.fetch_add(1, Ordering::AcqRel);
    }
    if migrated {
        run.migrations.fetch_add(1, Ordering::AcqRel);
    }
    run.emit(
        worker,
        my_node,
        EventKind::ChunkEnd {
            chunk: chunk_idx as u32,
        },
    );
}

/// Pops or steals chunk indices until no work is reachable for this worker.
fn work(shared: &Shared, run: &LoopRun, index: usize, deque: &Deque<usize>) {
    let topo = &shared.topology;
    let my_core = ilan_topology::CoreId::new(index);
    let my_node = topo.node_of_core(my_core);
    let mut overhead_ns = 0u64;

    if let Queues::Static(slices) = &run.queues {
        // Work-sharing: drain the private slice, nothing to steal.
        for chunk_idx in slices[index].clone() {
            let migrated = run.chunks[chunk_idx].home != my_node;
            if run.trace.is_some() {
                run.emit(index, my_node, acquisition_kind(run, chunk_idx, my_node, None));
            }
            execute_chunk(run, chunk_idx, index, my_node, migrated);
        }
        return;
    }

    loop {
        let acquire_start = Instant::now();
        // Fast path: the private deque (filled by earlier batch steals).
        let acquired = match deque.pop() {
            Some(i) => Some((i, None)),
            None => acquire(shared, run, index, my_node, topo, deque),
        };
        overhead_ns += acquire_start.elapsed().as_nanos() as u64;
        let Some((chunk_idx, victim)) = acquired else {
            break;
        };
        // A chunk migrated iff it executes away from its assigned node —
        // regardless of which queue it physically travelled through (a peer's
        // deque may hold chunks that were batch-stolen from a remote node).
        let migrated = run.chunks[chunk_idx].home != my_node;
        if run.trace.is_some() {
            run.emit(index, my_node, acquisition_kind(run, chunk_idx, my_node, victim));
        }
        execute_chunk(run, chunk_idx, index, my_node, migrated);
    }

    run.overhead_ns.fetch_add(overhead_ns, Ordering::AcqRel);
}

/// Classifies an acquisition by its locality outcome: crossing nodes is an
/// inter-node steal (== one migration), a same-node peer-deque grab is an
/// intra-node steal, anything else is a local pop.
fn acquisition_kind(
    run: &LoopRun,
    chunk_idx: usize,
    my_node: NodeId,
    victim: Option<usize>,
) -> EventKind {
    let chunk = chunk_idx as u32;
    let home = run.chunks[chunk_idx].home;
    if home != my_node {
        EventKind::InterNodeSteal {
            chunk,
            from: home.index() as u32,
        }
    } else if let Some(v) = victim {
        EventKind::IntraNodeSteal {
            chunk,
            victim: v as u32,
        }
    } else {
        EventKind::LocalPop { chunk }
    }
}

/// One acquisition sweep when the private deque is empty. Batch steals from
/// injectors refill the deque (amortizing synchronization, like LLVM's
/// taskloop splitting); peer-deque steals stay within the NUMA node so
/// strict chunks never migrate. Returns the chunk index plus the worker it
/// was taken from, for peer-deque steals; the caller derives migration from
/// the chunk's assigned home (a peer's deque can hold chunks it had itself
/// batch-stolen from a remote node).
fn acquire(
    shared: &Shared,
    run: &LoopRun,
    index: usize,
    my_node: NodeId,
    topo: &Topology,
    deque: &Deque<usize>,
) -> Option<(usize, Option<usize>)> {
    match &run.queues {
        Queues::Flat(q) => {
            if let Some(i) = batch_steal_until(q, deque) {
                return Some((i, None));
            }
            // Steal from peer deques anywhere (the flat baseline is
            // NUMA-oblivious), scanning from the next worker around.
            let n = shared.stealers.len();
            for k in 1..n {
                let v = (index + k) % n;
                if let Some(i) = peer_steal_until(&shared.stealers[v], deque) {
                    return Some((i, Some(v)));
                }
            }
            None
        }
        Queues::Hier {
            strict,
            shared: shared_q,
            policy,
        } => {
            if let Some(i) = batch_steal_until(&strict[my_node.index()], deque) {
                return Some((i, None));
            }
            if let Some(i) = batch_steal_until(&shared_q[my_node.index()], deque) {
                return Some((i, None));
            }
            // Intra-node peer deques (chunks there stay on this node unless
            // the peer had already pulled them across).
            for peer in topo.cores_of_node(my_node) {
                if peer.index() != index {
                    if let Some(i) = peer_steal_until(&shared.stealers[peer.index()], deque) {
                        return Some((i, Some(peer.index())));
                    }
                }
            }
            if *policy == StealPolicy::Full {
                // Own node fully idle: visit other nodes' *shared injectors*
                // nearest-first. Never their private deques — those may hold
                // NUMA-strict chunks.
                for victim in topo.distances().neighbors_by_distance(my_node) {
                    if let Some(i) = batch_steal_until(&shared_q[victim.index()], deque) {
                        return Some((i, None));
                    }
                }
            }
            None
        }
        Queues::Static(_) => unreachable!("static slices are drained directly in `work`"),
    }
}

/// Steals a batch from an injector into the private deque and pops one.
fn batch_steal_until(q: &Injector<usize>, deque: &Deque<usize>) -> Option<usize> {
    loop {
        match q.steal_batch_and_pop(deque) {
            Steal::Success(i) => return Some(i),
            Steal::Empty => return None,
            Steal::Retry => std::hint::spin_loop(),
        }
    }
}

/// Steals up to half of a peer's deque into ours and pops one.
fn peer_steal_until(victim: &Stealer<usize>, deque: &Deque<usize>) -> Option<usize> {
    loop {
        match victim.steal_batch_and_pop(deque) {
            Steal::Success(i) => return Some(i),
            Steal::Empty => return None,
            Steal::Retry => std::hint::spin_loop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_topology::presets;
    use std::sync::atomic::AtomicUsize;

    fn pool(topo: Topology) -> ThreadPool {
        ThreadPool::new(PoolConfig::new(topo).pin(PinMode::Never)).unwrap()
    }

    #[test]
    fn flat_executes_all_iterations_once() {
        let p = pool(presets::tiny_2x4());
        let flags: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let report = p.taskloop(0..1000, 7, ExecMode::Flat, |r| {
            for i in r {
                flags[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
        assert_eq!(report.tasks_executed(), 1000_usize.div_ceil(7));
        assert_eq!(report.threads, 8);
    }

    #[test]
    fn hierarchical_strict_executes_all_and_never_migrates() {
        let p = pool(presets::tiny_2x4());
        let count = AtomicUsize::new(0);
        let mode = ExecMode::Hierarchical {
            mask: p.topology().all_nodes(),
            threads: 0,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        };
        let report = p.taskloop(0..512, 8, mode, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 512);
        assert_eq!(report.migrations, 0);
        assert!((report.locality_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worksharing_executes_all() {
        let p = pool(presets::tiny_2x4());
        let count = AtomicUsize::new(0);
        let report = p.taskloop(0..999, 10, ExecMode::WorkSharing, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 999);
        assert_eq!(report.tasks_executed(), 100);
        assert_eq!(report.migrations, 0);
    }

    #[test]
    fn hierarchical_reduced_threads() {
        let p = pool(presets::tiny_2x4());
        let count = AtomicUsize::new(0);
        let mode = ExecMode::Hierarchical {
            mask: NodeMask::first_n(1),
            threads: 2,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        };
        let report = p.taskloop(0..100, 5, mode, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(report.threads, 2);
        // Everything ran on node 0.
        assert_eq!(report.nodes[0].tasks, 20);
        assert_eq!(report.nodes[1].tasks, 0);
    }

    #[test]
    fn full_policy_migrates_under_imbalance() {
        let p = pool(presets::tiny_2x4());
        // All the heavy work lands in node 0's chunks.
        let mode = ExecMode::Hierarchical {
            mask: p.topology().all_nodes(),
            threads: 0,
            strict_fraction: 0.0,
            policy: StealPolicy::Full,
        };
        let report = p.taskloop(0..64, 1, mode, |r| {
            if r.start < 32 {
                // Node-0 chunks are slow.
                std::thread::sleep(Duration::from_micros(300));
            }
        });
        assert_eq!(report.tasks_executed(), 64);
        // With a fully stealable tail and this much imbalance, at least one
        // chunk must have migrated.
        assert!(report.migrations > 0, "expected migrations");
    }

    #[test]
    fn empty_range_is_fine() {
        let p = pool(presets::tiny_2x4());
        let report = p.taskloop(10..10, 4, ExecMode::Flat, |_| {
            panic!("body must not run");
        });
        assert_eq!(report.tasks_executed(), 0);
    }

    #[test]
    fn body_panic_propagates() {
        let p = pool(presets::tiny_2x4());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.taskloop(0..10, 1, ExecMode::Flat, |r| {
                if r.start == 5 {
                    panic!("boom in chunk");
                }
            });
        }));
        assert!(result.is_err());
        // Pool is still usable afterwards.
        let count = AtomicUsize::new(0);
        p.taskloop(0..10, 1, ExecMode::Flat, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn sequential_loops_reuse_pool() {
        let p = pool(presets::tiny_2x4());
        for n in [1usize, 17, 256, 33] {
            let count = AtomicUsize::new(0);
            p.taskloop(0..n, 4, ExecMode::Flat, |r| {
                count.fetch_add(r.len(), Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), n);
        }
    }

    #[test]
    fn single_core_topology_works() {
        let p = pool(presets::smp(1));
        let count = AtomicUsize::new(0);
        let report = p.taskloop(0..50, 8, ExecMode::Flat, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 50);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn require_pin_fails_for_oversized_topology() {
        // 64 cores cannot be pinned on this machine unless it really has 64.
        if crate::pin::online_cpus() < 64 {
            let r = ThreadPool::new(PoolConfig::new(presets::epyc_9354_2s()).pin(PinMode::Require));
            assert!(matches!(r, Err(PoolError::PinFailed { .. })));
        }
    }

    #[test]
    fn reports_are_consistent() {
        let p = pool(presets::tiny_2x4());
        let report = p.taskloop(0..256, 4, ExecMode::Flat, |r| {
            std::hint::black_box(r.sum::<usize>());
        });
        assert_eq!(report.tasks_executed(), 64);
        let per_node: usize = report.nodes.iter().map(|n| n.tasks).sum();
        assert_eq!(per_node, 64);
        assert!(report.makespan > Duration::ZERO);
    }

    /// The audit expectations implied by a report.
    fn expect_from(report: &LoopReport) -> ilan_trace::AuditExpect {
        ilan_trace::AuditExpect {
            migrations: Some(report.migrations),
            latch_releases: Some(report.threads),
            per_node: Some(
                report
                    .nodes
                    .iter()
                    .map(|n| ilan_trace::NodeTally {
                        tasks: n.tasks,
                        local_tasks: Some(n.local_tasks),
                    })
                    .collect(),
            ),
        }
    }

    #[test]
    fn traced_strict_run_audits_clean() {
        let p = pool(presets::tiny_2x4());
        let mode = ExecMode::Hierarchical {
            mask: p.topology().all_nodes(),
            threads: 0,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        };
        let (report, log) = p.taskloop_traced(0..256, 4, mode, |r| {
            std::hint::black_box(r.sum::<usize>());
        });
        assert_eq!(log.dropped, 0);
        let audit = ilan_trace::audit(&log, &expect_from(&report));
        assert!(audit.ok(), "audit violations: {audit}");
        assert_eq!(audit.chunks, 64);
        assert_eq!(audit.inter_node_steals, 0);
        assert_eq!(audit.latch_releases, 8);
    }

    #[test]
    fn traced_flat_run_audits_clean() {
        let p = pool(presets::tiny_2x4());
        let (report, log) = p.taskloop_traced(0..500, 5, ExecMode::Flat, |r| {
            std::hint::black_box(r.sum::<usize>());
        });
        let audit = ilan_trace::audit(&log, &expect_from(&report));
        assert!(audit.ok(), "audit violations: {audit}");
        assert_eq!(audit.chunks, 100);
    }

    /// Regression for the report relation `tasks == local_tasks +
    /// migrations`: chunks that reach a worker's private deque via a remote
    /// batch steal and are then taken by an intra-node peer used to be
    /// counted as local, undercounting migrations.
    #[test]
    fn full_policy_report_relation_holds() {
        let p = pool(presets::tiny_2x4());
        for _ in 0..5 {
            let mode = ExecMode::Hierarchical {
                mask: p.topology().all_nodes(),
                threads: 0,
                strict_fraction: 0.0,
                policy: StealPolicy::Full,
            };
            let (report, log) = p.taskloop_traced(0..64, 1, mode, |r| {
                if r.start < 32 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
            let tasks: usize = report.nodes.iter().map(|n| n.tasks).sum();
            let local: usize = report.nodes.iter().map(|n| n.local_tasks).sum();
            assert_eq!(
                tasks,
                local + report.migrations,
                "tasks != local + migrations"
            );
            let audit = ilan_trace::audit(&log, &expect_from(&report));
            assert!(audit.ok(), "audit violations: {audit}");
        }
    }
}
