//! Per-invocation execution reports.
//!
//! A [`LoopReport`] is the native runtime's equivalent of the simulator's
//! `LoopOutcome`: everything the ILAN Performance Trace Table needs to judge
//! a taskloop configuration — wall time, per-node busy time (for detecting
//! performance asymmetry between nodes), scheduling overhead, and migration
//! counts.

use ilan_topology::NodeId;
use std::time::Duration;

/// Statistics for one NUMA node in one invocation.
#[derive(Clone, Debug, Default)]
pub struct NodeReport {
    /// Chunks executed by workers of this node.
    pub tasks: usize,
    /// Wall time spent inside chunk bodies by this node's workers.
    pub busy: Duration,
    /// Chunks that executed on their assigned home node.
    pub local_tasks: usize,
}

/// Statistics for one taskloop invocation.
#[derive(Clone, Debug, Default)]
pub struct LoopReport {
    /// Dispatch-to-barrier wall time.
    pub makespan: Duration,
    /// Accumulated scheduler time across workers: queue operations, steal
    /// attempts, dispatch and completion bookkeeping.
    pub sched_overhead: Duration,
    /// Per-node statistics, indexed by node id.
    pub nodes: Vec<NodeReport>,
    /// Chunks that migrated across NUMA nodes (executed away from their
    /// assigned node).
    pub migrations: usize,
    /// Number of workers eligible to run chunks in this invocation.
    pub threads: usize,
    /// Whether the pool's watchdog escalated during this invocation
    /// (broadcast re-wake and/or dispatcher drain). The loop still executed
    /// every chunk exactly once; `true` only flags that it needed help.
    pub degraded: bool,
}

impl LoopReport {
    /// Total chunks executed.
    pub fn tasks_executed(&self) -> usize {
        self.nodes.iter().map(|n| n.tasks).sum()
    }

    /// Fraction of chunks that ran on their assigned node (1.0 when no
    /// chunk migrated). Returns 0 for an empty loop.
    pub fn locality_fraction(&self) -> f64 {
        let total = self.tasks_executed();
        if total == 0 {
            return 0.0;
        }
        let local: usize = self.nodes.iter().map(|n| n.local_tasks).sum();
        local as f64 / total as f64
    }

    /// The node with the highest throughput (tasks per busy second);
    /// `None` if no node executed anything.
    pub fn fastest_node(&self) -> Option<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.tasks > 0 && !n.busy.is_zero())
            .max_by(|(ia, a), (ib, b)| {
                let ta = a.tasks as f64 / a.busy.as_secs_f64();
                let tb = b.tasks as f64 / b.busy.as_secs_f64();
                ta.partial_cmp(&tb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| NodeId::new(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_locality() {
        let r = LoopReport {
            makespan: Duration::from_millis(10),
            sched_overhead: Duration::from_micros(50),
            nodes: vec![
                NodeReport {
                    tasks: 6,
                    busy: Duration::from_millis(30),
                    local_tasks: 6,
                },
                NodeReport {
                    tasks: 2,
                    busy: Duration::from_millis(20),
                    local_tasks: 0,
                },
            ],
            migrations: 2,
            threads: 8,
            degraded: false,
        };
        assert_eq!(r.tasks_executed(), 8);
        assert!((r.locality_fraction() - 0.75).abs() < 1e-12);
        // Node 0: 200 tasks/s, node 1: 100 tasks/s.
        assert_eq!(r.fastest_node(), Some(NodeId::new(0)));
    }

    #[test]
    fn empty_report() {
        let r = LoopReport::default();
        assert_eq!(r.tasks_executed(), 0);
        assert_eq!(r.locality_fraction(), 0.0);
        assert_eq!(r.fastest_node(), None);
    }
}
