//! Per-worker sleep slots and bounded exponential backoff.
//!
//! The pool's dispatch path used to wake workers through one global
//! `Mutex`/`Condvar` broadcast: every invocation woke *every* worker, even
//! those outside the invocation's node mask, and each of them fought over
//! the same mutex just to learn it had nothing to do. A taskloop confined
//! to 2 of 8 nodes on the EPYC preset paid 48 futile wakeups per launch.
//!
//! [`SleepSlot`] replaces that with an eventcount per worker: the
//! dispatcher publishes the new epoch into exactly the slots of the
//! workers it activates and unparks only those that are actually parked.
//! Workers spin briefly with [`Backoff`] before parking, since
//! back-to-back taskloops (the common case in iterative workloads) re-wake
//! them within microseconds.

use crossbeam_utils::CachePadded;
use std::sync::OnceLock;

// Under `--cfg loom` the slot's atomics and park/unpark run on the loom
// model-checker shims so the protocol can be exhaustively explored; see the
// `loom_model` test module. Outside a loom model the shims delegate to std,
// so a `--cfg loom` build still behaves normally.
#[cfg(not(loom))]
pub(crate) mod sys {
    pub(crate) use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    pub(crate) use std::thread::{current, park, Thread};
}
#[cfg(loom)]
pub(crate) mod sys {
    pub(crate) use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    pub(crate) use loom::thread::{current, park, Thread};
}

use sys::{AtomicU32, AtomicU64, Ordering, Thread};

/// The current thread's parkable handle (std's, or loom's inside a model).
pub(crate) fn thread_current() -> Thread {
    sys::current()
}

/// Bounded exponential backoff for contended retry loops.
///
/// Spins with exponentially growing pause counts, then falls back to
/// `yield_now`, and reports completion so callers can escalate to parking.
/// Replaces the raw `spin_loop` retry loops the runtime used to run —
/// unbounded spinning burns the very cores the loop body needs, which on
/// an oversubscribed machine turns nanoseconds of queue contention into
/// milliseconds of scheduler thrash.
pub(crate) struct Backoff {
    step: u32,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    pub(crate) fn new() -> Self {
        Backoff { step: 0 }
    }

    /// One wait step: `2^step` pause instructions while spinning is cheap,
    /// a scheduler yield once it is not.
    pub(crate) fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// Whether the caller should stop snoozing and park instead.
    pub(crate) fn is_completed(&self) -> bool {
        // Under loom, spinning only multiplies the interleavings to
        // explore without changing reachability: park immediately.
        #[cfg(loom)]
        {
            true
        }
        #[cfg(not(loom))]
        {
            self.step > Self::YIELD_LIMIT
        }
    }
}

const AWAKE: u32 = 0;
const PARKED: u32 = 1;

/// One worker's wakeup slot: a published epoch plus park/unpark plumbing.
///
/// Protocol: the dispatcher writes all run state, then calls
/// [`post`](Self::post) with a fresh epoch on each slot it wants running.
/// The release store of the epoch paired with the worker's acquire load in
/// [`wait`](Self::wait) makes every prior write visible to the woken
/// worker. Workers the dispatcher skips sleep through the entire
/// invocation; their slot epoch simply jumps several steps the next time
/// they participate.
pub(crate) struct SleepSlot {
    /// Epoch this worker was last told to run. Padded: slots sit in one
    /// array and are written by the dispatcher while workers poll their
    /// own — sharing a line would ping-pong it across every wakeup.
    epoch: CachePadded<AtomicU64>,
    /// AWAKE / PARKED, owned by the worker, swapped by the dispatcher.
    state: AtomicU32,
    /// The worker's thread handle, registered once at startup.
    thread: OnceLock<Thread>,
}

impl SleepSlot {
    pub(crate) fn new() -> Self {
        SleepSlot {
            epoch: CachePadded::new(AtomicU64::new(0)),
            state: AtomicU32::new(AWAKE),
            thread: OnceLock::new(),
        }
    }

    /// Records the owning worker's thread handle. Must be called by the
    /// worker before the pool constructor returns (the ready latch orders
    /// this against the first dispatch).
    pub(crate) fn register(&self, thread: Thread) {
        let _ = self.thread.set(thread);
    }

    /// Publishes `epoch` and wakes the worker if it is parked.
    ///
    /// The epoch store is the publication point for all run state written
    /// before it; `SeqCst` also orders it against the worker's
    /// `state`-then-recheck sequence so a worker can never park after
    /// missing the new epoch.
    pub(crate) fn post(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::SeqCst);
        if self.state.swap(AWAKE, Ordering::SeqCst) == PARKED {
            if let Some(t) = self.thread.get() {
                t.unpark();
            }
        }
    }

    /// The currently published epoch (used by fault-injected stall loops to
    /// notice that a new invocation superseded the one they slept through).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Blocks until the slot's epoch differs from `seen`, returning the new
    /// epoch. Spins with backoff first, then parks.
    pub(crate) fn wait(&self, seen: u64) -> u64 {
        let mut backoff = Backoff::new();
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            if e != seen {
                return e;
            }
            if backoff.is_completed() {
                // Announce intent to park, then recheck: if the dispatcher
                // posted between the load above and here, its swap(AWAKE)
                // either sees PARKED (and unparks us — the token makes the
                // park below return immediately) or we see the new epoch in
                // the recheck and skip parking entirely.
                self.state.store(PARKED, Ordering::SeqCst);
                if self.epoch.load(Ordering::SeqCst) != seen {
                    self.state.store(AWAKE, Ordering::Relaxed);
                    continue;
                }
                sys::park();
                self.state.store(AWAKE, Ordering::SeqCst);
            } else {
                backoff.snooze();
            }
        }
    }
}

/// Exhaustive model of the eventcount protocol under `WakeMode::Targeted`.
///
/// Run with `RUSTFLAGS="--cfg loom" cargo test -p ilan-runtime loom_model`.
/// The model is the exact code production uses — `post` racing `wait` —
/// not a transcription: a lost wakeup in any interleaving deadlocks the
/// join and fails the model with a deadlock report.
#[cfg(all(loom, test))]
mod loom_model {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn targeted_post_never_loses_a_wakeup() {
        loom::model(|| {
            let slot = Arc::new(SleepSlot::new());
            let s2 = Arc::clone(&slot);
            let waiter = loom::thread::spawn(move || {
                s2.register(thread_current());
                s2.wait(0)
            });
            // The dispatcher side of WakeMode::Targeted: publish the new
            // epoch, then wake the worker iff it already parked.
            slot.post(1);
            assert_eq!(waiter.join().unwrap(), 1);
        });
    }

    #[test]
    fn back_to_back_posts_reach_a_slow_waiter() {
        // A worker that sat out an invocation must still observe the
        // latest epoch, whichever point of the protocol it parked at.
        loom::model(|| {
            let slot = Arc::new(SleepSlot::new());
            let s2 = Arc::clone(&slot);
            let waiter = loom::thread::spawn(move || {
                s2.register(thread_current());
                let e = s2.wait(0);
                assert!(e == 1 || e == 2, "stale epoch {e}");
                s2.wait(e.wrapping_sub(1)) // already-new epoch: no block
            });
            slot.post(1);
            slot.post(2);
            let last = waiter.join().unwrap();
            assert!(last == 1 || last == 2);
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backoff_terminates() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            if b.is_completed() {
                break;
            }
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn post_wakes_parked_waiter() {
        let slot = Arc::new(SleepSlot::new());
        let s2 = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            s2.register(std::thread::current());
            s2.wait(0)
        });
        // Give the waiter time to park, then post.
        std::thread::sleep(std::time::Duration::from_millis(20));
        slot.post(7);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn wait_returns_immediately_on_stale_seen() {
        let slot = SleepSlot::new();
        slot.register(std::thread::current());
        slot.post(3);
        assert_eq!(slot.wait(0), 3);
        // Epochs may jump several steps for workers that sat out runs.
        slot.post(9);
        assert_eq!(slot.wait(3), 9);
    }

    #[test]
    fn post_before_park_is_not_lost() {
        // Post racing the waiter's park announcement must never deadlock.
        for round in 0..50u64 {
            let slot = Arc::new(SleepSlot::new());
            let s2 = Arc::clone(&slot);
            let h = std::thread::spawn(move || {
                s2.register(std::thread::current());
                s2.wait(0)
            });
            slot.post(round + 1);
            assert_eq!(h.join().unwrap(), round + 1);
        }
    }
}
