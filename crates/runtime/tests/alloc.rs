//! Zero-allocation assertion for the warm dispatch path.
//!
//! The dispatch arena exists so that a warm `taskloop` — one whose pool has
//! already executed a loop of the same shape — performs **no heap
//! allocation** on the dispatching thread: chunk table, injectors, sleep
//! tokens, latch and report are all reused. This test installs a counting
//! global allocator and proves it.
//!
//! Counting is thread-scoped (const-initialised TLS, so the counter itself
//! never allocates): worker threads may allocate freely without tripping the
//! assertion, but the dispatch path runs on this test's thread and must stay
//! clean.

use ilan_runtime::{ExecMode, Grain, LoopReport, PinMode, PoolConfig, StealPolicy, ThreadPool};
use ilan_topology::presets;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAlloc;

impl CountingAlloc {
    fn note(&self) {
        if TRACKING.with(Cell::get) {
            ALLOCS.with(|a| a.set(a.get() + 1));
        }
    }
}

// SAFETY: delegates verbatim to `System`; the TLS bookkeeping does not
// allocate (const-initialised cells).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.note();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.note();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.note();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with this thread's allocations counted, returning the count.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.with(|a| a.set(0));
    TRACKING.with(|t| t.set(true));
    f();
    TRACKING.with(|t| t.set(false));
    ALLOCS.with(Cell::get)
}

#[test]
fn warm_taskloop_dispatch_path_does_not_allocate() {
    let p = ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
    let mask = p.topology().all_nodes();
    let sum = AtomicUsize::new(0);
    let modes = [
        ExecMode::Flat,
        ExecMode::WorkSharing,
        ExecMode::Hierarchical {
            mask,
            threads: 0,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        },
        ExecMode::Hierarchical {
            mask,
            threads: 0,
            strict_fraction: 0.5,
            policy: StealPolicy::Full,
        },
    ];
    let mut report = LoopReport::default();
    let body = |r: std::ops::Range<usize>| {
        sum.fetch_add(r.len(), Ordering::Relaxed);
    };

    // Warm-up: every mode once, same loop shape as the measured runs, so
    // the arena's chunk table, injector rings and report vectors reach
    // their steady-state capacity.
    for mode in &modes {
        p.taskloop_into(0..4096, Grain::Size(16), mode.clone(), body, &mut report);
    }

    for mode in &modes {
        sum.store(0, Ordering::Relaxed);
        let allocs = count_allocs(|| {
            p.taskloop_into(0..4096, Grain::Size(16), mode.clone(), body, &mut report);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4096, "mode {mode:?} lost work");
        assert_eq!(report.tasks_executed(), 256);
        assert_eq!(
            allocs, 0,
            "warm dispatch allocated {allocs} times under {mode:?}"
        );
    }
}

#[test]
fn warm_inline_fast_path_does_not_allocate() {
    let p = ThreadPool::new(PoolConfig::new(presets::tiny_2x4()).pin(PinMode::Never)).unwrap();
    let sum = AtomicUsize::new(0);
    let mut report = LoopReport::default();
    let body = |r: std::ops::Range<usize>| {
        sum.fetch_add(r.len(), Ordering::Relaxed);
    };
    // One warm-up to size the report's node vector.
    p.taskloop_into(0..16, Grain::Size(4), ExecMode::Flat, body, &mut report);

    sum.store(0, Ordering::Relaxed);
    let allocs = count_allocs(|| {
        p.taskloop_into(0..16, Grain::Size(4), ExecMode::Flat, body, &mut report);
    });
    assert_eq!(sum.load(Ordering::Relaxed), 16);
    assert_eq!(report.threads, 1, "small loop must take the inline path");
    assert_eq!(allocs, 0, "inline fast path allocated {allocs} times");
}
