//! Pool metrics and flight-recorder integration tests, including the
//! native half of the metrics-vs-trace differential check (ISSUE 5
//! satellite): counters from `ilan-metrics` must agree with the steal
//! matrix of an `ilan-trace` log taken over the same run.

use ilan_faults::{FaultConfig, FaultPlan};
use ilan_metrics::{FlightReason, SampleValue};
use ilan_runtime::{ExecMode, LoopReport, PinMode, PoolConfig, StealPolicy, ThreadPool};
use ilan_topology::{presets, Topology};
use std::time::Duration;

fn pool(topo: Topology) -> ThreadPool {
    ThreadPool::new(PoolConfig::new(topo).pin(PinMode::Never)).unwrap()
}

fn expect_from(report: &LoopReport) -> ilan_trace::AuditExpect {
    ilan_trace::AuditExpect {
        migrations: Some(report.migrations),
        latch_releases: Some(report.threads),
        per_node: Some(
            report
                .nodes
                .iter()
                .map(|n| ilan_trace::NodeTally {
                    tasks: n.tasks,
                    local_tasks: Some(n.local_tasks),
                })
                .collect(),
        ),
    }
}

fn counter_of(snap: &ilan_metrics::MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> u64 {
    match snap.get_with(name, labels) {
        Some(SampleValue::Counter(v)) => *v,
        other => panic!("{name}{labels:?}: expected a counter, got {other:?}"),
    }
}

#[test]
fn counters_track_dispatch_and_inline_paths() {
    let p = pool(presets::tiny_2x4());
    let m = p.metrics().expect("metrics on by default");

    // A dispatched loop (large enough to clear the inline threshold).
    let report = p.taskloop(0..40_000, 64, ExecMode::Flat, |r| {
        std::hint::black_box(r.sum::<usize>());
    });
    // And an inline one (single chunk).
    p.taskloop(0..8, 64, ExecMode::Flat, |r| {
        std::hint::black_box(r.sum::<usize>());
    });

    let snap = m.registry().snapshot();
    assert_eq!(
        counter_of(&snap, "ilan_pool_loops", &[("path", "dispatched")]),
        1
    );
    assert_eq!(
        counter_of(&snap, "ilan_pool_loops", &[("path", "inline")]),
        1
    );
    // Every executed chunk was acquired exactly one way.
    assert_eq!(
        snap.counter_total("ilan_pool_acquisitions") as usize,
        report.tasks_executed()
    );
    assert_eq!(m.dispatch_ns().count(), 1);
    assert_eq!(m.loop_ns().count(), 1);
    // Exposition renders the families and is well-formed.
    let text = p.metrics_text();
    for family in [
        "ilan_pool_loops_total",
        "ilan_pool_dispatch_ns_bucket",
        "ilan_pool_acquisitions_total",
        "ilan_pool_wakeups_total",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    assert!(text.ends_with("# EOF\n"));
}

/// Differential check, native half: the acquisition counters must equal the
/// trace log's pop/steal tallies over the same traced invocation.
#[test]
fn native_counters_match_trace_steal_matrix() {
    let p = pool(presets::tiny_2x4());
    let m = p.metrics().unwrap();
    let mode = ExecMode::Hierarchical {
        mask: p.topology().all_nodes(),
        threads: 0,
        strict_fraction: 0.5,
        policy: StealPolicy::Full,
    };
    for _ in 0..5 {
        let before = m.registry().snapshot();
        let (report, log) = p.taskloop_traced(0..20_000, 32, mode.clone(), |r| {
            std::hint::black_box(r.sum::<usize>());
        });
        let delta = m.registry().snapshot().delta(&before);
        let acq = |kind: &str| counter_of(&delta, "ilan_pool_acquisitions", &[("kind", kind)]);
        assert_eq!(acq("local_pop") as usize, log.local_pops());
        assert_eq!(acq("intra_steal") as usize, log.intra_node_steals());
        assert_eq!(acq("inter_steal") as usize, log.inter_node_steals());
        assert_eq!(acq("inter_steal") as usize, report.migrations);
        // Steal-probe accounting: hits never exceed attempts, per scope.
        for scope in ["local", "remote"] {
            let hits = counter_of(&delta, "ilan_pool_steal_hits", &[("scope", scope)]);
            let attempts = counter_of(&delta, "ilan_pool_steal_attempts", &[("scope", scope)]);
            assert!(
                hits <= attempts,
                "{scope}: {hits} hits out of {attempts} attempts"
            );
        }
    }
}

/// An injected permanent stall degrades the run and makes the flight
/// recorder park a complete, auditable dump — without tracing enabled.
#[test]
fn stall_produces_flight_dump_passing_audit() {
    let topo = presets::tiny_2x4();
    // Find a seed that permanently stalls exactly one worker.
    let config = FaultConfig {
        max_worker_stalls: 1,
        permanent_stalls: true,
        max_stall_ns: 1_000_000,
        ..FaultConfig::none()
    };
    let plan = (0..10_000u64)
        .map(|seed| {
            FaultPlan::new(
                seed,
                topo.num_cores() as u32,
                topo.num_nodes() as u32,
                config,
            )
        })
        .find(|p| p.stalls().len() == 1 && p.stalls().values().next().unwrap().permanent)
        .expect("a permanently stalling plan");
    let p = ThreadPool::new(
        PoolConfig::new(topo)
            .pin(PinMode::Never)
            .watchdog(Duration::from_millis(10))
            .faults(plan),
    )
    .unwrap();

    let report = p.taskloop(0..500, 5, ExecMode::Flat, |r| {
        std::hint::black_box(r.sum::<usize>());
    });
    assert!(report.degraded, "a permanent stall must degrade the run");

    let dump = p.take_flight_dump().expect("anomaly must park a dump");
    assert!(
        matches!(dump.reason, FlightReason::Degraded { stage } if stage >= 1),
        "unexpected reason {:?}",
        dump.reason
    );
    // The rings held the complete invocation: the dump audits clean.
    let audit = ilan_trace::audit(&dump.log, &expect_from(&report));
    assert!(audit.ok(), "flight dump audit violations: {audit}");
    assert!(audit.claimed_workers >= 1);
    assert!(dump.chrome_json.contains("traceEvents"));
    assert!(dump.metrics_text.contains("ilan_pool_degraded_total"));

    // The degradation stage counter agrees with the dump's reason.
    let m = p.metrics().unwrap();
    let snap = m.registry().snapshot();
    let stage1 = counter_of(&snap, "ilan_pool_degraded", &[("stage", "1")]);
    let stage2 = counter_of(&snap, "ilan_pool_degraded", &[("stage", "2")]);
    assert_eq!(stage1 + stage2, 1);
    assert!(counter_of(&snap, "ilan_pool_faults_injected", &[]) >= 1);
    assert_eq!(m.flight().triggers(), 1);

    // take() re-armed the recorder: the next anomaly captures again.
    let report2 = p.taskloop(0..500, 5, ExecMode::Flat, |r| {
        std::hint::black_box(r.sum::<usize>());
    });
    assert!(report2.degraded);
    assert!(p.take_flight_dump().is_some());
}

#[test]
fn metrics_can_be_disabled() {
    let p = ThreadPool::new(
        PoolConfig::new(presets::smp(4))
            .pin(PinMode::Never)
            .metrics(false),
    )
    .unwrap();
    assert!(p.metrics().is_none());
    assert_eq!(p.metrics_text(), "# EOF\n");
    p.taskloop(0..10_000, 16, ExecMode::Flat, |r| {
        std::hint::black_box(r.sum::<usize>());
    });
    assert!(p.take_flight_dump().is_none());
}
