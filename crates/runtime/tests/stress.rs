//! Stress and concurrency tests for the native runtime.

use ilan_runtime::{ExecMode, PinMode, PoolConfig, StealPolicy, ThreadPool};
use ilan_topology::{presets, NodeMask};
use std::sync::atomic::{AtomicUsize, Ordering};

fn pool(topo: ilan_topology::Topology) -> ThreadPool {
    ThreadPool::new(PoolConfig::new(topo).pin(PinMode::Never)).expect("pool")
}

#[test]
fn many_small_loops_back_to_back() {
    let p = pool(presets::tiny_2x4());
    for round in 0..200 {
        let n = 1 + (round * 37) % 257;
        let count = AtomicUsize::new(0);
        p.taskloop(0..n, 1 + round % 9, ExecMode::Flat, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), n, "round {round}");
    }
}

#[test]
fn oversubscribed_pool_is_correct() {
    // 64 workers on however many cores this machine has.
    let p = pool(presets::epyc_9354_2s());
    let count = AtomicUsize::new(0);
    let report = p.taskloop(0..10_000, 50, ExecMode::Flat, |r| {
        count.fetch_add(r.len(), Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 10_000);
    assert_eq!(report.threads, 64);
}

#[test]
fn alternating_modes_share_one_pool() {
    let p = pool(presets::tiny_2x4());
    let mask = p.topology().all_nodes();
    let modes = [
        ExecMode::Flat,
        ExecMode::WorkSharing,
        ExecMode::Hierarchical {
            mask,
            threads: 0,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        },
        ExecMode::Hierarchical {
            mask: NodeMask::first_n(1),
            threads: 2,
            strict_fraction: 0.0,
            policy: StealPolicy::Full,
        },
    ];
    for round in 0..40 {
        let mode = modes[round % modes.len()].clone();
        let count = AtomicUsize::new(0);
        p.taskloop(0..500, 8, mode, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500, "round {round}");
    }
}

#[test]
fn taskloop_from_multiple_caller_threads_serializes() {
    let p = std::sync::Arc::new(pool(presets::tiny_2x4()));
    let total = std::sync::Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let p = std::sync::Arc::clone(&p);
            let total = std::sync::Arc::clone(&total);
            scope.spawn(move || {
                for _ in 0..10 {
                    let local = AtomicUsize::new(0);
                    p.taskloop(0..300, 10, ExecMode::Flat, |r| {
                        local.fetch_add(r.len(), Ordering::Relaxed);
                    });
                    assert_eq!(local.load(Ordering::Relaxed), 300);
                    total.fetch_add(300, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 4 * 10 * 300);
}

#[test]
fn heavy_imbalance_with_full_stealing_balances() {
    let p = pool(presets::tiny_2x4());
    // One pathological chunk 100× the rest.
    let report = p.taskloop(
        0..64,
        1,
        ExecMode::Hierarchical {
            mask: p.topology().all_nodes(),
            threads: 0,
            strict_fraction: 0.0,
            policy: StealPolicy::Full,
        },
        |r| {
            let spins = if r.start == 0 { 2_000_000 } else { 20_000 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
        },
    );
    assert_eq!(report.tasks_executed(), 64);
}

#[test]
fn grainsize_one_with_tiny_bodies() {
    let p = pool(presets::tiny_2x4());
    let count = AtomicUsize::new(0);
    let report = p.taskloop(0..5_000, 1, ExecMode::Flat, |r| {
        count.fetch_add(r.len(), Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 5_000);
    assert_eq!(report.tasks_executed(), 5_000);
}

#[test]
fn pool_drop_with_pending_nothing_hangs() {
    // Construct and immediately drop pools repeatedly: no deadlock or leak
    // of worker threads (join happens in Drop).
    for _ in 0..20 {
        let p = pool(presets::smp(4));
        drop(p);
    }
}

#[test]
fn reports_capture_mode_differences() {
    let p = pool(presets::tiny_2x4());
    let strict = p.taskloop(
        0..2_000,
        10,
        ExecMode::Hierarchical {
            mask: p.topology().all_nodes(),
            threads: 0,
            strict_fraction: 1.0,
            policy: StealPolicy::Strict,
        },
        |r| {
            std::hint::black_box(r.sum::<usize>());
        },
    );
    assert_eq!(strict.migrations, 0);
    assert!((strict.locality_fraction() - 1.0).abs() < 1e-9);

    let ws = p.taskloop(0..2_000, 10, ExecMode::WorkSharing, |r| {
        std::hint::black_box(r.sum::<usize>());
    });
    assert_eq!(ws.tasks_executed(), 200);
}
