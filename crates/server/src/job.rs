//! Job specifications and the seeded arrival stream.
//!
//! A *job* is one tenant program: a benchmark workload run for a small
//! number of timesteps. The serving experiment replays a Poisson-style
//! stream of such jobs — exponential inter-arrival times, a fixed workload
//! mix, and a small fraction of high-priority requests — all drawn
//! deterministically from a seed so a run can be replayed exactly.

use ilan_workloads::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scheduling class of a job. High-priority jobs are admitted ahead of
/// normal ones whenever both are waiting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobPriority {
    /// Admitted before any waiting [`Normal`](JobPriority::Normal) job.
    High,
    /// Default class, served in arrival order.
    Normal,
}

impl JobPriority {
    /// Single-letter tag used in reports.
    pub fn tag(self) -> &'static str {
        match self {
            JobPriority::High => "H",
            JobPriority::Normal => "N",
        }
    }
}

/// One job of the serving stream.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Stream-unique id (also the submission order).
    pub id: usize,
    /// The tenant's program.
    pub workload: Workload,
    /// Timesteps the tenant runs (each timestep executes the workload's full
    /// per-step taskloop schedule, so the invocation count is
    /// `steps × schedule.len()`).
    pub steps: usize,
    /// Scheduling class.
    pub priority: JobPriority,
    /// Submission time on the machine clock, ns.
    pub arrival_ns: f64,
}

/// Parameters of the generated job stream.
#[derive(Clone, Debug)]
pub struct StreamParams {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean of the exponential inter-arrival distribution, ns.
    pub mean_interarrival_ns: f64,
    /// Workload mix, sampled uniformly per job.
    pub mix: Vec<Workload>,
    /// Timesteps per job.
    pub steps: usize,
    /// Probability that a job is [`JobPriority::High`].
    pub high_priority_fraction: f64,
}

impl StreamParams {
    /// The colocation experiment's default mix: two bandwidth-hungry
    /// applications (CG, SP) and one compute-bound (Matmul), per the paper's
    /// interference taxonomy.
    pub fn mixed(jobs: usize, mean_interarrival_ns: f64) -> Self {
        StreamParams {
            jobs,
            mean_interarrival_ns,
            mix: vec![Workload::Cg, Workload::Sp, Workload::Matmul],
            steps: 2,
            high_priority_fraction: 0.25,
        }
    }
}

/// Generates the job stream for `seed`: exponential inter-arrival gaps,
/// uniform workload mix, Bernoulli priority. The result is sorted by
/// arrival time (arrivals are generated in order) and is a pure function of
/// `(seed, params)`.
pub fn generate_stream(seed: u64, params: &StreamParams) -> Vec<JobSpec> {
    assert!(!params.mix.is_empty(), "stream needs a workload mix");
    assert!(
        params.mean_interarrival_ns > 0.0,
        "mean inter-arrival must be positive"
    );
    assert!(params.steps > 0, "jobs need at least one step");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrival = 0.0f64;
    (0..params.jobs)
        .map(|id| {
            // Exponential gap: −mean·ln(1−u), u uniform in [0,1).
            let u: f64 = rng.random();
            arrival += -params.mean_interarrival_ns * (1.0 - u).ln();
            let workload = params.mix[rng.random_range(0..params.mix.len())];
            let p: f64 = rng.random();
            let priority = if p < params.high_priority_fraction {
                JobPriority::High
            } else {
                JobPriority::Normal
            };
            JobSpec {
                id,
                workload,
                steps: params.steps,
                priority,
                arrival_ns: arrival,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let p = StreamParams::mixed(32, 1e6);
        let a = generate_stream(7, &p);
        let b = generate_stream(7, &p);
        assert_eq!(a.len(), 32);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.workload, y.workload);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.arrival_ns, y.arrival_ns);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = StreamParams::mixed(32, 1e6);
        let a = generate_stream(1, &p);
        let b = generate_stream(2, &p);
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.arrival_ns != y.arrival_ns || x.workload != y.workload),
            "seeds 1 and 2 produced identical streams"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_positive() {
        let p = StreamParams::mixed(64, 5e5);
        let s = generate_stream(3, &p);
        let mut prev = 0.0;
        for j in &s {
            assert!(j.arrival_ns >= prev, "arrivals must be non-decreasing");
            assert!(j.arrival_ns > 0.0);
            prev = j.arrival_ns;
        }
    }

    #[test]
    fn mix_and_priorities_show_up() {
        let p = StreamParams::mixed(200, 1e6);
        let s = generate_stream(11, &p);
        for w in [Workload::Cg, Workload::Sp, Workload::Matmul] {
            assert!(s.iter().any(|j| j.workload == w), "{} missing", w.name());
        }
        assert!(s.iter().any(|j| j.priority == JobPriority::High));
        assert!(s.iter().any(|j| j.priority == JobPriority::Normal));
    }

    #[test]
    #[should_panic(expected = "workload mix")]
    fn rejects_empty_mix() {
        let p = StreamParams {
            mix: vec![],
            ..StreamParams::mixed(4, 1e6)
        };
        generate_stream(0, &p);
    }
}
