//! `ilan-server`: a multi-tenant, interference-aware co-scheduling service.
//!
//! The ILAN paper schedules one application at a time. This crate asks the
//! next question: what happens when several applications *share* the NUMA
//! machine? It serves a seeded Poisson-style stream of jobs (benchmark
//! workloads with a step count and a priority) on the colocation simulator
//! ([`ilan_numasim::ColoMachine`]), with:
//!
//! * an **admission controller** that queues jobs until a partition is
//!   available, admitting high-priority jobs first and backfilling around
//!   jobs that do not fit;
//! * a **partitioner** ([`Partitioner`]) carving the NUMA nodes into
//!   disjoint per-tenant partitions under three policies — naive
//!   full-machine sharing, static equal slots, and interference-aware
//!   placement that isolates bandwidth-hungry tenants (CG, SP) on their own
//!   socket and packs compute-bound tenants (Matmul) together;
//! * one **confined ILAN scheduler per tenant** ([`Tenant`]): the paper's
//!   moldability search, node-mask selection and steal trial run unchanged
//!   inside the tenant's partition;
//! * a **PTT warm-start store** ([`PttStore`]): a completed job's
//!   Performance Trace Table is saved in the plain-text format and reloaded
//!   for the next job of the same workload and partition size, which then
//!   starts settled and skips the exploration cost entirely;
//! * **serving metrics** ([`ColoSummary`]): throughput, p50/p95/p99 job
//!   latency, per-job slowdown versus an isolated run, and ANTT.
//!
//! The headline experiment ([`compare_policies`]) replays one stream under
//! all three policies; `repro -- colo` prints it.
//!
//! Under fault injection ([`run_colocation_faulty`]) the same serving loop
//! degrades instead of failing: injected loop failures retry with
//! exponential backoff, corrupted PTT saves fall back to cold starts, and
//! overload arrivals are shed with full accounting ([`ColoRunReport`]).

#![warn(missing_docs)]

mod job;
mod metrics;
mod partition;
mod report;
mod server;
mod telemetry;
mod tenant;

pub use job::{generate_stream, JobPriority, JobSpec, StreamParams};
pub use metrics::{summarize, ColoSummary, JobRecord};
pub use partition::{demand_ratio, is_bandwidth_hungry, Partitioner, SharingPolicy, ALL_POLICIES};
pub use report::{compare_policies, ColoExperiment};
pub use server::{
    run_colocation, run_colocation_faulty, run_colocation_report, ColoRunReport, PttStore,
    ServerConfig, RETRY_BACKOFF_NS,
};
pub use telemetry::ServerMetrics;
pub use tenant::{confine_app, Tenant};
