//! Serving metrics: per-job records and the stream-level summary.
//!
//! Each completed job yields a [`JobRecord`]; a run reduces to a
//! [`ColoSummary`] with the metrics the colocation literature reports:
//! throughput, latency percentiles, per-job slowdown against an isolated
//! run, and ANTT (average normalized turnaround time — the mean slowdown).
//! All formatting is deterministic: the same records render byte-identical
//! text.

use crate::job::JobPriority;
use ilan_workloads::Workload;
use std::collections::BTreeMap;
use std::fmt;

/// The outcome of one served job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Stream id of the job.
    pub id: usize,
    /// The tenant's program.
    pub workload: Workload,
    /// Scheduling class.
    pub priority: JobPriority,
    /// Submission time, ns.
    pub arrival_ns: f64,
    /// Admission time (partition granted), ns.
    pub admitted_ns: f64,
    /// Completion time, ns.
    pub finish_ns: f64,
    /// Nodes in the partition the job ran in.
    pub partition_nodes: usize,
    /// Whether the job's scheduler was warm-started from a stored PTT.
    pub warm_started: bool,
    /// Scheduling overhead accumulated across the job's invocations, ns.
    pub sched_overhead_ns: f64,
    /// Latency of the same job run alone on the whole machine, ns.
    pub isolated_ns: f64,
}

impl JobRecord {
    /// Submission-to-completion latency, ns.
    pub fn latency_ns(&self) -> f64 {
        self.finish_ns - self.arrival_ns
    }

    /// Queueing delay before admission, ns.
    pub fn wait_ns(&self) -> f64 {
        self.admitted_ns - self.arrival_ns
    }

    /// Execution time inside the partition, ns.
    pub fn exec_ns(&self) -> f64 {
        self.finish_ns - self.admitted_ns
    }

    /// Normalized turnaround: latency relative to the isolated run.
    pub fn slowdown(&self) -> f64 {
        self.latency_ns() / self.isolated_ns
    }
}

/// Stream-level metrics of one policy's run.
#[derive(Clone, Debug)]
pub struct ColoSummary {
    /// Sharing policy name.
    pub policy: &'static str,
    /// Jobs served.
    pub jobs: usize,
    /// Last completion time, ns (the stream's makespan).
    pub makespan_ns: f64,
    /// Jobs per simulated second.
    pub throughput_per_s: f64,
    /// Latency percentiles (nearest-rank), ns.
    pub p50_ns: f64,
    /// 95th-percentile latency, ns.
    pub p95_ns: f64,
    /// 99th-percentile latency, ns.
    pub p99_ns: f64,
    /// Average normalized turnaround time (mean slowdown).
    pub antt: f64,
    /// Worst per-job slowdown.
    pub max_slowdown: f64,
    /// Mean slowdown per workload, keyed by display name.
    pub per_workload: BTreeMap<&'static str, f64>,
    /// Jobs whose scheduler was warm-started.
    pub warm_jobs: usize,
    /// Mean per-job scheduling overhead across the job's invocations, ns.
    pub mean_sched_overhead_ns: f64,
}

/// Nearest-rank percentile of pre-sorted `sorted` (q in (0, 100]).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty set");
    let n = sorted.len();
    let rank = ((q / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Reduces a run's records to its [`ColoSummary`].
pub fn summarize(policy: &'static str, records: &[JobRecord]) -> ColoSummary {
    assert!(!records.is_empty(), "summary needs at least one job");
    let mut latencies: Vec<f64> = records.iter().map(|r| r.latency_ns()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let makespan_ns = records.iter().map(|r| r.finish_ns).fold(0.0f64, f64::max);
    let antt = records.iter().map(|r| r.slowdown()).sum::<f64>() / records.len() as f64;
    let max_slowdown = records.iter().map(|r| r.slowdown()).fold(0.0f64, f64::max);
    let mut per_workload: BTreeMap<&'static str, (f64, usize)> = BTreeMap::new();
    for r in records {
        let e = per_workload.entry(r.workload.name()).or_insert((0.0, 0));
        e.0 += r.slowdown();
        e.1 += 1;
    }
    ColoSummary {
        policy,
        jobs: records.len(),
        makespan_ns,
        throughput_per_s: records.len() as f64 / (makespan_ns * 1e-9),
        p50_ns: percentile(&latencies, 50.0),
        p95_ns: percentile(&latencies, 95.0),
        p99_ns: percentile(&latencies, 99.0),
        antt,
        max_slowdown,
        per_workload: per_workload
            .into_iter()
            .map(|(k, (sum, n))| (k, sum / n as f64))
            .collect(),
        warm_jobs: records.iter().filter(|r| r.warm_started).count(),
        mean_sched_overhead_ns: records.iter().map(|r| r.sched_overhead_ns).sum::<f64>()
            / records.len() as f64,
    }
}

fn ms(ns: f64) -> f64 {
    ns * 1e-6
}

impl fmt::Display for ColoSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<20} jobs={:<3} makespan={:.2}ms throughput={:.1}/s warm={}",
            self.policy,
            self.jobs,
            ms(self.makespan_ns),
            self.throughput_per_s,
            self.warm_jobs
        )?;
        writeln!(
            f,
            "  latency p50={:.2}ms p95={:.2}ms p99={:.2}ms sched-overhead={:.1}us/job",
            ms(self.p50_ns),
            ms(self.p95_ns),
            ms(self.p99_ns),
            self.mean_sched_overhead_ns * 1e-3
        )?;
        write!(
            f,
            "  ANTT={:.2} max-slowdown={:.2}",
            self.antt, self.max_slowdown
        )?;
        for (w, s) in &self.per_workload {
            write!(f, " {w}={s:.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        id: usize,
        workload: Workload,
        arrival: f64,
        finish: f64,
        isolated: f64,
    ) -> JobRecord {
        JobRecord {
            id,
            workload,
            priority: JobPriority::Normal,
            arrival_ns: arrival,
            admitted_ns: arrival,
            finish_ns: finish,
            partition_nodes: 2,
            warm_started: id % 2 == 1,
            sched_overhead_ns: (id + 1) as f64 * 10_000.0,
            isolated_ns: isolated,
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn summary_aggregates() {
        let records = vec![
            record(0, Workload::Cg, 0.0, 2e6, 1e6),     // slowdown 2
            record(1, Workload::Matmul, 0.0, 4e6, 1e6), // slowdown 4
        ];
        let s = summarize("test", &records);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.makespan_ns, 4e6);
        assert!((s.antt - 3.0).abs() < 1e-12);
        assert_eq!(s.max_slowdown, 4.0);
        assert_eq!(s.per_workload["CG"], 2.0);
        assert_eq!(s.per_workload["Matmul"], 4.0);
        assert_eq!(s.warm_jobs, 1);
        assert_eq!(s.p95_ns, 4e6);
        // Mean of 10us and 20us of per-job scheduling overhead.
        assert!((s.mean_sched_overhead_ns - 15_000.0).abs() < 1e-9);
    }

    #[test]
    fn rendering_is_deterministic() {
        let records = vec![
            record(0, Workload::Sp, 1.0, 3e6, 1.5e6),
            record(1, Workload::Cg, 2.0, 5e6, 2e6),
        ];
        let a = summarize("p", &records).to_string();
        let b = summarize("p", &records).to_string();
        assert_eq!(a, b);
        assert!(a.contains("ANTT="));
        assert!(a.contains("sched-overhead=15.0us/job"));
    }
}
