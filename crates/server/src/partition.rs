//! Machine partitioning: how concurrent tenants share the NUMA nodes.
//!
//! Three sharing policies, from no structure to interference-aware:
//!
//! * [`SharingPolicy::Naive`] — every admitted tenant gets the whole
//!   machine. Tenants' workers timeshare the cores and their chunks contend
//!   on every memory controller: the unmanaged-colocation baseline.
//! * [`SharingPolicy::StaticEqual`] — the machine is carved into
//!   `max_tenants` equal, fixed node slots; a tenant takes the lowest free
//!   slot regardless of what it runs. Partitions are disjoint, so cores are
//!   never oversubscribed, but a bandwidth-hungry tenant is throttled to its
//!   slot's controllers while a compute-bound neighbour wastes its share.
//! * [`SharingPolicy::InterferenceAware`] — partitions are sized and placed
//!   by *bandwidth demand*. A bandwidth-hungry tenant (CG, SP) is isolated:
//!   it gets a whole socket when one is free — four controllers for the
//!   same demand, and never a socket shared with another hungry tenant.
//!   Compute-bound tenants (Matmul) are packed best-fit into the remaining
//!   nodes, where their negligible DRAM traffic disturbs nobody.
//!
//! Demand is estimated statically from the workload's chunk cost model and,
//! once the tenant has history, overridden by its PTT: a site whose
//! moldability search settled below the partition's core count revealed an
//! interior bandwidth optimum — the signature of a bandwidth-bound loop.

use ilan_numasim::MachineParams;
use ilan_topology::{NodeId, NodeMask, SocketId, Topology};
use ilan_workloads::SimApp;

/// How concurrent tenants share the machine (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharingPolicy {
    /// Full-machine sharing: all tenants on all nodes.
    Naive,
    /// Fixed equal node slots, demand-blind.
    StaticEqual,
    /// Demand-driven sizing and placement.
    InterferenceAware,
}

/// All policies, in increasing order of structure.
pub const ALL_POLICIES: [SharingPolicy; 3] = [
    SharingPolicy::Naive,
    SharingPolicy::StaticEqual,
    SharingPolicy::InterferenceAware,
];

impl SharingPolicy {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SharingPolicy::Naive => "naive-shared",
            SharingPolicy::StaticEqual => "static-equal",
            SharingPolicy::InterferenceAware => "interference-aware",
        }
    }
}

/// Peak per-node DRAM demand of `app` relative to one controller's
/// bandwidth, assuming every core of a node runs the app's chunks locally.
/// A ratio above 1 means a node's controller saturates even without
/// co-runners — the loop is bandwidth-bound.
pub fn demand_ratio(app: &SimApp, topo: &Topology, params: &MachineParams) -> f64 {
    let mut worst = 0.0f64;
    for site in &app.sites {
        let per_core: f64 = site
            .tasks
            .iter()
            .map(|t| t.effective_bytes(t.home_node) / t.ideal_ns(params.core_bw))
            .sum::<f64>()
            / site.tasks.len() as f64;
        let ratio = per_core * topo.cores_per_node() as f64 / params.node_bw;
        worst = worst.max(ratio);
    }
    worst
}

/// Whether `app` is bandwidth-hungry under [`demand_ratio`]'s model.
pub fn is_bandwidth_hungry(app: &SimApp, topo: &Topology, params: &MachineParams) -> bool {
    demand_ratio(app, topo, params) > 1.0
}

/// Allocates disjoint node partitions to tenants under a [`SharingPolicy`].
///
/// The partitioner is the admission controller's mechanism: a job is
/// admitted exactly when [`try_allocate`](Partitioner::try_allocate)
/// returns a mask, and the mask is returned via
/// [`release`](Partitioner::release) when the job finishes.
pub struct Partitioner {
    policy: SharingPolicy,
    topo: Topology,
    max_tenants: usize,
    /// Node count of one equal slot (`num_nodes / max_tenants`, at least 1).
    base_nodes: usize,
    free: NodeMask,
    /// Naive policy only: tenants currently sharing the whole machine.
    shared: usize,
    /// Hungry tenants currently holding nodes on each socket.
    hungry_on_socket: Vec<usize>,
}

impl Partitioner {
    /// Creates a partitioner for at most `max_tenants` concurrent tenants.
    pub fn new(policy: SharingPolicy, topo: &Topology, max_tenants: usize) -> Self {
        assert!(max_tenants >= 1, "need at least one tenant slot");
        assert!(
            max_tenants <= topo.num_nodes(),
            "more tenant slots than NUMA nodes"
        );
        Partitioner {
            policy,
            topo: topo.clone(),
            max_tenants,
            base_nodes: (topo.num_nodes() / max_tenants).max(1),
            free: topo.all_nodes(),
            shared: 0,
            hungry_on_socket: vec![0; topo.num_sockets()],
        }
    }

    /// Nodes of one equal slot.
    pub fn base_nodes(&self) -> usize {
        self.base_nodes
    }

    /// Number of tenants currently holding an allocation.
    pub fn active_tenants(&self) -> usize {
        match self.policy {
            SharingPolicy::Naive => self.shared,
            _ => (self.topo.all_nodes().count() - self.free.count()).div_ceil(self.base_nodes),
        }
    }

    fn socket_nodes(&self, socket: usize) -> NodeMask {
        let mut m = NodeMask::EMPTY;
        for i in 0..self.topo.num_nodes() {
            let n = NodeId::new(i);
            if self.topo.socket_of_node(n) == SocketId::new(socket) {
                m.insert(n);
            }
        }
        m
    }

    fn free_in_socket(&self, socket: usize) -> NodeMask {
        self.socket_nodes(socket).intersection(self.free)
    }

    /// Takes the `k` lowest free nodes of `pool`, or `None` if it holds
    /// fewer than `k`.
    fn take_lowest(&mut self, pool: NodeMask, k: usize) -> Option<NodeMask> {
        let avail = pool.intersection(self.free);
        if avail.count() < k {
            return None;
        }
        let mut m = NodeMask::EMPTY;
        for n in avail.iter().take(k) {
            m.insert(n);
        }
        self.free = self.free.difference(m);
        Some(m)
    }

    /// Tries to allocate a partition for a tenant with the given demand
    /// class. Returns `None` when the job must wait.
    pub fn try_allocate(&mut self, hungry: bool) -> Option<NodeMask> {
        match self.policy {
            SharingPolicy::Naive => {
                if self.shared < self.max_tenants {
                    self.shared += 1;
                    Some(self.topo.all_nodes())
                } else {
                    None
                }
            }
            SharingPolicy::StaticEqual => {
                // Fixed slots: slot i covers nodes [i·b, (i+1)·b). Take the
                // lowest slot that is entirely free.
                let b = self.base_nodes;
                for slot in 0..(self.topo.num_nodes() / b) {
                    let mask = {
                        let mut m = NodeMask::EMPTY;
                        for i in slot * b..(slot + 1) * b {
                            m.insert(NodeId::new(i));
                        }
                        m
                    };
                    if mask.is_subset(self.free) {
                        self.free = self.free.difference(mask);
                        return Some(mask);
                    }
                }
                None
            }
            SharingPolicy::InterferenceAware => {
                if hungry {
                    self.take_isolated()
                } else {
                    self.take_packed()
                }
            }
        }
    }

    /// A bandwidth-hungry tenant: a whole free socket if one exists, else an
    /// equal slot on a socket hosting no other hungry tenant.
    fn take_isolated(&mut self) -> Option<NodeMask> {
        for s in 0..self.topo.num_sockets() {
            let nodes = self.socket_nodes(s);
            if self.hungry_on_socket[s] == 0 && nodes.is_subset(self.free) {
                self.free = self.free.difference(nodes);
                self.hungry_on_socket[s] += 1;
                return Some(nodes);
            }
        }
        for s in 0..self.topo.num_sockets() {
            if self.hungry_on_socket[s] == 0 {
                if let Some(m) = self.take_lowest(self.socket_nodes(s), self.base_nodes) {
                    self.hungry_on_socket[s] += 1;
                    return Some(m);
                }
            }
        }
        None
    }

    /// A compute-bound tenant: best-fit packing — the socket with the
    /// fewest free nodes that can still host an equal slot, preferring
    /// sockets without hungry tenants.
    fn take_packed(&mut self) -> Option<NodeMask> {
        let mut best: Option<(usize, usize, usize)> = None; // (has_hungry, free, socket)
        for s in 0..self.topo.num_sockets() {
            let f = self.free_in_socket(s).count();
            if f >= self.base_nodes {
                let key = (usize::from(self.hungry_on_socket[s] > 0), f, s);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        let (_, _, s) = best?;
        self.take_lowest(self.socket_nodes(s), self.base_nodes)
    }

    /// Returns a tenant's partition to the pool. `hungry` must match the
    /// class passed to [`try_allocate`](Self::try_allocate).
    pub fn release(&mut self, mask: NodeMask, hungry: bool) {
        if self.policy == SharingPolicy::Naive {
            assert!(self.shared > 0, "release without allocation");
            self.shared -= 1;
            return;
        }
        assert!(
            mask.intersection(self.free).is_empty(),
            "double release of {mask:?}"
        );
        self.free = self.free.union(mask);
        // Only the interference-aware policy tracks hungry placements.
        if hungry && self.policy == SharingPolicy::InterferenceAware {
            let s = self.topo.socket_of_node(mask.first().expect("non-empty"));
            let s = s.index();
            assert!(
                self.hungry_on_socket[s] > 0,
                "hungry release without allocation"
            );
            self.hungry_on_socket[s] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_topology::presets;
    use ilan_workloads::{Scale, Workload};

    #[test]
    fn naive_counts_tenants() {
        let t = presets::epyc_9354_2s();
        let mut p = Partitioner::new(SharingPolicy::Naive, &t, 3);
        let a = p.try_allocate(true).unwrap();
        let b = p.try_allocate(false).unwrap();
        assert_eq!(a, t.all_nodes());
        assert_eq!(b, t.all_nodes());
        assert!(p.try_allocate(false).is_some());
        assert!(p.try_allocate(false).is_none(), "fourth tenant must wait");
        p.release(a, true);
        assert!(p.try_allocate(false).is_some());
    }

    #[test]
    fn static_equal_slots_are_disjoint_and_fixed() {
        let t = presets::epyc_9354_2s();
        let mut p = Partitioner::new(SharingPolicy::StaticEqual, &t, 4);
        let masks: Vec<NodeMask> = (0..4).map(|_| p.try_allocate(true).unwrap()).collect();
        for m in &masks {
            assert_eq!(m.count(), 2);
        }
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(masks[i].intersection(masks[j]).is_empty());
            }
        }
        assert!(p.try_allocate(false).is_none());
        // Releasing the second slot frees exactly that slot.
        p.release(masks[1], true);
        assert_eq!(p.try_allocate(false).unwrap(), masks[1]);
    }

    #[test]
    fn interference_aware_isolates_hungry_on_sockets() {
        let t = presets::epyc_9354_2s();
        let mut p = Partitioner::new(SharingPolicy::InterferenceAware, &t, 4);
        let a = p.try_allocate(true).unwrap();
        assert_eq!(a.count(), 4, "hungry tenant gets a whole socket");
        let b = p.try_allocate(true).unwrap();
        assert_eq!(b.count(), 4);
        assert!(a.intersection(b).is_empty());
        let sock_a = t.socket_of_node(a.first().unwrap());
        let sock_b = t.socket_of_node(b.first().unwrap());
        assert_ne!(sock_a, sock_b, "two hungry tenants must not share a socket");
        // Machine full of hungry tenants: everyone else waits.
        assert!(p.try_allocate(false).is_none());
        p.release(a, true);
        // With a socket free again, compute tenants pack into equal slots.
        let c = p.try_allocate(false).unwrap();
        let d = p.try_allocate(false).unwrap();
        assert_eq!(c.count(), 2);
        assert_eq!(d.count(), 2);
        assert_eq!(
            t.socket_of_node(c.first().unwrap()),
            t.socket_of_node(d.first().unwrap()),
            "compute tenants pack onto the same socket"
        );
    }

    #[test]
    fn interference_aware_falls_back_to_slot_when_socket_busy() {
        let t = presets::epyc_9354_2s();
        let mut p = Partitioner::new(SharingPolicy::InterferenceAware, &t, 4);
        // A compute tenant occupies part of socket 0.
        let c = p.try_allocate(false).unwrap();
        assert_eq!(c.count(), 2);
        // First hungry tenant takes the fully-free socket 1.
        let a = p.try_allocate(true).unwrap();
        assert_eq!(a.count(), 4);
        // Second hungry tenant: no free socket and socket 1 already hosts a
        // hungry tenant, so it falls back to an equal slot on socket 0.
        let b = p.try_allocate(true).unwrap();
        assert_eq!(b.count(), 2);
        assert!(b.intersection(c).is_empty());
        assert_eq!(t.socket_of_node(b.first().unwrap()).index(), 0);
        // A third hungry tenant has no hungry-free socket left: waits.
        assert!(p.try_allocate(true).is_none());
    }

    #[test]
    fn demand_classifies_the_paper_workloads() {
        let t = presets::epyc_9354_2s();
        let params = MachineParams::for_topology(&t);
        let hungry = |w: Workload| {
            let app = w.sim_app(&t, Scale::Quick);
            is_bandwidth_hungry(&app, &t, &params)
        };
        assert!(hungry(Workload::Cg), "CG is bandwidth-hungry");
        assert!(hungry(Workload::Sp), "SP is bandwidth-hungry");
        assert!(!hungry(Workload::Matmul), "Matmul is compute-bound");
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_is_caught() {
        let t = presets::tiny_2x4();
        let mut p = Partitioner::new(SharingPolicy::StaticEqual, &t, 2);
        let m = p.try_allocate(false).unwrap();
        p.release(m, false);
        p.release(m, false);
    }
}
