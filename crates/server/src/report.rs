//! The colocation experiment: one stream, three sharing policies.
//!
//! [`compare_policies`] replays the same seeded job stream under naive
//! full-machine sharing, static equal partitioning, and interference-aware
//! partitioning, and renders their summaries side by side. The output is a
//! pure function of the configuration and seed — byte-identical across
//! replays — which is what the determinism test and the CI smoke run pin.

use crate::job::{generate_stream, StreamParams};
use crate::metrics::{summarize, ColoSummary};
use crate::partition::{SharingPolicy, ALL_POLICIES};
use crate::server::{run_colocation, ServerConfig};
use ilan_topology::Topology;
use ilan_workloads::Scale;
use std::fmt::Write as _;

/// Configuration of the three-policy comparison.
#[derive(Clone, Debug)]
pub struct ColoExperiment {
    /// The machine.
    pub topology: Topology,
    /// Jobs in the stream.
    pub jobs: usize,
    /// Stream seed (also seeds the machines).
    pub seed: u64,
    /// Workload problem scale.
    pub scale: Scale,
    /// Mean exponential inter-arrival gap, ns.
    pub mean_interarrival_ns: f64,
    /// Timesteps per job.
    pub steps_per_job: usize,
}

impl ColoExperiment {
    /// Defaults: quick-scale mixed CG/SP/Matmul stream with a moderate
    /// offered load (mean gap of 2 ms against multi-ms jobs).
    pub fn new(topology: &Topology, jobs: usize, seed: u64) -> Self {
        ColoExperiment {
            topology: topology.clone(),
            jobs,
            seed,
            scale: Scale::Quick,
            mean_interarrival_ns: 2e6,
            steps_per_job: 2,
        }
    }

    fn stream_params(&self) -> StreamParams {
        StreamParams {
            steps: self.steps_per_job,
            ..StreamParams::mixed(self.jobs, self.mean_interarrival_ns)
        }
    }

    /// Runs one policy on the experiment's stream.
    pub fn run(&self, policy: SharingPolicy) -> ColoSummary {
        let stream = generate_stream(self.seed, &self.stream_params());
        let mut config = ServerConfig::new(&self.topology, policy);
        config.scale = self.scale;
        let records = run_colocation(&config, &stream, self.seed);
        summarize(policy.name(), &records)
    }
}

/// Runs all three policies on the same stream and renders the comparison.
pub fn compare_policies(experiment: &ColoExperiment) -> String {
    let summaries: Vec<ColoSummary> = ALL_POLICIES.iter().map(|&p| experiment.run(p)).collect();
    let mut out = String::new();
    writeln!(
        out,
        "colocation: {} jobs, seed {}, machine {}",
        experiment.jobs,
        experiment.seed,
        experiment.topology.summary()
    )
    .unwrap();
    for s in &summaries {
        writeln!(out, "{s}").unwrap();
    }
    let naive = &summaries[0];
    let aware = &summaries[2];
    writeln!(
        out,
        "interference-aware vs naive: ANTT {:.2}x, p95 latency {:.2}x",
        naive.antt / aware.antt,
        naive.p95_ns / aware.p95_ns
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilan_topology::presets;

    #[test]
    fn comparison_runs_on_the_tiny_machine() {
        let e = ColoExperiment::new(&presets::tiny_2x4(), 4, 2);
        let text = compare_policies(&e);
        assert!(text.contains("naive-shared"));
        assert!(text.contains("static-equal"));
        assert!(text.contains("interference-aware"));
        assert!(text.contains("ANTT"));
    }
}
