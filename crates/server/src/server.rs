//! The co-scheduling service: admission control over a shared machine.
//!
//! [`run_colocation`] replays a job stream against one [`ColoMachine`]:
//!
//! 1. Arrived jobs enter the wait queue (high priority first, then arrival
//!    order).
//! 2. The admission controller classifies each waiting job's bandwidth
//!    demand — statically from its chunk cost model, overridden by stored
//!    PTT history when the workload has run before — and admits it the
//!    moment the [`Partitioner`] can grant a partition. Jobs that do not
//!    fit are skipped, not blocking smaller jobs behind them (backfill
//!    without reservations).
//! 3. Each admitted job becomes a [`Tenant`] on its own machine lane,
//!    running its ILAN scheduler confined to its partition. The scheduler
//!    is warm-started from the [`PttStore`] when a previous job of the same
//!    (workload, partition size) already paid the exploration cost.
//! 4. On job completion the tenant's PTT is saved back to the store (as
//!    text, exercising the persistence format in the serving path) and the
//!    partition is released, which may admit waiting jobs.
//!
//! Per-job slowdowns are measured against the same job run alone on the
//! whole machine with a cold scheduler, on a separate machine seeded
//! deterministically from the run seed.

use crate::job::{JobPriority, JobSpec};
use crate::metrics::JobRecord;
use crate::partition::{is_bandwidth_hungry, Partitioner, SharingPolicy};
use crate::tenant::Tenant;
use ilan::ptt::Ptt;
use ilan_numasim::{ColoMachine, MachineParams};
use ilan_topology::Topology;
use ilan_workloads::{Scale, SimApp, Workload};
use std::collections::HashMap;

/// Configuration of a serving run.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The machine.
    pub topology: Topology,
    /// How tenants share it.
    pub policy: SharingPolicy,
    /// Workload problem scale.
    pub scale: Scale,
    /// Maximum concurrent tenants (equal-slot count for the partitioned
    /// policies).
    pub max_tenants: usize,
    /// Whether completed jobs' PTTs warm-start later jobs of the same
    /// (workload, partition size).
    pub warm_start: bool,
}

impl ServerConfig {
    /// Defaults for a topology: quick-scale workloads, up to four tenants
    /// (fewer on machines with fewer nodes), warm start on.
    pub fn new(topology: &Topology, policy: SharingPolicy) -> Self {
        ServerConfig {
            topology: topology.clone(),
            policy,
            scale: Scale::Quick,
            max_tenants: topology.num_nodes().min(4),
            warm_start: true,
        }
    }
}

/// Persistent PTTs keyed by (workload, partition node count), stored in the
/// plain-text format so every warm start exercises a save/load round trip.
#[derive(Default)]
pub struct PttStore {
    entries: HashMap<(Workload, usize), String>,
}

impl PttStore {
    /// Saves `ptt` for later jobs of the same workload and partition size.
    pub fn save(&mut self, workload: Workload, partition_nodes: usize, ptt: &Ptt) {
        self.entries
            .insert((workload, partition_nodes), ptt.save_text());
    }

    /// Loads the stored PTT, if any.
    pub fn load(&self, workload: Workload, partition_nodes: usize) -> Option<Ptt> {
        self.entries.get(&(workload, partition_nodes)).map(|text| {
            Ptt::load_text(text).expect("store holds only text written by save_text")
        })
    }

    /// Whether any stored PTT for `workload` settled below the partition's
    /// core capacity — the PTT-derived bandwidth-hunger signal (an interior
    /// moldability optimum means the loop saturates memory before cores).
    pub fn hungry_hint(&self, workload: Workload, cores_per_node: usize) -> Option<bool> {
        let mut seen = false;
        for ((w, nodes), text) in &self.entries {
            if *w != workload {
                continue;
            }
            let ptt = Ptt::load_text(text).expect("store holds valid text");
            let capacity = nodes * cores_per_node;
            for site in ptt.site_ids() {
                let Some(table) = ptt.site(site) else { continue };
                let Some(best) = table.fastest() else { continue };
                seen = true;
                if best.threads < capacity {
                    return Some(true);
                }
            }
        }
        seen.then_some(false)
    }
}

/// Latency of `job` run alone on the whole machine with a cold scheduler.
fn isolated_latency_ns(
    topology: &Topology,
    scale: Scale,
    workload: Workload,
    steps: usize,
    seed: u64,
) -> f64 {
    let params = MachineParams::for_topology(topology);
    let mut machine = ColoMachine::new(params, seed);
    let lane = machine.add_lane();
    let job = JobSpec {
        id: usize::MAX,
        workload,
        steps,
        priority: JobPriority::Normal,
        arrival_ns: 0.0,
    };
    let mut tenant = Tenant::new(
        job,
        topology.all_nodes(),
        false,
        topology,
        scale,
        None,
        lane,
        0.0,
    );
    tenant.start_next(&mut machine);
    loop {
        let (_, outcome) = machine
            .run_until_next_completion()
            .expect("isolated job has a loop in flight");
        if tenant.on_completion(&outcome) {
            return machine.now_ns();
        }
        tenant.start_next(&mut machine);
    }
}

/// Replays `stream` under `config`, returning one record per job, in
/// completion order. Deterministic in `(config, stream, seed)`.
pub fn run_colocation(config: &ServerConfig, stream: &[JobSpec], seed: u64) -> Vec<JobRecord> {
    let topo = &config.topology;
    let params = MachineParams::for_topology(topo);
    let mut machine = ColoMachine::new(params.clone(), seed);
    let mut partitioner = Partitioner::new(config.policy, topo, config.max_tenants);
    let mut store = PttStore::default();

    // Static demand classification and isolated baselines, one per distinct
    // (workload, steps) in stream order.
    let mut apps: HashMap<Workload, SimApp> = HashMap::new();
    let mut static_hungry: HashMap<Workload, bool> = HashMap::new();
    let mut baselines: HashMap<(Workload, usize), f64> = HashMap::new();
    for (i, job) in stream.iter().enumerate() {
        let app = apps
            .entry(job.workload)
            .or_insert_with(|| job.workload.sim_app(topo, config.scale));
        static_hungry
            .entry(job.workload)
            .or_insert_with(|| is_bandwidth_hungry(app, topo, &params));
        baselines.entry((job.workload, job.steps)).or_insert_with(|| {
            isolated_latency_ns(
                topo,
                config.scale,
                job.workload,
                job.steps,
                seed ^ 0x1505_19AF ^ (i as u64),
            )
        });
    }

    // Pending arrivals (sorted), the wait queue, and active tenants by lane.
    let mut pending: Vec<JobSpec> = stream.to_vec();
    pending.sort_by(|a, b| {
        a.arrival_ns
            .partial_cmp(&b.arrival_ns)
            .expect("finite arrivals")
            .then(a.id.cmp(&b.id))
    });
    let mut next_pending = 0usize;
    let mut waiting: Vec<JobSpec> = Vec::new();
    let mut tenants: HashMap<usize, Tenant> = HashMap::new();
    let mut records: Vec<JobRecord> = Vec::new();

    loop {
        let now = machine.now_ns();
        // Move due arrivals into the wait queue, highest priority first,
        // then arrival order (ids break exact-time ties deterministically).
        while next_pending < pending.len() && pending[next_pending].arrival_ns <= now {
            waiting.push(pending[next_pending].clone());
            next_pending += 1;
        }
        waiting.sort_by(|a, b| a.priority.cmp(&b.priority).then(a.id.cmp(&b.id)));

        // Admit every waiting job that fits (backfill).
        let mut i = 0;
        while i < waiting.len() {
            let job = &waiting[i];
            let hungry = store
                .hungry_hint(job.workload, topo.cores_per_node())
                .unwrap_or(static_hungry[&job.workload]);
            match partitioner.try_allocate(hungry) {
                Some(partition) => {
                    let job = waiting.remove(i);
                    let warm = if config.warm_start {
                        store.load(job.workload, partition.count())
                    } else {
                        None
                    };
                    let lane = machine.add_lane();
                    let mut tenant =
                        Tenant::new(job, partition, hungry, topo, config.scale, warm, lane, now);
                    tenant.start_next(&mut machine);
                    tenants.insert(lane, tenant);
                }
                None => i += 1,
            }
        }

        // Advance the machine to the next completion or arrival.
        let next_arrival = pending.get(next_pending).map(|j| j.arrival_ns);
        let completion = if machine.any_busy() {
            match next_arrival {
                Some(t) => machine.run_until_ns(t),
                None => machine.run_until_next_completion(),
            }
        } else if let Some(t) = next_arrival {
            machine.run_until_ns(t)
        } else {
            assert!(
                waiting.is_empty(),
                "jobs stuck in the wait queue on an idle machine"
            );
            break;
        };

        if let Some((lane, outcome)) = completion {
            let tenant = tenants.get_mut(&lane).expect("completion on unknown lane");
            if tenant.on_completion(&outcome) {
                let tenant = tenants.remove(&lane).expect("just seen");
                let key = (tenant.job.workload, tenant.job.steps);
                records.push(JobRecord {
                    id: tenant.job.id,
                    workload: tenant.job.workload,
                    priority: tenant.job.priority,
                    arrival_ns: tenant.job.arrival_ns,
                    admitted_ns: tenant.admitted_ns,
                    finish_ns: machine.now_ns(),
                    partition_nodes: tenant.partition.count(),
                    warm_started: tenant.warm_started,
                    sched_overhead_ns: tenant.sched_overhead_ns,
                    isolated_ns: baselines[&key],
                });
                if config.warm_start {
                    store.save(
                        tenant.job.workload,
                        tenant.partition.count(),
                        tenant.scheduler().ptt(),
                    );
                }
                partitioner.release(tenant.partition, tenant.hungry);
            } else {
                tenant.start_next(&mut machine);
            }
        }
    }

    assert_eq!(records.len(), stream.len(), "every job must complete");
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{generate_stream, StreamParams};
    use ilan_topology::presets;

    fn quick_config(policy: SharingPolicy) -> ServerConfig {
        ServerConfig::new(&presets::tiny_2x4(), policy)
    }

    #[test]
    fn serves_every_job_in_stream() {
        let cfg = quick_config(SharingPolicy::StaticEqual);
        let stream = generate_stream(3, &StreamParams::mixed(6, 2e6));
        let records = run_colocation(&cfg, &stream, 3);
        assert_eq!(records.len(), 6);
        for r in &records {
            assert!(r.admitted_ns >= r.arrival_ns - 1e-9, "admitted before arrival");
            assert!(r.finish_ns > r.admitted_ns, "zero-length job");
            assert!(r.isolated_ns > 0.0);
            assert!(r.slowdown() > 0.0);
        }
    }

    #[test]
    fn run_is_deterministic() {
        let cfg = quick_config(SharingPolicy::InterferenceAware);
        let stream = generate_stream(5, &StreamParams::mixed(5, 1e6));
        let a = run_colocation(&cfg, &stream, 5);
        let b = run_colocation(&cfg, &stream, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish_ns, y.finish_ns);
            assert_eq!(x.admitted_ns, y.admitted_ns);
        }
    }

    #[test]
    fn warm_start_kicks_in_for_repeat_workloads() {
        // Sequential identical jobs (huge inter-arrival gap): the second one
        // must be warm-started and skip the exploration the first one paid.
        let cfg = quick_config(SharingPolicy::Naive);
        let p = StreamParams {
            jobs: 2,
            mean_interarrival_ns: 1e12,
            mix: vec![Workload::Cg],
            steps: 2,
            high_priority_fraction: 0.0,
        };
        let stream = generate_stream(1, &p);
        let mut records = run_colocation(&cfg, &stream, 1);
        records.sort_by_key(|r| r.id);
        assert!(!records[0].warm_started);
        assert!(records[1].warm_started);
        assert!(
            records[1].exec_ns() < records[0].exec_ns(),
            "warm job ({:.0}ns) not faster than cold job ({:.0}ns)",
            records[1].exec_ns(),
            records[0].exec_ns()
        );
    }

    #[test]
    fn warm_start_can_be_disabled() {
        let mut cfg = quick_config(SharingPolicy::Naive);
        cfg.warm_start = false;
        let p = StreamParams {
            jobs: 2,
            mean_interarrival_ns: 1e12,
            mix: vec![Workload::Cg],
            steps: 1,
            high_priority_fraction: 0.0,
        };
        let stream = generate_stream(1, &p);
        let records = run_colocation(&cfg, &stream, 1);
        assert!(records.iter().all(|r| !r.warm_started));
    }

    #[test]
    fn hungry_hint_reads_the_stored_ptt() {
        let mut store = PttStore::default();
        assert_eq!(store.hungry_hint(Workload::Cg, 4), None);
        // A PTT that settled at 4 threads in an 8-core (2-node) partition.
        let mut ptt = Ptt::new();
        ptt.record(
            ilan::SiteId::new(0),
            4,
            ilan_topology::NodeMask::first_n(1),
            ilan::StealPolicy::Strict,
            &ilan::TaskloopReport::synthetic(100.0, 4),
        );
        store.save(Workload::Cg, 2, &ptt);
        assert_eq!(store.hungry_hint(Workload::Cg, 4), Some(true));
        assert_eq!(store.hungry_hint(Workload::Sp, 4), None);
        // A PTT settled at full capacity reads as not hungry.
        let mut full = Ptt::new();
        full.record(
            ilan::SiteId::new(0),
            8,
            ilan_topology::NodeMask::first_n(2),
            ilan::StealPolicy::Strict,
            &ilan::TaskloopReport::synthetic(100.0, 8),
        );
        let mut store2 = PttStore::default();
        store2.save(Workload::Sp, 2, &full);
        assert_eq!(store2.hungry_hint(Workload::Sp, 4), Some(false));
    }
}
