//! The co-scheduling service: admission control over a shared machine.
//!
//! [`run_colocation`] replays a job stream against one [`ColoMachine`]:
//!
//! 1. Arrived jobs enter the wait queue (high priority first, then arrival
//!    order).
//! 2. The admission controller classifies each waiting job's bandwidth
//!    demand — statically from its chunk cost model, overridden by stored
//!    PTT history when the workload has run before — and admits it the
//!    moment the [`Partitioner`] can grant a partition. Jobs that do not
//!    fit are skipped, not blocking smaller jobs behind them (backfill
//!    without reservations).
//! 3. Each admitted job becomes a [`Tenant`] on its own machine lane,
//!    running its ILAN scheduler confined to its partition. The scheduler
//!    is warm-started from the [`PttStore`] when a previous job of the same
//!    (workload, partition size) already paid the exploration cost.
//! 4. On job completion the tenant's PTT is saved back to the store (as
//!    text, exercising the persistence format in the serving path) and the
//!    partition is released, which may admit waiting jobs.
//!
//! Per-job slowdowns are measured against the same job run alone on the
//! whole machine with a cold scheduler, on a separate machine seeded
//! deterministically from the run seed.
//!
//! **Resilience** — [`run_colocation_faulty`] replays the same loop under an
//! [`ilan_faults::FaultPlan`] and reports how the service degraded instead
//! of failing: injected loop failures are retried with exponential backoff
//! (without perturbing the tenant's scheduler state), corrupted PTT saves
//! are detected at load time and fall back to a cold start, arrivals beyond
//! the plan's admission-queue limit are shed (tracked, never silently
//! dropped), and job bursts stress the queue at seed-chosen completions.

use crate::job::{JobPriority, JobSpec};
use crate::metrics::JobRecord;
use crate::partition::{is_bandwidth_hungry, Partitioner, SharingPolicy};
use crate::telemetry::ServerMetrics;
use crate::tenant::Tenant;
use ilan::ptt::Ptt;
use ilan_faults::FaultPlan;
use ilan_numasim::{ColoMachine, MachineParams};
use ilan_topology::Topology;
use ilan_workloads::{Scale, SimApp, Workload};
use std::collections::HashMap;
use std::fmt;

/// Base of the retry backoff for injected loop failures, ns. Attempt `k`
/// (1-based) resubmits after `RETRY_BACKOFF_NS × 2^(k-1)`.
pub const RETRY_BACKOFF_NS: f64 = 20_000.0;

/// Configuration of a serving run.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The machine.
    pub topology: Topology,
    /// How tenants share it.
    pub policy: SharingPolicy,
    /// Workload problem scale.
    pub scale: Scale,
    /// Maximum concurrent tenants (equal-slot count for the partitioned
    /// policies).
    pub max_tenants: usize,
    /// Whether completed jobs' PTTs warm-start later jobs of the same
    /// (workload, partition size).
    pub warm_start: bool,
}

impl ServerConfig {
    /// Defaults for a topology: quick-scale workloads, up to four tenants
    /// (fewer on machines with fewer nodes), warm start on.
    pub fn new(topology: &Topology, policy: SharingPolicy) -> Self {
        ServerConfig {
            topology: topology.clone(),
            policy,
            scale: Scale::Quick,
            max_tenants: topology.num_nodes().min(4),
            warm_start: true,
        }
    }
}

/// Persistent PTTs keyed by (workload, partition node count), stored in the
/// plain-text format so every warm start exercises a save/load round trip.
#[derive(Default)]
pub struct PttStore {
    entries: HashMap<(Workload, usize), String>,
}

impl PttStore {
    /// Saves `ptt` for later jobs of the same workload and partition size.
    pub fn save(&mut self, workload: Workload, partition_nodes: usize, ptt: &Ptt) {
        self.save_raw(workload, partition_nodes, ptt.save_text());
    }

    /// Saves pre-rendered PTT text verbatim — the fault-injection path uses
    /// this to plant corrupted bytes the loader must survive.
    pub fn save_raw(&mut self, workload: Workload, partition_nodes: usize, text: String) {
        self.entries.insert((workload, partition_nodes), text);
    }

    /// Loads the stored PTT, if any. Lenient: unparsable text (a corrupted
    /// or torn save) reads as *absent*, so the caller cold-starts instead of
    /// crashing — stored history is a cache, never ground truth.
    pub fn load(&self, workload: Workload, partition_nodes: usize) -> Option<Ptt> {
        self.entries
            .get(&(workload, partition_nodes))
            .and_then(|text| Ptt::load_text(text).ok())
    }

    /// Whether an entry exists for the key, parsable or not. Together with
    /// [`load`](Self::load) this distinguishes "never saved" from
    /// "saved but corrupted" (a recovered cold start).
    pub fn has(&self, workload: Workload, partition_nodes: usize) -> bool {
        self.entries.contains_key(&(workload, partition_nodes))
    }

    /// Whether any stored PTT for `workload` settled below the partition's
    /// core capacity — the PTT-derived bandwidth-hunger signal (an interior
    /// moldability optimum means the loop saturates memory before cores).
    pub fn hungry_hint(&self, workload: Workload, cores_per_node: usize) -> Option<bool> {
        let mut seen = false;
        for ((w, nodes), text) in &self.entries {
            if *w != workload {
                continue;
            }
            // Corrupted entries carry no signal; skip them.
            let Ok(ptt) = Ptt::load_text(text) else {
                continue;
            };
            let capacity = nodes * cores_per_node;
            for site in ptt.site_ids() {
                let Some(table) = ptt.site(site) else {
                    continue;
                };
                let Some(best) = table.fastest() else {
                    continue;
                };
                seen = true;
                if best.threads < capacity {
                    return Some(true);
                }
            }
        }
        seen.then_some(false)
    }
}

/// Latency of `job` run alone on the whole machine with a cold scheduler.
fn isolated_latency_ns(
    topology: &Topology,
    scale: Scale,
    workload: Workload,
    steps: usize,
    seed: u64,
) -> f64 {
    let params = MachineParams::for_topology(topology);
    let mut machine = ColoMachine::new(params, seed);
    let lane = machine.add_lane();
    let job = JobSpec {
        id: usize::MAX,
        workload,
        steps,
        priority: JobPriority::Normal,
        arrival_ns: 0.0,
    };
    let mut tenant = Tenant::new(
        job,
        topology.all_nodes(),
        false,
        topology,
        scale,
        None,
        lane,
        0.0,
    );
    tenant.start_next(&mut machine);
    loop {
        let (_, outcome) = machine
            .run_until_next_completion()
            .expect("isolated job has a loop in flight");
        if tenant.on_completion(&outcome) {
            return machine.now_ns();
        }
        tenant.start_next(&mut machine);
    }
}

/// Replays `stream` under `config`, returning one record per job, in
/// completion order. Deterministic in `(config, stream, seed)`.
pub fn run_colocation(config: &ServerConfig, stream: &[JobSpec], seed: u64) -> Vec<JobRecord> {
    run_colocation_impl(config, stream, seed, None).records
}

/// Like [`run_colocation`], returning the full [`ColoRunReport`] — including
/// the live-metrics exposition ([`ColoRunReport::metrics_text`]) — instead
/// of just the records. A fault-free run has every degradation counter at
/// zero.
pub fn run_colocation_report(
    config: &ServerConfig,
    stream: &[JobSpec],
    seed: u64,
) -> ColoRunReport {
    run_colocation_impl(config, stream, seed, None)
}

/// Outcome of a colocation run under fault injection: the served jobs plus
/// the degradations the service absorbed. Produced by
/// [`run_colocation_faulty`]; a fault-free run has every counter at zero.
#[derive(Clone, Debug)]
pub struct ColoRunReport {
    /// Served jobs, in completion order (stream jobs and burst jobs).
    pub records: Vec<JobRecord>,
    /// Jobs shed at admission because the wait queue exceeded the plan's
    /// limit. Shed jobs are never admitted and never produce a record.
    pub shed: Vec<JobSpec>,
    /// Invocations resubmitted after an injected loop failure.
    pub retries: usize,
    /// Extra jobs injected by the plan's bursts.
    pub injected_jobs: usize,
    /// PTT saves written with corrupted text.
    pub corrupted_saves: usize,
    /// Warm-start attempts that found a stored-but-unparsable PTT and fell
    /// back to a cold start.
    pub recovered_cold_starts: usize,
    /// Final OpenMetrics exposition of the run's live series (see
    /// [`metrics_text`](Self::metrics_text)).
    metrics_text: String,
}

impl ColoRunReport {
    /// The run's live-metrics exposition: admission/shed/retry counters and
    /// per-workload latency, wait and overhead histograms, rendered as
    /// OpenMetrics text at the end of the run. Deterministic — the same
    /// `(config, stream, seed, plan)` renders byte-identical text.
    pub fn metrics_text(&self) -> &str {
        &self.metrics_text
    }
}

impl fmt::Display for ColoRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "served={} shed={} retries={} injected={} corrupted-saves={} recovered-cold-starts={}",
            self.records.len(),
            self.shed.len(),
            self.retries,
            self.injected_jobs,
            self.corrupted_saves,
            self.recovered_cold_starts
        )
    }
}

/// [`run_colocation`] under a fault plan: injected loop failures, PTT
/// corruption, admission shedding, and job bursts (see module docs).
/// Deterministic in `(config, stream, seed, plan)` — the same plan replays
/// the same degradations.
pub fn run_colocation_faulty(
    config: &ServerConfig,
    stream: &[JobSpec],
    seed: u64,
    plan: &FaultPlan,
) -> ColoRunReport {
    run_colocation_impl(config, stream, seed, Some(plan))
}

fn run_colocation_impl(
    config: &ServerConfig,
    stream: &[JobSpec],
    seed: u64,
    faults: Option<&FaultPlan>,
) -> ColoRunReport {
    let topo = &config.topology;
    let params = MachineParams::for_topology(topo);
    let mut machine = ColoMachine::new(params.clone(), seed);
    let mut partitioner = Partitioner::new(config.policy, topo, config.max_tenants);
    let mut store = PttStore::default();
    let metrics = ServerMetrics::new();

    // Static demand classification and isolated baselines, one per distinct
    // (workload, steps) in stream order.
    let mut apps: HashMap<Workload, SimApp> = HashMap::new();
    let mut static_hungry: HashMap<Workload, bool> = HashMap::new();
    let mut baselines: HashMap<(Workload, usize), f64> = HashMap::new();
    for (i, job) in stream.iter().enumerate() {
        let app = apps
            .entry(job.workload)
            .or_insert_with(|| job.workload.sim_app(topo, config.scale));
        static_hungry
            .entry(job.workload)
            .or_insert_with(|| is_bandwidth_hungry(app, topo, &params));
        baselines
            .entry((job.workload, job.steps))
            .or_insert_with(|| {
                isolated_latency_ns(
                    topo,
                    config.scale,
                    job.workload,
                    job.steps,
                    seed ^ 0x1505_19AF ^ (i as u64),
                )
            });
    }

    // Pending arrivals (sorted), the wait queue, and active tenants by lane.
    let mut pending: Vec<JobSpec> = stream.to_vec();
    pending.sort_by(|a, b| {
        a.arrival_ns
            .partial_cmp(&b.arrival_ns)
            .expect("finite arrivals")
            .then(a.id.cmp(&b.id))
    });
    let mut next_pending = 0usize;
    let mut waiting: Vec<JobSpec> = Vec::new();
    let mut tenants: HashMap<usize, Tenant> = HashMap::new();
    let mut records: Vec<JobRecord> = Vec::new();

    // Fault bookkeeping (all zero / inert without a plan).
    let mut shed: Vec<JobSpec> = Vec::new();
    let mut retries = 0usize;
    let mut corrupted_saves = 0usize;
    let mut recovered_cold_starts = 0usize;
    let mut injected_jobs = 0usize;
    let mut save_index = 0u64;
    let shed_limit = faults.and_then(|p| p.shed_queue_limit());
    let mut bursts: Vec<ilan_faults::BurstSpec> =
        faults.map(|p| p.bursts().to_vec()).unwrap_or_default();
    bursts.sort_by_key(|b| b.after_job);
    let mut next_burst = 0usize;
    let mut next_id = stream.iter().map(|j| j.id + 1).max().unwrap_or(0);

    loop {
        let now = machine.now_ns();
        // Move due arrivals into the wait queue, highest priority first,
        // then arrival order (ids break exact-time ties deterministically).
        // Over the plan's queue limit, arrivals are shed instead.
        while next_pending < pending.len() && pending[next_pending].arrival_ns <= now {
            let job = pending[next_pending].clone();
            next_pending += 1;
            if shed_limit.is_some_and(|limit| waiting.len() >= limit) {
                shed.push(job);
                metrics.sheds.inc();
            } else {
                waiting.push(job);
            }
        }
        waiting.sort_by(|a, b| a.priority.cmp(&b.priority).then(a.id.cmp(&b.id)));

        // Admit every waiting job that fits (backfill).
        let mut i = 0;
        while i < waiting.len() {
            let job = &waiting[i];
            let hungry = store
                .hungry_hint(job.workload, topo.cores_per_node())
                .unwrap_or(static_hungry[&job.workload]);
            match partitioner.try_allocate(hungry) {
                Some(partition) => {
                    let job = waiting.remove(i);
                    let warm = if config.warm_start {
                        let loaded = store.load(job.workload, partition.count());
                        if loaded.is_none() && store.has(job.workload, partition.count()) {
                            // Stored but unparsable: a corrupted save the
                            // lenient loader degraded to a cold start.
                            recovered_cold_starts += 1;
                            metrics.cold_recoveries.inc();
                        }
                        loaded
                    } else {
                        None
                    };
                    metrics.admissions.inc();
                    if warm.is_some() {
                        metrics.warm_starts.inc();
                    }
                    let lane = machine.add_lane();
                    let mut tenant =
                        Tenant::new(job, partition, hungry, topo, config.scale, warm, lane, now);
                    tenant.start_next(&mut machine);
                    tenants.insert(lane, tenant);
                }
                None => i += 1,
            }
        }
        metrics.active_tenants.set(tenants.len() as i64);
        metrics.waiting_jobs.set(waiting.len() as i64);

        // Advance the machine to the next completion or arrival.
        let next_arrival = pending.get(next_pending).map(|j| j.arrival_ns);
        let completion = if machine.any_busy() {
            match next_arrival {
                Some(t) => machine.run_until_ns(t),
                None => machine.run_until_next_completion(),
            }
        } else if let Some(t) = next_arrival {
            machine.run_until_ns(t)
        } else {
            assert!(
                waiting.is_empty(),
                "jobs stuck in the wait queue on an idle machine"
            );
            break;
        };

        if let Some((lane, outcome)) = completion {
            let tenant = tenants.get_mut(&lane).expect("completion on unknown lane");
            // An injected loop failure: the invocation's outcome is void;
            // retry it with exponential backoff until the plan's failure
            // count for (job, invocation) is exhausted.
            let failures = faults.map_or(0, |p| {
                p.loop_failures(tenant.job.id as u64, tenant.invocation_index() as u64)
            });
            if tenant.attempts() < failures {
                tenant.retry_current(&mut machine, RETRY_BACKOFF_NS);
                retries += 1;
                metrics.retries.inc();
                continue;
            }
            if tenant.on_completion(&outcome) {
                let tenant = tenants.remove(&lane).expect("just seen");
                let key = (tenant.job.workload, tenant.job.steps);
                let record = JobRecord {
                    id: tenant.job.id,
                    workload: tenant.job.workload,
                    priority: tenant.job.priority,
                    arrival_ns: tenant.job.arrival_ns,
                    admitted_ns: tenant.admitted_ns,
                    finish_ns: machine.now_ns(),
                    partition_nodes: tenant.partition.count(),
                    warm_started: tenant.warm_started,
                    sched_overhead_ns: tenant.sched_overhead_ns,
                    isolated_ns: baselines[&key],
                };
                metrics.note_completion(&record);
                records.push(record);
                if config.warm_start {
                    let mut text = tenant.scheduler().ptt().save_text();
                    if let Some(p) = faults {
                        if p.corrupts_ptt(save_index) {
                            text = p.corrupt_text(&text);
                            corrupted_saves += 1;
                            metrics.corrupted_saves.inc();
                        }
                    }
                    save_index += 1;
                    store.save_raw(tenant.job.workload, tenant.partition.count(), text);
                }
                partitioner.release(tenant.partition, tenant.hungry);
                // Bursts fire on the plan's completion counts: a batch of
                // clones of stream jobs arriving at once, stressing the
                // admission queue (and the shed path, if the queue is full).
                while next_burst < bursts.len() && records.len() >= bursts[next_burst].after_job {
                    let b = bursts[next_burst];
                    next_burst += 1;
                    for k in 0..b.jobs {
                        let mut j = stream[(injected_jobs + k) % stream.len()].clone();
                        j.id = next_id;
                        next_id += 1;
                        j.arrival_ns = machine.now_ns();
                        if shed_limit.is_some_and(|limit| waiting.len() >= limit) {
                            shed.push(j);
                            metrics.sheds.inc();
                        } else {
                            waiting.push(j);
                        }
                    }
                    injected_jobs += b.jobs;
                    metrics.burst_jobs.add(b.jobs as u64);
                }
            } else {
                tenant.start_next(&mut machine);
            }
        }
    }

    assert_eq!(
        records.len() + shed.len(),
        stream.len() + injected_jobs,
        "every submitted job must complete or be accounted as shed"
    );
    metrics.active_tenants.set(0);
    metrics.waiting_jobs.set(0);
    ColoRunReport {
        records,
        shed,
        retries,
        injected_jobs,
        corrupted_saves,
        recovered_cold_starts,
        metrics_text: metrics.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{generate_stream, StreamParams};
    use ilan_topology::presets;

    fn quick_config(policy: SharingPolicy) -> ServerConfig {
        ServerConfig::new(&presets::tiny_2x4(), policy)
    }

    #[test]
    fn serves_every_job_in_stream() {
        let cfg = quick_config(SharingPolicy::StaticEqual);
        let stream = generate_stream(3, &StreamParams::mixed(6, 2e6));
        let records = run_colocation(&cfg, &stream, 3);
        assert_eq!(records.len(), 6);
        for r in &records {
            assert!(
                r.admitted_ns >= r.arrival_ns - 1e-9,
                "admitted before arrival"
            );
            assert!(r.finish_ns > r.admitted_ns, "zero-length job");
            assert!(r.isolated_ns > 0.0);
            assert!(r.slowdown() > 0.0);
        }
    }

    #[test]
    fn run_is_deterministic() {
        let cfg = quick_config(SharingPolicy::InterferenceAware);
        let stream = generate_stream(5, &StreamParams::mixed(5, 1e6));
        let a = run_colocation(&cfg, &stream, 5);
        let b = run_colocation(&cfg, &stream, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish_ns, y.finish_ns);
            assert_eq!(x.admitted_ns, y.admitted_ns);
        }
    }

    #[test]
    fn warm_start_kicks_in_for_repeat_workloads() {
        // Sequential identical jobs (huge inter-arrival gap): the second one
        // must be warm-started and skip the exploration the first one paid.
        let cfg = quick_config(SharingPolicy::Naive);
        let p = StreamParams {
            jobs: 2,
            mean_interarrival_ns: 1e12,
            mix: vec![Workload::Cg],
            steps: 2,
            high_priority_fraction: 0.0,
        };
        let stream = generate_stream(1, &p);
        let mut records = run_colocation(&cfg, &stream, 1);
        records.sort_by_key(|r| r.id);
        assert!(!records[0].warm_started);
        assert!(records[1].warm_started);
        assert!(
            records[1].exec_ns() < records[0].exec_ns(),
            "warm job ({:.0}ns) not faster than cold job ({:.0}ns)",
            records[1].exec_ns(),
            records[0].exec_ns()
        );
    }

    #[test]
    fn warm_start_can_be_disabled() {
        let mut cfg = quick_config(SharingPolicy::Naive);
        cfg.warm_start = false;
        let p = StreamParams {
            jobs: 2,
            mean_interarrival_ns: 1e12,
            mix: vec![Workload::Cg],
            steps: 1,
            high_priority_fraction: 0.0,
        };
        let stream = generate_stream(1, &p);
        let records = run_colocation(&cfg, &stream, 1);
        assert!(records.iter().all(|r| !r.warm_started));
    }

    #[test]
    fn faulty_run_with_inert_plan_matches_plain_run() {
        use ilan_faults::FaultConfig;
        let cfg = quick_config(SharingPolicy::InterferenceAware);
        let stream = generate_stream(5, &StreamParams::mixed(5, 1e6));
        let plain = run_colocation(&cfg, &stream, 5);
        let report = run_colocation_faulty(
            &cfg,
            &stream,
            5,
            &ilan_faults::FaultPlan::new(9, 8, 2, FaultConfig::none()),
        );
        assert_eq!(report.retries, 0);
        assert!(report.shed.is_empty());
        assert_eq!(report.corrupted_saves, 0);
        assert_eq!(report.injected_jobs, 0);
        for (x, y) in plain.iter().zip(&report.records) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish_ns, y.finish_ns);
        }
    }

    #[test]
    fn injected_loop_failures_are_retried_to_completion() {
        use ilan_faults::{FaultConfig, FaultPlan};
        let cfg = quick_config(SharingPolicy::StaticEqual);
        let stream = generate_stream(2, &StreamParams::mixed(4, 1e6));
        let config = FaultConfig {
            max_loop_failures: 2,
            loop_failure_denom: 3,
            ..FaultConfig::none()
        };
        let plan = (0..1_000u64)
            .map(|s| FaultPlan::new(s, 8, 2, config))
            .find(|p| (0..4u64).any(|j| (0..8u64).any(|i| p.loop_failures(j, i) > 0)))
            .expect("some seed injects a loop failure");
        let report = run_colocation_faulty(&cfg, &stream, 2, &plan);
        assert!(report.retries > 0, "plan was chosen to inject failures");
        assert_eq!(
            report.records.len(),
            stream.len(),
            "retries must not lose jobs"
        );
        // Retried invocations stretch latency but never break accounting.
        for r in &report.records {
            assert!(r.finish_ns > r.admitted_ns);
            assert!(r.slowdown() > 0.0);
        }
        // Same plan, same degradations: the report line is byte-stable.
        let replay = run_colocation_faulty(&cfg, &stream, 2, &plan);
        assert_eq!(report.to_string(), replay.to_string());
    }

    #[test]
    fn corrupted_ptt_saves_degrade_to_cold_starts() {
        use ilan_faults::{FaultConfig, FaultPlan};
        // Every save is corrupted; sequential identical jobs would normally
        // warm-start from each other.
        let cfg = quick_config(SharingPolicy::Naive);
        let p = StreamParams {
            jobs: 2,
            mean_interarrival_ns: 1e12,
            mix: vec![Workload::Cg],
            steps: 2,
            high_priority_fraction: 0.0,
        };
        let stream = generate_stream(1, &p);
        let config = FaultConfig {
            ptt_corruption_denom: 1,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::new(4, 8, 2, config);
        let report = run_colocation_faulty(&cfg, &stream, 1, &plan);
        assert_eq!(report.records.len(), 2);
        assert!(report.corrupted_saves >= 1);
        assert!(
            report.recovered_cold_starts >= 1,
            "lenient load must notice the corruption"
        );
        // The would-be warm job cold-started instead of crashing.
        assert!(report.records.iter().all(|r| !r.warm_started));
    }

    #[test]
    fn overloaded_queue_sheds_with_full_accounting() {
        use ilan_faults::{FaultConfig, FaultPlan};
        // Many near-simultaneous arrivals against a queue capped at 1.
        let cfg = quick_config(SharingPolicy::StaticEqual);
        let stream = generate_stream(7, &StreamParams::mixed(10, 1.0));
        let config = FaultConfig {
            shed_queue_limit: Some(1),
            ..FaultConfig::none()
        };
        let plan = FaultPlan::new(7, 8, 2, config);
        let report = run_colocation_faulty(&cfg, &stream, 7, &plan);
        assert!(!report.shed.is_empty(), "overload must shed");
        assert_eq!(report.records.len() + report.shed.len(), stream.len());
        // Shed jobs were never admitted: no record carries their id.
        for s in &report.shed {
            assert!(report.records.iter().all(|r| r.id != s.id));
        }
    }

    #[test]
    fn bursts_inject_extra_jobs_that_all_complete() {
        use ilan_faults::{FaultConfig, FaultPlan};
        let cfg = quick_config(SharingPolicy::StaticEqual);
        let stream = generate_stream(3, &StreamParams::mixed(3, 1e6));
        let config = FaultConfig {
            max_bursts: 2,
            max_burst_jobs: 2,
            ..FaultConfig::none()
        };
        let plan = (0..1_000u64)
            .map(|s| FaultPlan::new(s, 8, 2, config))
            .find(|p| p.bursts().iter().any(|b| b.after_job <= 2 && b.jobs > 0))
            .expect("some seed bursts early enough to fire");
        let report = run_colocation_faulty(&cfg, &stream, 3, &plan);
        assert!(report.injected_jobs > 0, "plan was chosen to fire a burst");
        assert_eq!(
            report.records.len() + report.shed.len(),
            stream.len() + report.injected_jobs
        );
        // Burst jobs carry fresh ids above the stream's.
        let max_stream_id = stream.iter().map(|j| j.id).max().unwrap();
        assert!(report.records.iter().any(|r| r.id > max_stream_id));
    }

    /// The live exposition agrees with the run's record-level accounting and
    /// is byte-deterministic across replays.
    #[test]
    fn metrics_text_agrees_with_report() {
        let cfg = quick_config(SharingPolicy::StaticEqual);
        let stream = generate_stream(3, &StreamParams::mixed(6, 2e6));
        let report = run_colocation_report(&cfg, &stream, 3);
        let text = report.metrics_text();
        assert!(text.ends_with("# EOF\n"));
        // Every stream job was admitted exactly once and completed.
        assert!(
            text.contains(&format!(
                "ilan_server_admissions_total {}",
                report.records.len()
            )),
            "admissions line missing in:\n{text}"
        );
        // Per-workload completion counters sum to the records.
        let completions: u64 = text
            .lines()
            .filter(|l| l.starts_with("ilan_server_completions_total"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(completions as usize, report.records.len());
        // Warm starts in the exposition match the records.
        let warm = report.records.iter().filter(|r| r.warm_started).count();
        assert!(text.contains(&format!("ilan_server_warm_starts_total {warm}")));
        // Idle at the end: the gauges read zero.
        assert!(text.contains("ilan_server_active_tenants 0"));
        assert!(text.contains("ilan_server_waiting_jobs 0"));
        // No faults injected: every degradation counter reads zero.
        for family in [
            "ilan_server_sheds_total 0",
            "ilan_server_retries_total 0",
            "ilan_server_corrupted_saves_total 0",
            "ilan_server_burst_jobs_total 0",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        // Determinism: the replay renders byte-identical text.
        let replay = run_colocation_report(&cfg, &stream, 3);
        assert_eq!(text, replay.metrics_text());
    }

    /// Under a fault plan, the degradation counters in the exposition match
    /// the report's accounting exactly.
    #[test]
    fn faulty_metrics_text_counts_degradations() {
        use ilan_faults::{FaultConfig, FaultPlan};
        let cfg = quick_config(SharingPolicy::StaticEqual);
        let stream = generate_stream(2, &StreamParams::mixed(4, 1e6));
        let config = FaultConfig {
            max_loop_failures: 2,
            loop_failure_denom: 3,
            ..FaultConfig::none()
        };
        let plan = (0..1_000u64)
            .map(|s| FaultPlan::new(s, 8, 2, config))
            .find(|p| (0..4u64).any(|j| (0..8u64).any(|i| p.loop_failures(j, i) > 0)))
            .expect("some seed injects a loop failure");
        let report = run_colocation_faulty(&cfg, &stream, 2, &plan);
        assert!(report.retries > 0);
        let text = report.metrics_text();
        assert!(
            text.contains(&format!("ilan_server_retries_total {}", report.retries)),
            "retry counter disagrees with report in:\n{text}"
        );
        assert!(text.contains(&format!("ilan_server_sheds_total {}", report.shed.len())));
    }

    #[test]
    fn hungry_hint_reads_the_stored_ptt() {
        let mut store = PttStore::default();
        assert_eq!(store.hungry_hint(Workload::Cg, 4), None);
        // A PTT that settled at 4 threads in an 8-core (2-node) partition.
        let mut ptt = Ptt::new();
        ptt.record(
            ilan::SiteId::new(0),
            4,
            ilan_topology::NodeMask::first_n(1),
            ilan::StealPolicy::Strict,
            &ilan::TaskloopReport::synthetic(100.0, 4),
        );
        store.save(Workload::Cg, 2, &ptt);
        assert_eq!(store.hungry_hint(Workload::Cg, 4), Some(true));
        assert_eq!(store.hungry_hint(Workload::Sp, 4), None);
        // A PTT settled at full capacity reads as not hungry.
        let mut full = Ptt::new();
        full.record(
            ilan::SiteId::new(0),
            8,
            ilan_topology::NodeMask::first_n(2),
            ilan::StealPolicy::Strict,
            &ilan::TaskloopReport::synthetic(100.0, 8),
        );
        let mut store2 = PttStore::default();
        store2.save(Workload::Sp, 2, &full);
        assert_eq!(store2.hungry_hint(Workload::Sp, 4), Some(false));
    }
}
