//! Live serving instruments: what the colocation loop looks like *while it
//! runs*, as opposed to the after-the-fact reduction in
//! [`ColoSummary`](crate::ColoSummary).
//!
//! One [`ServerMetrics`] is built per [`run_colocation`](crate::run_colocation)
//! (or faulty) run; the serving loop updates it at each admission, shed,
//! retry and completion, and the final exposition rides along in the run's
//! [`ColoRunReport::metrics_text`](crate::ColoRunReport::metrics_text).
//! Identical runs render byte-identical text (the registry's `BTreeMap`
//! ordering plus the simulator's determinism).
//!
//! Metric families (all prefixed `ilan_server_`):
//!
//! | family | kind | meaning |
//! |---|---|---|
//! | `admissions` | counter | jobs granted a partition |
//! | `completions` | counter (`workload`) | jobs finished, per workload |
//! | `sheds` | counter | arrivals dropped by the overloaded queue |
//! | `retries` | counter | invocations resubmitted after injected failures |
//! | `warm_starts` | counter | tenants seeded from a stored PTT |
//! | `cold_recoveries` | counter | corrupted stored PTTs degraded to cold starts |
//! | `corrupted_saves` | counter | PTT saves written with corrupted text |
//! | `burst_jobs` | counter | extra jobs injected by fault-plan bursts |
//! | `active_tenants` | gauge | tenants currently holding a partition |
//! | `waiting_jobs` | gauge | jobs currently queued for admission |
//! | `job_latency_ns` | histogram (`workload`) | submission-to-completion latency |
//! | `job_wait_ns` | histogram (`workload`) | queueing delay before admission |
//! | `sched_overhead_ns` | histogram (`workload`) | per-job scheduling overhead |

use crate::metrics::JobRecord;
use ilan_metrics::{Counter, Gauge, Registry};

/// Instruments of one serving run (see module docs). Clones alias the same
/// underlying series.
#[derive(Clone)]
pub struct ServerMetrics {
    registry: Registry,
    pub(crate) admissions: Counter,
    pub(crate) sheds: Counter,
    pub(crate) retries: Counter,
    pub(crate) warm_starts: Counter,
    pub(crate) cold_recoveries: Counter,
    pub(crate) corrupted_saves: Counter,
    pub(crate) burst_jobs: Counter,
    pub(crate) active_tenants: Gauge,
    pub(crate) waiting_jobs: Gauge,
}

impl ServerMetrics {
    /// Instruments registered into a fresh registry.
    pub fn new() -> Self {
        Self::with_registry(Registry::new())
    }

    /// Instruments registered into `registry` — share one registry across
    /// layers to render a single exposition.
    pub fn with_registry(registry: Registry) -> Self {
        ServerMetrics {
            admissions: registry.counter("ilan_server_admissions", "Jobs granted a partition"),
            sheds: registry.counter(
                "ilan_server_sheds",
                "Arrivals dropped by the overloaded admission queue",
            ),
            retries: registry.counter(
                "ilan_server_retries",
                "Invocations resubmitted after injected loop failures",
            ),
            warm_starts: registry.counter(
                "ilan_server_warm_starts",
                "Tenants whose scheduler was seeded from a stored PTT",
            ),
            cold_recoveries: registry.counter(
                "ilan_server_cold_recoveries",
                "Corrupted stored PTTs degraded to cold starts at load",
            ),
            corrupted_saves: registry.counter(
                "ilan_server_corrupted_saves",
                "PTT saves written with corrupted text",
            ),
            burst_jobs: registry.counter(
                "ilan_server_burst_jobs",
                "Extra jobs injected by fault-plan bursts",
            ),
            active_tenants: registry.gauge(
                "ilan_server_active_tenants",
                "Tenants currently holding a partition",
            ),
            waiting_jobs: registry.gauge(
                "ilan_server_waiting_jobs",
                "Jobs currently queued for admission",
            ),
            registry,
        }
    }

    /// The underlying registry: snapshot it, delta it, render it.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The current OpenMetrics exposition.
    pub fn render(&self) -> String {
        self.registry.render()
    }

    /// Folds one completed job into the per-workload (per-tenant-class)
    /// series: the completion counter and the latency / wait / overhead
    /// histograms, all labelled by workload display name.
    pub fn note_completion(&self, record: &JobRecord) {
        let workload = record.workload.name();
        let labels: &[(&str, &str)] = &[("workload", workload)];
        self.registry
            .counter_with("ilan_server_completions", "Jobs finished", labels)
            .inc();
        let hist = |name: &str, help: &str, value: f64| {
            self.registry
                .histogram_with(name, help, labels)
                .record(value.max(0.0) as u64);
        };
        hist(
            "ilan_server_job_latency_ns",
            "Submission-to-completion job latency, ns",
            record.latency_ns(),
        );
        hist(
            "ilan_server_job_wait_ns",
            "Queueing delay before admission, ns",
            record.wait_ns(),
        );
        hist(
            "ilan_server_sched_overhead_ns",
            "Scheduling overhead accumulated per job, ns",
            record.sched_overhead_ns,
        );
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobPriority;
    use ilan_metrics::SampleValue;
    use ilan_workloads::Workload;

    #[test]
    fn completion_feeds_per_workload_series() {
        let m = ServerMetrics::new();
        let record = |workload, finish: f64| JobRecord {
            id: 0,
            workload,
            priority: JobPriority::Normal,
            arrival_ns: 0.0,
            admitted_ns: 100.0,
            finish_ns: finish,
            partition_nodes: 2,
            warm_started: false,
            sched_overhead_ns: 5_000.0,
            isolated_ns: 1.0,
        };
        m.note_completion(&record(Workload::Cg, 1_000.0));
        m.note_completion(&record(Workload::Cg, 2_000.0));
        m.note_completion(&record(Workload::Matmul, 3_000.0));
        m.admissions.add(3);
        m.active_tenants.set(1);
        let snap = m.registry().snapshot();
        assert_eq!(
            snap.get_with("ilan_server_completions", &[("workload", "CG")]),
            Some(&SampleValue::Counter(2))
        );
        let lat = match snap.get_with("ilan_server_job_latency_ns", &[("workload", "CG")]) {
            Some(SampleValue::Histogram(h)) => h,
            other => panic!("{other:?}"),
        };
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 3_000);
        let text = m.render();
        assert!(text.contains("ilan_server_admissions_total 3"));
        assert!(text.contains("ilan_server_active_tenants 1"));
        assert!(text.ends_with("# EOF\n"));
    }
}
