//! A tenant: one admitted job driving its own ILAN scheduler inside its
//! partition, one taskloop invocation at a time, on a [`ColoMachine`] lane.
//!
//! The tenant mirrors the single-application driver
//! (`ilan::driver::run_sim_invocation`) on the colocation engine: per
//! invocation it asks its scheduler for a decision, resolves the active
//! cores and placement plan, and submits the loop with a serial *lead* —
//! the decision cost, plus the program's serial section at timestep
//! boundaries. On completion it feeds the normalized report back into the
//! scheduler, so the moldability search and steal trial run exactly as they
//! would alone — just confined to the tenant's partition and priced against
//! whatever the other tenants are doing to the memory system.

use crate::job::JobSpec;
use ilan::driver::{active_cores, build_plan};
use ilan::ptt::Ptt;
use ilan::{Decision, IlanParams, IlanScheduler, Policy, SiteId, TaskloopReport};
use ilan_numasim::{ColoMachine, LoopOutcome};
use ilan_topology::{NodeMask, Topology};
use ilan_trace::{Event, EventKind, EventLog, DISPATCHER};
use ilan_workloads::{Scale, SimApp};

/// Remaps an application built for the whole machine into `partition`: the
/// blocked first-touch layout lands on the partition's nodes (the tenant's
/// allocator touches pages from inside its cpuset) and the data masks
/// shrink to the partition. The identity when `partition` is the whole
/// machine.
pub fn confine_app(mut app: SimApp, topo: &Topology, partition: NodeMask) -> SimApp {
    let nodes: Vec<_> = partition.iter().collect();
    let n = topo.num_nodes();
    let k = nodes.len();
    assert!(k > 0, "partition must contain at least one node");
    for site in &mut app.sites {
        for t in &mut site.tasks {
            t.home_node = nodes[t.home_node.index() * k / n];
            t.data_mask = partition;
        }
    }
    app
}

/// One admitted job executing on the shared machine (see module docs).
pub struct Tenant {
    /// The job being served.
    pub job: JobSpec,
    /// The tenant's node partition.
    pub partition: NodeMask,
    /// Demand class the admission controller assigned.
    pub hungry: bool,
    /// Whether the scheduler was warm-started from a stored PTT.
    pub warm_started: bool,
    /// Machine time of admission, ns.
    pub admitted_ns: f64,
    /// The tenant's [`ColoMachine`] lane.
    pub lane: usize,
    topo: Topology,
    app: SimApp,
    sched: IlanScheduler,
    /// Flat index of the next invocation in `0..steps × schedule.len()`.
    next_invocation: usize,
    /// The in-flight invocation's site and decision.
    in_flight: Option<(SiteId, Decision)>,
    /// Failed attempts of the current invocation (reset on success).
    attempt: u32,
    /// Total injected loop failures retried across the job.
    pub retries: u32,
    /// Serial-section part of the in-flight lead (subtracted from the
    /// recorded time so the PTT sees loop time, as the single-loop driver's
    /// PTT does).
    serial_lead_ns: f64,
    /// Accumulated scheduling overhead across the job, ns.
    pub sched_overhead_ns: f64,
    /// Merged scheduler event log across invocations, when tracing. Each
    /// [`EventKind::ExplorationDecision`] marks one invocation's decision;
    /// the lane's per-invocation events follow on the machine-global clock.
    trace: Option<EventLog>,
    /// Sequence counter for the tenant's own dispatcher-level events.
    trace_seq: u64,
}

impl Tenant {
    /// Admits `job` into `partition` on `lane`. `warm` is a previously
    /// saved PTT for this (workload, partition size), if the server has
    /// one; the scheduler then starts settled and skips its search.
    #[allow(clippy::too_many_arguments)] // admission-time facts, used once
    pub fn new(
        job: JobSpec,
        partition: NodeMask,
        hungry: bool,
        topo: &Topology,
        scale: Scale,
        warm: Option<Ptt>,
        lane: usize,
        admitted_ns: f64,
    ) -> Self {
        let mut app = confine_app(job.workload.sim_app(topo, scale), topo, partition);
        app.steps = job.steps;
        let params = IlanParams::for_topology(topo).restrict_to(partition);
        let warm_started = warm.is_some();
        let sched = match warm {
            Some(ptt) => IlanScheduler::with_warm_ptt(params, ptt),
            None => IlanScheduler::new(params),
        };
        Tenant {
            job,
            partition,
            hungry,
            warm_started,
            admitted_ns,
            lane,
            topo: topo.clone(),
            app,
            sched,
            next_invocation: 0,
            in_flight: None,
            attempt: 0,
            retries: 0,
            serial_lead_ns: 0.0,
            sched_overhead_ns: 0.0,
            trace: None,
            trace_seq: 0,
        }
    }

    /// Starts collecting a merged scheduler event log for this tenant. The
    /// caller must also turn on lane tracing on the machine
    /// ([`ColoMachine::set_tracing`]) so completions carry events; the tenant
    /// contributes its own [`EventKind::ExplorationDecision`] marker per
    /// invocation either way.
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(EventLog::default());
        }
    }

    /// The merged event log collected so far, when tracing is enabled.
    /// Sequence numbers restart per invocation, so this merged view is for
    /// export and aggregate queries (steal matrix, Chrome trace) — audit
    /// each invocation's [`LoopOutcome::events`] individually.
    pub fn trace(&self) -> Option<&EventLog> {
        self.trace.as_ref()
    }

    /// Total invocations the job runs.
    pub fn total_invocations(&self) -> usize {
        self.app.steps * self.app.schedule.len()
    }

    /// The tenant's scheduler (for PTT harvest at job completion).
    pub fn scheduler(&self) -> &IlanScheduler {
        &self.sched
    }

    /// Flat index of the invocation currently in flight (or next to start).
    pub fn invocation_index(&self) -> usize {
        self.next_invocation
    }

    /// Failed attempts of the current invocation so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Submits the next invocation on the tenant's lane.
    ///
    /// # Panics
    /// Panics if an invocation is already in flight or the job is done.
    pub fn start_next(&mut self, machine: &mut ColoMachine) {
        assert!(self.in_flight.is_none(), "invocation already in flight");
        let idx = self.next_invocation;
        assert!(idx < self.total_invocations(), "job already finished");
        let site_idx = self.app.schedule[idx % self.app.schedule.len()];
        let site = SiteId::new(site_idx as u64);
        let decision = self.sched.decide(site);
        let tasks = self.app.sites[site_idx].tasks.clone();
        let cores = match &decision {
            Decision::Hierarchical { mask, threads, .. } => {
                active_cores(&self.topo, *mask, *threads)
            }
            // Flat / work-sharing decisions span the tenant's partition.
            _ => self.topo.cpuset_of_mask(self.partition),
        };
        let plan = build_plan(&decision, tasks.len());
        // The program's serial section runs between timesteps.
        let serial = if idx > 0 && idx.is_multiple_of(self.app.schedule.len()) {
            self.app.serial_ns
        } else {
            0.0
        };
        self.serial_lead_ns = serial;
        let lead = self.sched.decision_overhead_ns() + serial;
        if let Some(log) = &mut self.trace {
            let threads = decision.threads().unwrap_or(cores.count()) as u32;
            log.push_event(Event {
                seq: self.trace_seq,
                worker: DISPATCHER,
                node: self.partition.iter().next().map_or(0, |n| n.index()) as u32,
                time_ns: machine.now_ns() as u64,
                kind: EventKind::ExplorationDecision {
                    site: site.raw(),
                    threads,
                },
            });
            self.trace_seq += 1;
        }
        machine.start_loop(self.lane, &cores, &plan, tasks, lead);
        self.in_flight = Some((site, decision));
    }

    /// Discards the in-flight invocation's outcome — an injected loop
    /// failure — and resubmits the *same* invocation with an exponential
    /// backoff lead (`backoff_ns × 2^(attempt-1)`). The scheduler neither
    /// records the failed attempt nor re-decides: the decision that was in
    /// flight is retried verbatim, so the PTT and exploration state see
    /// exactly the sequence a fault-free run would.
    ///
    /// # Panics
    /// Panics if no invocation is in flight.
    pub fn retry_current(&mut self, machine: &mut ColoMachine, backoff_ns: f64) {
        let (site, decision) = self
            .in_flight
            .take()
            .expect("retry without an in-flight invocation");
        self.attempt += 1;
        self.retries += 1;
        let idx = self.next_invocation;
        let site_idx = self.app.schedule[idx % self.app.schedule.len()];
        let tasks = self.app.sites[site_idx].tasks.clone();
        let cores = match &decision {
            Decision::Hierarchical { mask, threads, .. } => {
                active_cores(&self.topo, *mask, *threads)
            }
            _ => self.topo.cpuset_of_mask(self.partition),
        };
        let plan = build_plan(&decision, tasks.len());
        let lead = backoff_ns * 2f64.powi(self.attempt as i32 - 1);
        // Strip the backoff from the eventual recorded time the same way the
        // serial section is stripped: the PTT must see loop time, not the
        // retry policy.
        self.serial_lead_ns = lead;
        machine.start_loop(self.lane, &cores, &plan, tasks, lead);
        self.in_flight = Some((site, decision));
    }

    /// Feeds a completed invocation back into the scheduler. Returns `true`
    /// when the job has run all its invocations.
    pub fn on_completion(&mut self, outcome: &LoopOutcome) -> bool {
        let (site, decision) = self
            .in_flight
            .take()
            .expect("completion without an in-flight invocation");
        if let Some(log) = &mut self.trace {
            log.merge(&outcome.events);
        }
        let mut report = TaskloopReport::from(outcome);
        // The colo makespan spans submission to barrier, so it already
        // includes the decision cost; strip only the serial section so the
        // PTT records decision + dispatch + loop, as the single-loop driver
        // does. Overhead accounting gains the decision cost the same way.
        report.time_ns = (report.time_ns - self.serial_lead_ns).max(0.0);
        report.sched_overhead_ns += self.sched.decision_overhead_ns();
        self.sched_overhead_ns += report.sched_overhead_ns;
        self.sched.record(site, &decision, &report);
        self.next_invocation += 1;
        self.attempt = 0;
        self.next_invocation >= self.total_invocations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobPriority;
    use ilan_numasim::MachineParams;
    use ilan_topology::{presets, NodeId};
    use ilan_workloads::Workload;

    fn job(workload: Workload, steps: usize) -> JobSpec {
        JobSpec {
            id: 0,
            workload,
            steps,
            priority: JobPriority::Normal,
            arrival_ns: 0.0,
        }
    }

    #[test]
    fn confine_remaps_homes_into_partition() {
        let t = presets::epyc_9354_2s();
        let app = Workload::Cg.sim_app(&t, Scale::Quick);
        let part = NodeMask::from_bits(0b1100_0000); // nodes 6, 7
        let confined = confine_app(app, &t, part);
        for site in &confined.sites {
            for task in &site.tasks {
                assert!(part.contains(task.home_node), "home escaped partition");
                assert_eq!(task.data_mask, part);
            }
        }
        // Both partition nodes receive data (blocked layout preserved).
        let homes: std::collections::HashSet<usize> = confined.sites[0]
            .tasks
            .iter()
            .map(|t| t.home_node.index())
            .collect();
        assert!(homes.contains(&6) && homes.contains(&7));
    }

    #[test]
    fn confine_full_machine_is_identity() {
        let t = presets::tiny_2x4();
        let app = Workload::Matmul.sim_app(&t, Scale::Quick);
        let before: Vec<NodeId> = app.sites[0].tasks.iter().map(|t| t.home_node).collect();
        let confined = confine_app(app, &t, t.all_nodes());
        let after: Vec<NodeId> = confined.sites[0]
            .tasks
            .iter()
            .map(|t| t.home_node)
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn tenant_runs_a_job_to_completion() {
        let t = presets::tiny_2x4();
        let mut machine = ColoMachine::new(MachineParams::for_topology(&t).noiseless(), 5);
        let lane = machine.add_lane();
        let mut tenant = Tenant::new(
            job(Workload::Matmul, 2),
            t.all_nodes(),
            false,
            &t,
            Scale::Quick,
            None,
            lane,
            0.0,
        );
        let total = tenant.total_invocations();
        assert!(total >= 2);
        tenant.start_next(&mut machine);
        let mut completed = 0;
        loop {
            let (l, outcome) = machine.run_until_next_completion().expect("loop in flight");
            assert_eq!(l, lane);
            completed += 1;
            if tenant.on_completion(&outcome) {
                break;
            }
            tenant.start_next(&mut machine);
        }
        assert_eq!(completed, total);
        assert!(machine.now_ns() > 0.0);
        assert!(tenant.sched_overhead_ns > 0.0);
        // The scheduler saw every invocation.
        let recorded: u64 = tenant
            .scheduler()
            .ptt()
            .site_ids()
            .iter()
            .map(|&s| tenant.scheduler().ptt().invocations(s))
            .sum();
        assert_eq!(recorded as usize, total);
    }

    #[test]
    fn confined_tenant_never_leaves_partition() {
        let t = presets::epyc_9354_2s();
        let part = NodeMask::from_bits(0b0000_1111); // socket 0
        let mut machine = ColoMachine::new(MachineParams::for_topology(&t).noiseless(), 9);
        let lane = machine.add_lane();
        let mut tenant = Tenant::new(
            job(Workload::Cg, 1),
            part,
            true,
            &t,
            Scale::Quick,
            None,
            lane,
            0.0,
        );
        tenant.start_next(&mut machine);
        loop {
            let (_, outcome) = machine.run_until_next_completion().unwrap();
            // No chunk may execute on a node outside the partition.
            for (i, n) in outcome.nodes.iter().enumerate() {
                if !part.contains(NodeId::new(i)) {
                    assert_eq!(n.tasks, 0, "node {i} outside partition executed work");
                }
            }
            if tenant.on_completion(&outcome) {
                break;
            }
            tenant.start_next(&mut machine);
        }
    }

    #[test]
    fn traced_tenant_logs_decisions_and_stays_in_partition() {
        use ilan_trace::{audit, AuditExpect, NodeTally};

        let t = presets::tiny_2x4();
        let part = NodeMask::from_bits(0b01); // node 0 only
        let mut machine = ColoMachine::new(MachineParams::for_topology(&t).noiseless(), 3);
        machine.set_tracing(true);
        let lane = machine.add_lane();
        let mut tenant = Tenant::new(
            job(Workload::Matmul, 2),
            part,
            false,
            &t,
            Scale::Quick,
            None,
            lane,
            0.0,
        );
        tenant.enable_tracing();
        let total = tenant.total_invocations();
        tenant.start_next(&mut machine);
        let mut invocations = 0;
        loop {
            let (_, outcome) = machine.run_until_next_completion().unwrap();
            invocations += 1;
            // Each invocation's event log audits clean on its own.
            let expect = AuditExpect {
                migrations: Some(outcome.migrations),
                latch_releases: Some(outcome.threads),
                per_node: Some(
                    outcome
                        .nodes
                        .iter()
                        .map(|n| NodeTally {
                            tasks: n.tasks,
                            local_tasks: None,
                        })
                        .collect(),
                ),
            };
            let report = audit(&outcome.events, &expect);
            assert!(report.ok(), "invocation audit failed: {report}");
            if tenant.on_completion(&outcome) {
                break;
            }
            tenant.start_next(&mut machine);
        }
        assert_eq!(invocations, total);

        let log = tenant.trace().expect("tracing enabled");
        // One decision marker per invocation, each naming a real site.
        let decisions: Vec<_> = log
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::ExplorationDecision { site, threads } => Some((site, threads)),
                _ => None,
            })
            .collect();
        assert_eq!(decisions.len(), total);
        assert!(decisions.iter().all(|&(_, threads)| threads > 0));
        // No chunk ever started on a node outside the partition.
        for e in log.iter() {
            if let EventKind::ChunkStart { .. } = e.kind {
                assert!(
                    part.contains(NodeId::new(e.node as usize)),
                    "chunk started outside partition on node {}",
                    e.node
                );
            }
        }
        // The merged log carries real per-invocation scheduler activity.
        assert!(log
            .iter()
            .any(|e| matches!(e.kind, EventKind::ChunkEnqueue { .. })));
        assert!(log.len() > total);
    }
}
