//! End-to-end colocation experiments on the paper's 64-core machine.

use ilan_server::{compare_policies, ColoExperiment, SharingPolicy};
use ilan_topology::presets;

fn experiment(jobs: usize, seed: u64) -> ColoExperiment {
    ColoExperiment::new(&presets::epyc_9354_2s(), jobs, seed)
}

/// The headline claim: managing interference beats unmanaged full-machine
/// sharing on both mean slowdown (ANTT) and tail latency, for the mixed
/// CG + SP + Matmul stream.
#[test]
fn interference_aware_beats_naive_sharing() {
    let e = experiment(12, 1);
    let naive = e.run(SharingPolicy::Naive);
    let aware = e.run(SharingPolicy::InterferenceAware);
    assert_eq!(naive.jobs, 12);
    assert_eq!(aware.jobs, 12);
    assert!(
        aware.antt < naive.antt,
        "ANTT: interference-aware {:.2} not better than naive {:.2}",
        aware.antt,
        naive.antt
    );
    assert!(
        aware.p95_ns < naive.p95_ns,
        "p95: interference-aware {:.2}ms not better than naive {:.2}ms",
        aware.p95_ns * 1e-6,
        naive.p95_ns * 1e-6
    );
}

/// Partitioning at all (even demand-blind) already bounds the damage; the
/// static-equal middle policy must not be worse than naive on ANTT either.
#[test]
fn static_partitioning_beats_naive_sharing() {
    let e = experiment(10, 4);
    let naive = e.run(SharingPolicy::Naive);
    let equal = e.run(SharingPolicy::StaticEqual);
    assert!(
        equal.antt < naive.antt,
        "static-equal ANTT {:.2} not better than naive {:.2}",
        equal.antt,
        naive.antt
    );
}

/// Same seed ⇒ byte-identical comparison report; different seeds ⇒
/// different traces (the stream and machine noise actually depend on it).
#[test]
fn colo_report_is_deterministic_in_the_seed() {
    let a = compare_policies(&experiment(8, 7));
    let b = compare_policies(&experiment(8, 7));
    assert_eq!(a, b, "same seed must replay byte-identically");
    let c = compare_policies(&experiment(8, 8));
    assert_ne!(a, c, "different seeds must differ");
}
