//! Best-effort topology detection from the running machine.
//!
//! On Linux this reads `/sys/devices/system/node` and
//! `/sys/devices/system/cpu`, mirroring the subset of hwloc queries the ILAN
//! runtime performs. When the layout is irregular (non-uniform node sizes,
//! offline CPUs interleaved) or the platform is not Linux, detection degrades
//! to a flat SMP topology over [`available_parallelism`] cores — scheduling is
//! still correct, only less informed, exactly as a hwloc-less OpenMP build
//! would behave.
//!
//! [`available_parallelism`]: std::thread::available_parallelism

use crate::presets;
use crate::topo::Topology;

/// Detects the current machine's topology, falling back to flat SMP.
///
/// Never fails: the worst case is a 1-core SMP description.
pub fn detect() -> Topology {
    detect_linux_sysfs().unwrap_or_else(fallback_smp)
}

/// A flat SMP topology over the visible logical CPUs.
pub fn fallback_smp() -> Topology {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    presets::smp(cores)
}

/// Attempts sysfs-based detection. Returns `None` on any irregularity.
fn detect_linux_sysfs() -> Option<Topology> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let online = std::fs::read_to_string("/sys/devices/system/node/online").ok()?;
    let node_ids = parse_id_list(online.trim())?;
    if node_ids.is_empty() {
        return None;
    }
    // Node ids must be dense starting at zero for our dense model.
    for (i, &id) in node_ids.iter().enumerate() {
        if id != i {
            return None;
        }
    }
    let mut cores_per_node = None;
    for &node in &node_ids {
        let cpulist =
            std::fs::read_to_string(format!("/sys/devices/system/node/node{node}/cpulist")).ok()?;
        let cpus = parse_id_list(cpulist.trim())?;
        match cores_per_node {
            None => cores_per_node = Some(cpus.len()),
            Some(n) if n == cpus.len() => {}
            // Irregular node sizes: bail out to SMP.
            Some(_) => return None,
        }
    }
    let cores_per_node = cores_per_node?;
    if cores_per_node == 0 {
        return None;
    }
    // Socket structure: read physical_package_id of the first cpu of each node.
    let mut packages = Vec::new();
    for &node in &node_ids {
        let first_cpu = node * cores_per_node;
        let pkg = std::fs::read_to_string(format!(
            "/sys/devices/system/cpu/cpu{first_cpu}/topology/physical_package_id"
        ))
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(0);
        packages.push(pkg);
    }
    let num_sockets = packages
        .iter()
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    let nodes = node_ids.len();
    if num_sockets == 0 || nodes % num_sockets != 0 {
        return None;
    }
    Topology::builder()
        .sockets(num_sockets)
        .nodes_per_socket(nodes / num_sockets)
        .cores_per_node(cores_per_node)
        .build()
        .ok()
}

/// Parses a Linux id list like `0-3,8,10-11` into sorted ids.
pub(crate) fn parse_id_list(s: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    if s.is_empty() {
        return Some(out);
    }
    for part in s.split(',') {
        let part = part.trim();
        if let Some((a, b)) = part.split_once('-') {
            let a: usize = a.trim().parse().ok()?;
            let b: usize = b.trim().parse().ok()?;
            if b < a {
                return None;
            }
            out.extend(a..=b);
        } else {
            out.push(part.parse().ok()?);
        }
    }
    out.sort_unstable();
    out.dedup();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single() {
        assert_eq!(parse_id_list("0"), Some(vec![0]));
        assert_eq!(parse_id_list("7"), Some(vec![7]));
    }

    #[test]
    fn parse_range() {
        assert_eq!(parse_id_list("0-3"), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn parse_mixed() {
        assert_eq!(parse_id_list("0-2,5,7-8"), Some(vec![0, 1, 2, 5, 7, 8]));
    }

    #[test]
    fn parse_dedups_and_sorts() {
        assert_eq!(parse_id_list("5,0-2,2"), Some(vec![0, 1, 2, 5]));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_id_list("a-b"), None);
        assert_eq!(parse_id_list("3-1"), None);
        assert_eq!(parse_id_list("1,,2"), None);
    }

    #[test]
    fn parse_empty() {
        assert_eq!(parse_id_list(""), Some(vec![]));
    }

    #[test]
    fn detect_never_panics_and_is_nonempty() {
        let t = detect();
        assert!(t.num_cores() >= 1);
        assert!(t.num_nodes() >= 1);
    }

    #[test]
    fn fallback_matches_available_parallelism() {
        let t = fallback_smp();
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(t.num_cores(), n);
        assert_eq!(t.num_nodes(), 1);
    }
}
