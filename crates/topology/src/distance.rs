//! NUMA distance matrices.
//!
//! Distances follow the ACPI SLIT convention also used by `numactl --hardware`:
//! local access is normalized to 10, and a remote access with distance *d* costs
//! roughly *d*/10× the local latency. The matrix need not be symmetric in
//! general, though all presets in this crate are.

use crate::ids::NodeId;

/// Square matrix of relative access distances between NUMA nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n × n` distances.
    d: Vec<u16>,
}

/// The SLIT value for local access.
pub const LOCAL_DISTANCE: u16 = 10;

impl DistanceMatrix {
    /// Builds a matrix from row-major values.
    ///
    /// # Panics
    /// Panics if `values.len() != n * n`, if any diagonal entry differs from
    /// [`LOCAL_DISTANCE`], or if any off-diagonal entry is below it.
    pub fn from_rows(n: usize, values: Vec<u16>) -> Self {
        assert_eq!(values.len(), n * n, "distance matrix must be n×n");
        for i in 0..n {
            assert_eq!(
                values[i * n + i],
                LOCAL_DISTANCE,
                "diagonal (local) distance must be {LOCAL_DISTANCE}"
            );
            for j in 0..n {
                assert!(
                    values[i * n + j] >= LOCAL_DISTANCE,
                    "remote distance cannot be below local"
                );
            }
        }
        DistanceMatrix { n, d: values }
    }

    /// A uniform matrix where every remote pair has distance `remote`.
    pub fn uniform(n: usize, remote: u16) -> Self {
        let mut d = vec![remote; n * n];
        for i in 0..n {
            d[i * n + i] = LOCAL_DISTANCE;
        }
        Self::from_rows(n, d)
    }

    /// A two-level matrix for machines with `sockets` sockets of
    /// `nodes_per_socket` nodes each: `same_socket` distance within a socket,
    /// `cross_socket` between sockets.
    pub fn two_level(
        sockets: usize,
        nodes_per_socket: usize,
        same_socket: u16,
        cross_socket: u16,
    ) -> Self {
        let n = sockets * nodes_per_socket;
        let mut d = vec![0u16; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = if i == j {
                    LOCAL_DISTANCE
                } else if i / nodes_per_socket == j / nodes_per_socket {
                    same_socket
                } else {
                    cross_socket
                };
            }
        }
        Self::from_rows(n, d)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty (zero nodes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance from `from` to `to`.
    #[inline]
    pub fn get(&self, from: NodeId, to: NodeId) -> u16 {
        self.d[from.index() * self.n + to.index()]
    }

    /// Latency multiplier relative to local access (`distance / 10`).
    #[inline]
    pub fn latency_factor(&self, from: NodeId, to: NodeId) -> f64 {
        f64::from(self.get(from, to)) / f64::from(LOCAL_DISTANCE)
    }

    /// Nodes sorted by increasing distance from `from` (excluding `from`
    /// itself), ties broken by node id. This is the order in which ILAN's
    /// node-mask selection grows a mask around the fastest node.
    pub fn neighbors_by_distance(&self, from: NodeId) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.n)
            .map(NodeId::new)
            .filter(|&n| n != from)
            .collect();
        nodes.sort_by_key(|&n| (self.get(from, n), n.index()));
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matrix() {
        let m = DistanceMatrix::uniform(4, 20);
        assert_eq!(m.len(), 4);
        assert_eq!(m.get(NodeId::new(0), NodeId::new(0)), 10);
        assert_eq!(m.get(NodeId::new(0), NodeId::new(3)), 20);
        assert!((m.latency_factor(NodeId::new(0), NodeId::new(3)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_level_matrix() {
        let m = DistanceMatrix::two_level(2, 4, 12, 32);
        assert_eq!(m.len(), 8);
        assert_eq!(m.get(NodeId::new(0), NodeId::new(1)), 12);
        assert_eq!(m.get(NodeId::new(0), NodeId::new(4)), 32);
        assert_eq!(m.get(NodeId::new(5), NodeId::new(7)), 12);
        assert_eq!(m.get(NodeId::new(7), NodeId::new(2)), 32);
    }

    #[test]
    fn neighbors_prefer_same_socket() {
        let m = DistanceMatrix::two_level(2, 2, 12, 32);
        let order = m.neighbors_by_distance(NodeId::new(1));
        assert_eq!(order, vec![NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn rejects_bad_diagonal() {
        DistanceMatrix::from_rows(2, vec![10, 20, 20, 11]);
    }

    #[test]
    #[should_panic(expected = "remote distance")]
    fn rejects_sub_local_remote() {
        DistanceMatrix::from_rows(2, vec![10, 5, 20, 10]);
    }
}
