//! Strongly-typed identifiers for topology objects.
//!
//! Using newtypes instead of bare `usize` prevents the classic scheduler bug of
//! indexing a per-core table with a node id (or vice versa). All ids are dense,
//! zero-based indices into the owning [`Topology`](crate::Topology).

use core::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $short:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the id as a `usize` suitable for indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs an id from a dense index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index as u32)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                Self(v as u32)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(v: $name) -> usize {
                v.index()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A physical core (equivalently, a pinned worker thread: ILAN pins threads
    /// 1:1 to cores).
    CoreId,
    "core"
);
id_type!(
    /// A NUMA node: a set of cores plus the memory controller local to them.
    NodeId,
    "node"
);
id_type!(
    /// A socket (package). On the paper's EPYC 9354 platform each socket holds
    /// four NUMA nodes (NPS4 configuration).
    SocketId,
    "socket"
);
id_type!(
    /// A core-complex die: the group of cores sharing one last-level cache.
    CcdId,
    "ccd"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        for i in [0usize, 1, 7, 63, 1000] {
            assert_eq!(CoreId::new(i).index(), i);
            assert_eq!(NodeId::from(i).index(), i);
            assert_eq!(usize::from(SocketId::new(i)), i);
            assert_eq!(CcdId::from(i as u32).index(), i);
        }
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(CoreId::new(3).to_string(), "core3");
        assert_eq!(NodeId::new(5).to_string(), "node5");
        assert_eq!(SocketId::new(1).to_string(), "socket1");
        assert_eq!(CcdId::new(9).to_string(), "ccd9");
        assert_eq!(format!("{:?}", NodeId::new(2)), "node2");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CoreId::new(2) < CoreId::new(10));
        assert!(NodeId::new(0) < NodeId::new(1));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CoreId::default(), CoreId::new(0));
        assert_eq!(NodeId::default().index(), 0);
    }
}
