//! Hardware topology model for the ILAN NUMA scheduler.
//!
//! This crate plays the role that [hwloc](https://www.open-mpi.org/projects/hwloc/)
//! plays in the original ILAN implementation: it describes the machine as a
//! hierarchy of **sockets → NUMA nodes → CCDs (last-level-cache groups) → cores**,
//! exposes the inter-node *distance matrix* (as `numactl --hardware` would), and
//! provides the small set-algebra types ([`NodeMask`], [`CpuSet`]) that scheduling
//! policies manipulate.
//!
//! The scheduler never talks to the operating system directly; everything it needs
//! to know about the platform is captured by a [`Topology`] value. Topologies come
//! from three places:
//!
//! 1. **Presets** ([`presets`]): faithful models of real machines, most importantly
//!    [`presets::epyc_9354_2s`] — the dual-socket-equivalent 64-core AMD EPYC 9354
//!    ("Zen 4") node used in the paper's evaluation (8 NUMA nodes × 8 cores,
//!    4 nodes per socket, 4-core CCDs sharing a 32 MB L3).
//! 2. **The builder** ([`TopologyBuilder`]): arbitrary synthetic machines for tests
//!    and what-if studies.
//! 3. **Detection** ([`detect`]): best-effort discovery from Linux `/sys`, falling
//!    back to a flat SMP model of the visible CPUs.
//!
//! # Example
//!
//! ```
//! use ilan_topology::{presets, NodeId};
//!
//! let topo = presets::epyc_9354_2s();
//! assert_eq!(topo.num_cores(), 64);
//! assert_eq!(topo.num_nodes(), 8);
//! assert_eq!(topo.num_sockets(), 2);
//! // Nodes 0 and 1 share a socket; nodes 0 and 4 do not.
//! assert!(topo.same_socket(NodeId::new(0), NodeId::new(1)));
//! assert!(!topo.same_socket(NodeId::new(0), NodeId::new(4)));
//! ```

#![warn(missing_docs)]

pub mod detect;
pub mod distance;
pub mod ids;
pub mod mask;
pub mod presets;
pub mod render;
pub mod spec;
mod topo;

pub use distance::DistanceMatrix;
pub use ids::{CcdId, CoreId, NodeId, SocketId};
pub use mask::{CpuSet, NodeMask};
pub use render::render_tree;
pub use spec::parse_spec;
pub use topo::{CacheSpec, Topology, TopologyBuilder, TopologyError};
