//! Bit-set types used by scheduling policies.
//!
//! [`NodeMask`] is the paper's `node_mask` taskloop parameter: one bit per NUMA
//! node, set bits marking the nodes eligible to execute the taskloop — analogous
//! to a CPU affinity mask at node granularity. [`CpuSet`] is the corresponding
//! per-core mask used for thread pinning.

use crate::ids::{CoreId, NodeId};
use core::fmt;

/// A set of NUMA nodes, one bit per node (up to 64 nodes).
///
/// This is the `node_mask` of an ILAN taskloop configuration: bit *i* set means
/// NUMA node *i* may execute tasks of the loop. Sixty-four nodes is ample for
/// current hardware (the paper's machine has eight).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeMask(u64);

impl NodeMask {
    /// The empty mask (no nodes eligible). An empty mask is never a valid
    /// execution target; policies must always produce at least one node.
    pub const EMPTY: NodeMask = NodeMask(0);

    /// Maximum number of nodes representable.
    pub const CAPACITY: usize = 64;

    /// Creates a mask containing the first `n` nodes (`node0..node(n-1)`).
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "NodeMask supports at most 64 nodes");
        if n == 64 {
            NodeMask(u64::MAX)
        } else {
            NodeMask((1u64 << n) - 1)
        }
    }

    /// Creates a mask with exactly one node set.
    #[inline]
    pub fn single(node: NodeId) -> Self {
        NodeMask(0).with(node)
    }

    /// Creates a mask from raw bits.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        NodeMask(bits)
    }

    /// Returns the raw bit representation.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Returns `self` with `node` added.
    #[inline]
    #[must_use]
    pub fn with(self, node: NodeId) -> Self {
        assert!(node.index() < Self::CAPACITY, "node id out of range");
        NodeMask(self.0 | (1u64 << node.index()))
    }

    /// Returns `self` with `node` removed.
    #[inline]
    #[must_use]
    pub fn without(self, node: NodeId) -> Self {
        assert!(node.index() < Self::CAPACITY, "node id out of range");
        NodeMask(self.0 & !(1u64 << node.index()))
    }

    /// Adds `node` in place.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        *self = self.with(node);
    }

    /// Removes `node` in place.
    #[inline]
    pub fn remove(&mut self, node: NodeId) {
        *self = self.without(node);
    }

    /// Whether `node` is in the mask.
    #[inline]
    pub fn contains(self, node: NodeId) -> bool {
        node.index() < Self::CAPACITY && self.0 & (1u64 << node.index()) != 0
    }

    /// Number of nodes in the mask.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the mask is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The lowest-numbered node in the mask, if any.
    #[inline]
    pub fn first(self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(NodeId::new(self.0.trailing_zeros() as usize))
        }
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: NodeMask) -> NodeMask {
        NodeMask(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersection(self, other: NodeMask) -> NodeMask {
        NodeMask(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    #[must_use]
    pub fn difference(self, other: NodeMask) -> NodeMask {
        NodeMask(self.0 & !other.0)
    }

    /// Whether every node of `self` is also in `other`.
    #[inline]
    pub fn is_subset(self, other: NodeMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the nodes in the mask in ascending id order.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        let mut bits = self.0;
        core::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let idx = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(NodeId::new(idx))
            }
        })
    }

    /// The position of `node` within the mask's ascending enumeration
    /// (e.g. in mask `{1,3,6}`, node 3 has rank 1). Returns `None` if absent.
    ///
    /// Hierarchical task distribution uses ranks to map "the *k*-th active node"
    /// onto a physical node id.
    #[inline]
    pub fn rank_of(self, node: NodeId) -> Option<usize> {
        if !self.contains(node) {
            return None;
        }
        let below = self.0 & ((1u64 << node.index()) - 1);
        Some(below.count_ones() as usize)
    }

    /// The node with rank `rank` in ascending enumeration (inverse of
    /// [`rank_of`](Self::rank_of)). Returns `None` if `rank >= count()`.
    pub fn nth(self, rank: usize) -> Option<NodeId> {
        self.iter().nth(rank)
    }
}

impl FromIterator<NodeId> for NodeMask {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut m = NodeMask::EMPTY;
        for n in iter {
            m.insert(n);
        }
        m
    }
}

impl fmt::Debug for NodeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeMask{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", n.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for NodeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A set of cores, arbitrarily sized (backed by a bit vector).
///
/// Used to express pinning sets and the exact cores activated by a taskloop
/// configuration.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct CpuSet {
    words: Vec<u64>,
}

impl CpuSet {
    /// Creates an empty cpuset.
    pub fn new() -> Self {
        CpuSet { words: Vec::new() }
    }

    /// Creates a cpuset containing cores `0..n`.
    pub fn first_n(n: usize) -> Self {
        let mut s = CpuSet::new();
        for i in 0..n {
            s.insert(CoreId::new(i));
        }
        s
    }

    /// Adds a core.
    pub fn insert(&mut self, core: CoreId) {
        let (w, b) = (core.index() / 64, core.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << b;
    }

    /// Removes a core.
    pub fn remove(&mut self, core: CoreId) {
        let (w, b) = (core.index() / 64, core.index() % 64);
        if w < self.words.len() {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Whether the set contains `core`.
    pub fn contains(&self, core: CoreId) -> bool {
        let (w, b) = (core.index() / 64, core.index() % 64);
        w < self.words.len() && self.words[w] & (1u64 << b) != 0
    }

    /// Number of cores in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over member cores in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            core::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(CoreId::new(wi * 64 + b))
                }
            })
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &CpuSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }
}

impl FromIterator<CoreId> for CpuSet {
    fn from_iter<T: IntoIterator<Item = CoreId>>(iter: T) -> Self {
        let mut s = CpuSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuSet{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", c.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_counts() {
        assert_eq!(NodeMask::first_n(0), NodeMask::EMPTY);
        assert_eq!(NodeMask::first_n(8).count(), 8);
        assert_eq!(NodeMask::first_n(64).count(), 64);
    }

    #[test]
    fn insert_remove_contains() {
        let mut m = NodeMask::EMPTY;
        m.insert(NodeId::new(3));
        m.insert(NodeId::new(7));
        assert!(m.contains(NodeId::new(3)));
        assert!(m.contains(NodeId::new(7)));
        assert!(!m.contains(NodeId::new(4)));
        m.remove(NodeId::new(3));
        assert!(!m.contains(NodeId::new(3)));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn iter_ascending() {
        let m: NodeMask = [5usize, 1, 3].iter().map(|&i| NodeId::new(i)).collect();
        let got: Vec<usize> = m.iter().map(|n| n.index()).collect();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn set_algebra() {
        let a = NodeMask::first_n(4); // {0,1,2,3}
        let b = NodeMask::from_bits(0b1100); // {2,3}
        assert_eq!(a.intersection(b), b);
        assert_eq!(a.union(b), a);
        assert_eq!(a.difference(b), NodeMask::from_bits(0b0011));
        assert!(b.is_subset(a));
        assert!(!a.is_subset(b));
    }

    #[test]
    fn rank_and_nth_are_inverse() {
        let m = NodeMask::from_bits(0b0100_1010); // {1,3,6}
        assert_eq!(m.rank_of(NodeId::new(1)), Some(0));
        assert_eq!(m.rank_of(NodeId::new(3)), Some(1));
        assert_eq!(m.rank_of(NodeId::new(6)), Some(2));
        assert_eq!(m.rank_of(NodeId::new(0)), None);
        assert_eq!(m.nth(0), Some(NodeId::new(1)));
        assert_eq!(m.nth(2), Some(NodeId::new(6)));
        assert_eq!(m.nth(3), None);
    }

    #[test]
    fn first_returns_lowest() {
        assert_eq!(NodeMask::EMPTY.first(), None);
        assert_eq!(NodeMask::from_bits(0b101000).first(), Some(NodeId::new(3)));
    }

    #[test]
    fn debug_format() {
        let m = NodeMask::from_bits(0b101);
        assert_eq!(format!("{m:?}"), "NodeMask{0,2}");
    }

    #[test]
    fn cpuset_basics() {
        let mut s = CpuSet::new();
        assert!(s.is_empty());
        s.insert(CoreId::new(0));
        s.insert(CoreId::new(63));
        s.insert(CoreId::new(64));
        s.insert(CoreId::new(130));
        assert_eq!(s.count(), 4);
        assert!(s.contains(CoreId::new(64)));
        assert!(!s.contains(CoreId::new(65)));
        s.remove(CoreId::new(64));
        assert_eq!(s.count(), 3);
        let ids: Vec<usize> = s.iter().map(|c| c.index()).collect();
        assert_eq!(ids, vec![0, 63, 130]);
    }

    #[test]
    fn cpuset_union() {
        let mut a = CpuSet::first_n(3);
        let b: CpuSet = [CoreId::new(100)].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.count(), 4);
        assert!(a.contains(CoreId::new(100)));
    }

    #[test]
    fn cpuset_remove_out_of_range_is_noop() {
        let mut s = CpuSet::first_n(2);
        s.remove(CoreId::new(500));
        assert_eq!(s.count(), 2);
    }
}
