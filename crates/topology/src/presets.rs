//! Preset topologies of real machines.
//!
//! [`epyc_9354_2s`] is the evaluation platform of the ILAN paper (a Vera/NAISS
//! compute node). The others exist for portability studies and tests: the paper
//! notes that the thread-count granularity `g` and the benefit of node-level
//! scheduling depend on the platform topology, so the reproduction harness can
//! be pointed at any of these.

use crate::topo::{CacheSpec, Topology};

/// The paper's platform: AMD EPYC 9354 ("Zen 4") node with 64 cores in total,
/// 8 NUMA nodes of 8 cores, 4 NUMA nodes per socket (NPS4), 4-core CCDs
/// sharing a 32 MiB L3.
///
/// SLIT distances follow AMD's published values: 10 local, 12 within a socket,
/// 32 across sockets.
pub fn epyc_9354_2s() -> Topology {
    Topology::builder()
        .sockets(2)
        .nodes_per_socket(4)
        .cores_per_node(8)
        .cores_per_ccd(4)
        .cache(CacheSpec {
            l1d: 32 << 10,
            l2: 1 << 20,
            l3: 32 << 20,
        })
        .same_socket_distance(12)
        .cross_socket_distance(32)
        .build()
        .expect("preset is valid")
}

/// A single-socket EPYC 7742 ("Zen 2", Rome) in NPS4: 64 cores, 4 NUMA nodes
/// of 16 cores, 4-core CCXs sharing a 16 MiB L3.
pub fn epyc_7742_1s_nps4() -> Topology {
    Topology::builder()
        .sockets(1)
        .nodes_per_socket(4)
        .cores_per_node(16)
        .cores_per_ccd(4)
        .cache(CacheSpec {
            l1d: 32 << 10,
            l2: 512 << 10,
            l3: 16 << 20,
        })
        .same_socket_distance(12)
        .build()
        .expect("preset is valid")
}

/// A dual-socket Intel Xeon Platinum 8280 ("Cascade Lake"): 2 × 28 cores, one
/// NUMA node per socket, monolithic 38.5 MiB L3 per socket.
pub fn xeon_8280_2s() -> Topology {
    Topology::builder()
        .sockets(2)
        .nodes_per_socket(1)
        .cores_per_node(28)
        .cores_per_ccd(28)
        .cache(CacheSpec {
            l1d: 32 << 10,
            l2: 1 << 20,
            l3: 38 << 20,
        })
        .cross_socket_distance(21)
        .build()
        .expect("preset is valid")
}

/// A flat SMP machine: `cores` cores, one NUMA node, one shared L3. The
/// degenerate case in which hierarchical scheduling reduces to plain
/// work-stealing — useful as a control in experiments and as the detection
/// fallback on machines without NUMA.
pub fn smp(cores: usize) -> Topology {
    Topology::builder()
        .cores_per_node(cores.max(1))
        .build()
        .expect("preset is valid")
}

/// A small two-node machine (2 × 4 cores) for fast unit tests.
pub fn tiny_2x4() -> Topology {
    Topology::builder()
        .sockets(2)
        .nodes_per_socket(1)
        .cores_per_node(4)
        .cores_per_ccd(4)
        .build()
        .expect("preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn paper_platform_shape() {
        let t = epyc_9354_2s();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.nodes_per_socket(), 4);
        assert_eq!(t.cores_per_node(), 8);
        assert_eq!(t.cores_per_ccd(), 4);
        assert_eq!(t.cache().l3, 32 << 20);
        assert_eq!(t.distances().get(NodeId::new(0), NodeId::new(1)), 12);
        assert_eq!(t.distances().get(NodeId::new(0), NodeId::new(7)), 32);
    }

    #[test]
    fn rome_shape() {
        let t = epyc_7742_1s_nps4();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_ccds(), 16);
    }

    #[test]
    fn xeon_shape() {
        let t = xeon_8280_2s();
        assert_eq!(t.num_cores(), 56);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.distances().get(NodeId::new(0), NodeId::new(1)), 21);
    }

    #[test]
    fn smp_shape() {
        let t = smp(16);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_cores(), 16);
        // smp(0) still builds a 1-core machine.
        assert_eq!(smp(0).num_cores(), 1);
    }

    #[test]
    fn tiny_shape() {
        let t = tiny_2x4();
        assert_eq!(t.num_cores(), 8);
        assert_eq!(t.num_nodes(), 2);
    }
}
