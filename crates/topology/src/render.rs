//! `lstopo`-style ASCII rendering of a topology.
//!
//! The original ILAN depends on hwloc, whose `lstopo` tree is the standard
//! way to eyeball a machine. [`render_tree`] produces the equivalent for our
//! topology model — used by examples and handy in test failure output.

use crate::ids::NodeId;
use crate::topo::Topology;
use std::fmt::Write as _;

/// Renders the machine as an indented tree:
///
/// ```text
/// Machine (64 cores)
/// ├─ Socket 0
/// │  ├─ NUMANode 0 (8 cores)
/// │  │  ├─ L3 #0 (32 MiB): cores 0-3
/// │  │  └─ L3 #1 (32 MiB): cores 4-7
/// ...
/// ```
pub fn render_tree(topo: &Topology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Machine ({} cores)", topo.num_cores());
    let ccds_per_node = topo.cores_per_node() / topo.cores_per_ccd();
    for socket in 0..topo.num_sockets() {
        let socket_last = socket + 1 == topo.num_sockets();
        let s_branch = if socket_last { "└─" } else { "├─" };
        let s_stem = if socket_last { "   " } else { "│  " };
        let _ = writeln!(out, "{s_branch} Socket {socket}");
        for local in 0..topo.nodes_per_socket() {
            let node = NodeId::new(socket * topo.nodes_per_socket() + local);
            let node_last = local + 1 == topo.nodes_per_socket();
            let n_branch = if node_last { "└─" } else { "├─" };
            let n_stem = if node_last { "   " } else { "│  " };
            let _ = writeln!(
                out,
                "{s_stem}{n_branch} NUMANode {} ({} cores)",
                node.index(),
                topo.cores_per_node()
            );
            for ccd in 0..ccds_per_node {
                let ccd_last = ccd + 1 == ccds_per_node;
                let c_branch = if ccd_last { "└─" } else { "├─" };
                let first = node.index() * topo.cores_per_node() + ccd * topo.cores_per_ccd();
                let last = first + topo.cores_per_ccd() - 1;
                let ccd_id = first / topo.cores_per_ccd();
                let _ = writeln!(
                    out,
                    "{s_stem}{n_stem}{c_branch} L3 #{ccd_id} ({} MiB): cores {first}-{last}",
                    topo.cache().l3 >> 20
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn renders_paper_machine() {
        let s = render_tree(&presets::epyc_9354_2s());
        assert!(s.starts_with("Machine (64 cores)"));
        assert_eq!(s.matches("Socket").count(), 2);
        assert_eq!(s.matches("NUMANode").count(), 8);
        assert_eq!(s.matches("L3 #").count(), 16);
        assert!(s.contains("cores 60-63"));
    }

    #[test]
    fn renders_flat_smp() {
        let s = render_tree(&presets::smp(4));
        assert!(s.contains("Machine (4 cores)"));
        assert_eq!(s.matches("NUMANode").count(), 1);
        assert!(s.contains("cores 0-3"));
    }

    #[test]
    fn tree_glyphs_close_properly() {
        let s = render_tree(&presets::tiny_2x4());
        // The last socket and last node use the corner glyph.
        assert!(s.contains("└─ Socket 1"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.last().unwrap().contains("└─ L3"));
    }
}
