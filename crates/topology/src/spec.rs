//! Compact textual topology specifications.
//!
//! The reproduction harness and examples accept machine descriptions on the
//! command line in the form
//!
//! ```text
//! SOCKETS x NODES_PER_SOCKET x CORES_PER_NODE [:ccd=K] [:same=D] [:cross=D]
//! ```
//!
//! e.g. `2x4x8:ccd=4` is the paper's EPYC 9354 and `1x4x16:ccd=4:same=12`
//! a Rome in NPS4. Whitespace is ignored; options may appear in any order.

use crate::topo::{Topology, TopologyError};

/// Parses a topology spec string (see module docs).
///
/// # Errors
/// Returns a human-readable message for malformed syntax, and forwards
/// [`TopologyError`] conditions (indivisible CCDs, too many nodes, …) from
/// the builder as formatted text.
pub fn parse_spec(spec: &str) -> Result<Topology, String> {
    let cleaned: String = spec.chars().filter(|c| !c.is_whitespace()).collect();
    let mut parts = cleaned.split(':');
    let dims = parts.next().ok_or("empty topology spec")?;

    let mut dim_it = dims.split('x');
    let mut next_dim = |what: &str| -> Result<usize, String> {
        dim_it
            .next()
            .ok_or(format!("missing {what} in `{dims}` (want SxNxC)"))?
            .parse::<usize>()
            .map_err(|_| format!("bad {what} in `{dims}`"))
    };
    let sockets = next_dim("socket count")?;
    let nodes = next_dim("nodes per socket")?;
    let cores = next_dim("cores per node")?;
    if dim_it.next().is_some() {
        return Err(format!("too many dimensions in `{dims}` (want SxNxC)"));
    }

    let mut builder = Topology::builder()
        .sockets(sockets)
        .nodes_per_socket(nodes)
        .cores_per_node(cores);

    for opt in parts {
        let (key, value) = opt
            .split_once('=')
            .ok_or(format!("option `{opt}` must be key=value"))?;
        let parse = |what: &str| -> Result<usize, String> {
            value
                .parse::<usize>()
                .map_err(|_| format!("bad {what} value `{value}`"))
        };
        builder = match key {
            "ccd" => builder.cores_per_ccd(parse("ccd")?),
            "same" => builder.same_socket_distance(parse("same")? as u16),
            "cross" => builder.cross_socket_distance(parse("cross")? as u16),
            other => return Err(format!("unknown topology option `{other}`")),
        };
    }

    builder.build().map_err(|e: TopologyError| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn parses_paper_machine() {
        let t = parse_spec("2x4x8:ccd=4").unwrap();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.cores_per_ccd(), 4);
    }

    #[test]
    fn parses_with_distances_any_order() {
        let t = parse_spec("2x1x4:cross=40:same=15").unwrap();
        assert_eq!(t.distances().get(NodeId::new(0), NodeId::new(1)), 40);
        let t2 = parse_spec(" 1 x 2 x 4 : same = 15 ").unwrap();
        assert_eq!(t2.distances().get(NodeId::new(0), NodeId::new(1)), 15);
    }

    #[test]
    fn defaults_ccd_to_node() {
        let t = parse_spec("1x1x6").unwrap();
        assert_eq!(t.cores_per_ccd(), 6);
        assert_eq!(t.num_ccds(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_spec("").is_err());
        assert!(parse_spec("2x4").is_err());
        assert!(parse_spec("2x4x8x2").is_err());
        assert!(parse_spec("axbxc").is_err());
        assert!(parse_spec("2x4x8:ccd").is_err());
        assert!(parse_spec("2x4x8:bogus=3").is_err());
        assert!(parse_spec("2x4x8:ccd=x").is_err());
    }

    #[test]
    fn forwards_builder_errors() {
        // 6 cores per node with 4-core CCDs is indivisible.
        let err = parse_spec("1x1x6:ccd=4").unwrap_err();
        assert!(err.contains("indivisible"), "{err}");
        // 0 sockets.
        assert!(parse_spec("0x4x8").is_err());
    }
}
