//! The [`Topology`] type: an immutable description of one machine.

use crate::distance::DistanceMatrix;
use crate::ids::{CcdId, CoreId, NodeId, SocketId};
use crate::mask::{CpuSet, NodeMask};
use core::fmt;

/// Cache sizes in bytes. L1/L2 are per core, L3 is shared per CCD.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheSpec {
    /// Per-core L1 data cache size in bytes.
    pub l1d: usize,
    /// Per-core private L2 size in bytes.
    pub l2: usize,
    /// Shared L3 size in bytes (per CCD).
    pub l3: usize,
}

impl Default for CacheSpec {
    fn default() -> Self {
        // Zen 4 values: 32 KiB L1D, 1 MiB L2, 32 MiB L3 per CCD.
        CacheSpec {
            l1d: 32 << 10,
            l2: 1 << 20,
            l3: 32 << 20,
        }
    }
}

/// Errors produced when building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The builder was asked for zero sockets, nodes, CCDs or cores.
    Empty(&'static str),
    /// A structural count did not divide evenly (e.g. cores per node not a
    /// multiple of cores per CCD).
    Indivisible {
        /// Description of the failing constraint.
        what: &'static str,
    },
    /// The distance matrix size does not match the node count.
    DistanceMismatch {
        /// Number of NUMA nodes in the topology.
        nodes: usize,
        /// Size of the supplied distance matrix.
        matrix: usize,
    },
    /// More than [`NodeMask::CAPACITY`] NUMA nodes were requested.
    TooManyNodes(usize),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty(what) => write!(f, "topology must have at least one {what}"),
            TopologyError::Indivisible { what } => write!(f, "indivisible topology: {what}"),
            TopologyError::DistanceMismatch { nodes, matrix } => write!(
                f,
                "distance matrix is {matrix}×{matrix} but topology has {nodes} nodes"
            ),
            TopologyError::TooManyNodes(n) => {
                write!(f, "{n} NUMA nodes exceeds the supported maximum of 64")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable machine description: sockets → NUMA nodes → CCDs → cores.
///
/// All id spaces are dense and nested in order: cores `0..cores_per_node` belong
/// to node 0, and so on. This matches how Linux enumerates cores on the EPYC
/// platforms the paper targets (with NPS4 and `OMP_PLACES=cores`).
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    num_sockets: usize,
    nodes_per_socket: usize,
    cores_per_node: usize,
    cores_per_ccd: usize,
    cache: CacheSpec,
    distances: DistanceMatrix,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Total number of cores.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.num_sockets * self.nodes_per_socket * self.cores_per_node
    }

    /// Total number of NUMA nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_sockets * self.nodes_per_socket
    }

    /// Number of sockets.
    #[inline]
    pub fn num_sockets(&self) -> usize {
        self.num_sockets
    }

    /// Number of CCDs (last-level-cache groups).
    #[inline]
    pub fn num_ccds(&self) -> usize {
        self.num_cores() / self.cores_per_ccd
    }

    /// Cores per NUMA node. This is the paper's default thread-count
    /// granularity `g`.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// NUMA nodes per socket.
    #[inline]
    pub fn nodes_per_socket(&self) -> usize {
        self.nodes_per_socket
    }

    /// Cores sharing one L3 (CCD size).
    #[inline]
    pub fn cores_per_ccd(&self) -> usize {
        self.cores_per_ccd
    }

    /// Cache size specification.
    #[inline]
    pub fn cache(&self) -> CacheSpec {
        self.cache
    }

    /// The inter-node distance matrix.
    #[inline]
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// The NUMA node owning `core`.
    #[inline]
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        debug_assert!(core.index() < self.num_cores());
        NodeId::new(core.index() / self.cores_per_node)
    }

    /// The socket owning `node`.
    #[inline]
    pub fn socket_of_node(&self, node: NodeId) -> SocketId {
        debug_assert!(node.index() < self.num_nodes());
        SocketId::new(node.index() / self.nodes_per_socket)
    }

    /// The socket owning `core`.
    #[inline]
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        self.socket_of_node(self.node_of_core(core))
    }

    /// The CCD (L3 group) owning `core`.
    #[inline]
    pub fn ccd_of_core(&self, core: CoreId) -> CcdId {
        debug_assert!(core.index() < self.num_cores());
        CcdId::new(core.index() / self.cores_per_ccd)
    }

    /// Whether two nodes share a socket.
    #[inline]
    pub fn same_socket(&self, a: NodeId, b: NodeId) -> bool {
        self.socket_of_node(a) == self.socket_of_node(b)
    }

    /// The cores of `node`, in ascending id order.
    pub fn cores_of_node(&self, node: NodeId) -> impl Iterator<Item = CoreId> + '_ {
        let start = node.index() * self.cores_per_node;
        (start..start + self.cores_per_node).map(CoreId::new)
    }

    /// The first (lowest-id) core of `node`; its worker acts as the node's
    /// *primary thread* in hierarchical distribution.
    #[inline]
    pub fn primary_core(&self, node: NodeId) -> CoreId {
        CoreId::new(node.index() * self.cores_per_node)
    }

    /// All nodes as a mask.
    #[inline]
    pub fn all_nodes(&self) -> NodeMask {
        NodeMask::first_n(self.num_nodes())
    }

    /// All cores belonging to the nodes in `mask`.
    pub fn cpuset_of_mask(&self, mask: NodeMask) -> CpuSet {
        mask.iter().flat_map(|n| self.cores_of_node(n)).collect()
    }

    /// Grows a mask of `want_nodes` nodes around `seed`, preferring
    /// topologically-near nodes (same socket before cross-socket, then by
    /// distance). This is the ILAN node-mask fill rule (§3.2 of the paper).
    ///
    /// `want_nodes` is clamped to the machine size.
    pub fn grow_mask(&self, seed: NodeId, want_nodes: usize) -> NodeMask {
        let want = want_nodes.clamp(1, self.num_nodes());
        let mut mask = NodeMask::single(seed);
        for n in self.distances.neighbors_by_distance(seed) {
            if mask.count() >= want {
                break;
            }
            mask.insert(n);
        }
        mask
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} cores: {} socket(s) × {} node(s)/socket × {} core(s)/node, {} cores/CCD, L3 {} MiB",
            self.num_cores(),
            self.num_sockets,
            self.nodes_per_socket,
            self.cores_per_node,
            self.cores_per_ccd,
            self.cache.l3 >> 20,
        )
    }
}

/// Builder for [`Topology`].
///
/// ```
/// use ilan_topology::Topology;
/// let topo = Topology::builder()
///     .sockets(2)
///     .nodes_per_socket(4)
///     .cores_per_node(8)
///     .cores_per_ccd(4)
///     .build()
///     .unwrap();
/// assert_eq!(topo.num_cores(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    sockets: usize,
    nodes_per_socket: usize,
    cores_per_node: usize,
    cores_per_ccd: Option<usize>,
    cache: CacheSpec,
    distances: Option<DistanceMatrix>,
    same_socket_distance: u16,
    cross_socket_distance: u16,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder {
            sockets: 1,
            nodes_per_socket: 1,
            cores_per_node: 1,
            cores_per_ccd: None,
            cache: CacheSpec::default(),
            distances: None,
            same_socket_distance: 12,
            cross_socket_distance: 32,
        }
    }
}

impl TopologyBuilder {
    /// Number of sockets (default 1).
    pub fn sockets(mut self, n: usize) -> Self {
        self.sockets = n;
        self
    }

    /// NUMA nodes per socket (default 1).
    pub fn nodes_per_socket(mut self, n: usize) -> Self {
        self.nodes_per_socket = n;
        self
    }

    /// Cores per NUMA node (default 1).
    pub fn cores_per_node(mut self, n: usize) -> Self {
        self.cores_per_node = n;
        self
    }

    /// Cores sharing one L3. Defaults to the whole node.
    pub fn cores_per_ccd(mut self, n: usize) -> Self {
        self.cores_per_ccd = Some(n);
        self
    }

    /// Cache sizes (defaults to Zen 4 values).
    pub fn cache(mut self, cache: CacheSpec) -> Self {
        self.cache = cache;
        self
    }

    /// Explicit distance matrix; overrides the two-level default.
    pub fn distances(mut self, d: DistanceMatrix) -> Self {
        self.distances = Some(d);
        self
    }

    /// SLIT distance between nodes sharing a socket (default 12).
    pub fn same_socket_distance(mut self, d: u16) -> Self {
        self.same_socket_distance = d;
        self
    }

    /// SLIT distance between nodes on different sockets (default 32).
    pub fn cross_socket_distance(mut self, d: u16) -> Self {
        self.cross_socket_distance = d;
        self
    }

    /// Validates and builds the topology.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.sockets == 0 {
            return Err(TopologyError::Empty("socket"));
        }
        if self.nodes_per_socket == 0 {
            return Err(TopologyError::Empty("NUMA node"));
        }
        if self.cores_per_node == 0 {
            return Err(TopologyError::Empty("core"));
        }
        let nodes = self.sockets * self.nodes_per_socket;
        if nodes > NodeMask::CAPACITY {
            return Err(TopologyError::TooManyNodes(nodes));
        }
        let cores_per_ccd = self.cores_per_ccd.unwrap_or(self.cores_per_node);
        if cores_per_ccd == 0 {
            return Err(TopologyError::Empty("core per CCD"));
        }
        if !self.cores_per_node.is_multiple_of(cores_per_ccd) {
            return Err(TopologyError::Indivisible {
                what: "cores per node must be a multiple of cores per CCD",
            });
        }
        let distances = match self.distances {
            Some(d) => {
                if d.len() != nodes {
                    return Err(TopologyError::DistanceMismatch {
                        nodes,
                        matrix: d.len(),
                    });
                }
                d
            }
            None => {
                if nodes == 1 {
                    DistanceMatrix::uniform(1, crate::distance::LOCAL_DISTANCE)
                } else {
                    DistanceMatrix::two_level(
                        self.sockets,
                        self.nodes_per_socket,
                        self.same_socket_distance,
                        self.cross_socket_distance,
                    )
                }
            }
        };
        Ok(Topology {
            num_sockets: self.sockets,
            nodes_per_socket: self.nodes_per_socket,
            cores_per_node: self.cores_per_node,
            cores_per_ccd,
            cache: self.cache,
            distances,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zen4() -> Topology {
        Topology::builder()
            .sockets(2)
            .nodes_per_socket(4)
            .cores_per_node(8)
            .cores_per_ccd(4)
            .build()
            .unwrap()
    }

    #[test]
    fn counts() {
        let t = zen4();
        assert_eq!(t.num_cores(), 64);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_sockets(), 2);
        assert_eq!(t.num_ccds(), 16);
        assert_eq!(t.cores_per_node(), 8);
    }

    #[test]
    fn core_to_node_mapping() {
        let t = zen4();
        assert_eq!(t.node_of_core(CoreId::new(0)), NodeId::new(0));
        assert_eq!(t.node_of_core(CoreId::new(7)), NodeId::new(0));
        assert_eq!(t.node_of_core(CoreId::new(8)), NodeId::new(1));
        assert_eq!(t.node_of_core(CoreId::new(63)), NodeId::new(7));
    }

    #[test]
    fn node_to_socket_mapping() {
        let t = zen4();
        assert_eq!(t.socket_of_node(NodeId::new(0)), SocketId::new(0));
        assert_eq!(t.socket_of_node(NodeId::new(3)), SocketId::new(0));
        assert_eq!(t.socket_of_node(NodeId::new(4)), SocketId::new(1));
        assert!(t.same_socket(NodeId::new(1), NodeId::new(2)));
        assert!(!t.same_socket(NodeId::new(3), NodeId::new(4)));
    }

    #[test]
    fn ccd_mapping() {
        let t = zen4();
        assert_eq!(t.ccd_of_core(CoreId::new(0)), CcdId::new(0));
        assert_eq!(t.ccd_of_core(CoreId::new(3)), CcdId::new(0));
        assert_eq!(t.ccd_of_core(CoreId::new(4)), CcdId::new(1));
        assert_eq!(t.ccd_of_core(CoreId::new(63)), CcdId::new(15));
    }

    #[test]
    fn primary_cores() {
        let t = zen4();
        assert_eq!(t.primary_core(NodeId::new(0)), CoreId::new(0));
        assert_eq!(t.primary_core(NodeId::new(5)), CoreId::new(40));
    }

    #[test]
    fn cores_of_node_iterates_in_order() {
        let t = zen4();
        let cores: Vec<usize> = t.cores_of_node(NodeId::new(2)).map(|c| c.index()).collect();
        assert_eq!(cores, (16..24).collect::<Vec<_>>());
    }

    #[test]
    fn grow_mask_prefers_same_socket() {
        let t = zen4();
        // Seeded at node 5 (socket 1), 3 nodes: stays on socket 1.
        let m = t.grow_mask(NodeId::new(5), 3);
        assert_eq!(m.count(), 3);
        for n in m.iter() {
            assert_eq!(t.socket_of_node(n), SocketId::new(1));
        }
        assert!(m.contains(NodeId::new(5)));
    }

    #[test]
    fn grow_mask_spills_to_other_socket() {
        let t = zen4();
        let m = t.grow_mask(NodeId::new(0), 6);
        assert_eq!(m.count(), 6);
        // Must include the full first socket plus two remote nodes.
        for n in 0..4 {
            assert!(m.contains(NodeId::new(n)));
        }
    }

    #[test]
    fn grow_mask_clamps() {
        let t = zen4();
        assert_eq!(t.grow_mask(NodeId::new(0), 0).count(), 1);
        assert_eq!(t.grow_mask(NodeId::new(0), 100), t.all_nodes());
    }

    #[test]
    fn cpuset_of_mask_covers_selected_nodes() {
        let t = zen4();
        let mask = NodeMask::single(NodeId::new(1)).with(NodeId::new(3));
        let set = t.cpuset_of_mask(mask);
        assert_eq!(set.count(), 16);
        assert!(set.contains(CoreId::new(8)));
        assert!(set.contains(CoreId::new(24)));
        assert!(!set.contains(CoreId::new(0)));
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            Topology::builder().sockets(0).build(),
            Err(TopologyError::Empty("socket"))
        ));
        assert!(matches!(
            Topology::builder()
                .cores_per_node(6)
                .cores_per_ccd(4)
                .build(),
            Err(TopologyError::Indivisible { .. })
        ));
        assert!(matches!(
            Topology::builder().sockets(65).build(),
            Err(TopologyError::TooManyNodes(65))
        ));
        let wrong = DistanceMatrix::uniform(3, 20);
        assert!(matches!(
            Topology::builder()
                .sockets(2)
                .nodes_per_socket(1)
                .distances(wrong)
                .build(),
            Err(TopologyError::DistanceMismatch {
                nodes: 2,
                matrix: 3
            })
        ));
    }

    #[test]
    fn single_node_topology() {
        let t = Topology::builder().cores_per_node(4).build().unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_cores(), 4);
        assert_eq!(t.all_nodes().count(), 1);
        assert_eq!(t.grow_mask(NodeId::new(0), 5).count(), 1);
    }

    #[test]
    fn summary_mentions_shape() {
        let s = zen4().summary();
        assert!(s.contains("64 cores"));
        assert!(s.contains("2 socket"));
    }

    #[test]
    fn error_display() {
        let e = TopologyError::DistanceMismatch {
            nodes: 4,
            matrix: 2,
        };
        assert!(e.to_string().contains("4 nodes"));
        assert!(TopologyError::Empty("socket")
            .to_string()
            .contains("socket"));
    }
}
