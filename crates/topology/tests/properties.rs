//! Property-based tests for the topology substrate.

use ilan_topology::{presets, CoreId, CpuSet, DistanceMatrix, NodeId, NodeMask, Topology};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Insert/remove roundtrips leave a mask unchanged.
    #[test]
    fn mask_insert_remove_roundtrip(bits in 0u64.., node in 0usize..64) {
        let node = NodeId::new(node);
        let m = NodeMask::from_bits(bits);
        let with = m.with(node);
        prop_assert!(with.contains(node));
        prop_assert_eq!(with.without(node).contains(node), false);
        if !m.contains(node) {
            prop_assert_eq!(with.without(node), m);
            prop_assert_eq!(with.count(), m.count() + 1);
        } else {
            prop_assert_eq!(with, m);
        }
    }

    /// Iteration visits exactly the set bits, in ascending order.
    #[test]
    fn mask_iteration_matches_bits(bits in 0u64..) {
        let m = NodeMask::from_bits(bits);
        let collected: Vec<NodeId> = m.iter().collect();
        prop_assert_eq!(collected.len(), m.count());
        prop_assert!(collected.windows(2).all(|w| w[0] < w[1]));
        for n in &collected {
            prop_assert!(bits & (1 << n.index()) != 0);
        }
        let rebuilt: NodeMask = collected.into_iter().collect();
        prop_assert_eq!(rebuilt, m);
    }

    /// CpuSet behaves like a set for arbitrary operations.
    #[test]
    fn cpuset_set_semantics(ops in proptest::collection::vec((0usize..500, any::<bool>()), 0..100)) {
        let mut set = CpuSet::new();
        let mut model = std::collections::BTreeSet::new();
        for (core, insert) in ops {
            if insert {
                set.insert(CoreId::new(core));
                model.insert(core);
            } else {
                set.remove(CoreId::new(core));
                model.remove(&core);
            }
        }
        prop_assert_eq!(set.count(), model.len());
        let got: Vec<usize> = set.iter().map(|c| c.index()).collect();
        let want: Vec<usize> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Two-level distance matrices are symmetric and respect the socket
    /// structure.
    #[test]
    fn two_level_distances_symmetric(
        sockets in 1usize..5,
        nodes_per in 1usize..5,
        same in 10u16..30,
        cross in 30u16..80,
    ) {
        let m = DistanceMatrix::two_level(sockets, nodes_per, same, cross);
        let n = sockets * nodes_per;
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                prop_assert_eq!(m.get(a, b), m.get(b, a));
                if i == j {
                    prop_assert_eq!(m.get(a, b), 10);
                } else if i / nodes_per == j / nodes_per {
                    prop_assert_eq!(m.get(a, b), same);
                } else {
                    prop_assert_eq!(m.get(a, b), cross);
                }
            }
        }
    }

    /// neighbors_by_distance returns all other nodes, nearest first.
    #[test]
    fn neighbors_sorted_and_complete(from in 0usize..8) {
        let topo = presets::epyc_9354_2s();
        let from = NodeId::new(from);
        let order = topo.distances().neighbors_by_distance(from);
        prop_assert_eq!(order.len(), 7);
        prop_assert!(!order.contains(&from));
        let dists: Vec<u16> = order.iter().map(|&n| topo.distances().get(from, n)).collect();
        prop_assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    /// cpuset_of_mask size is always mask nodes × cores per node, and every
    /// member core maps back into the mask.
    #[test]
    fn cpuset_of_mask_consistent(bits in 1u64..256) {
        let topo = presets::epyc_9354_2s();
        let mask = NodeMask::from_bits(bits);
        let set = topo.cpuset_of_mask(mask);
        prop_assert_eq!(set.count(), mask.count() * topo.cores_per_node());
        for core in set.iter() {
            prop_assert!(mask.contains(topo.node_of_core(core)));
        }
    }

    /// Builder accepts exactly the divisible CCD configurations.
    #[test]
    fn builder_ccd_divisibility(cores in 1usize..33, ccd in 1usize..33) {
        let r = Topology::builder()
            .cores_per_node(cores)
            .cores_per_ccd(ccd)
            .build();
        prop_assert_eq!(r.is_ok(), cores % ccd == 0);
    }
}
