//! The invariant auditor: replays an event log against the scheduler's
//! correctness properties and the run's reported statistics.

use crate::event::{EventKind, DISPATCHER};
use crate::log::EventLog;
use std::collections::HashMap;

/// Expected values from the run's report, cross-checked against the log.
#[derive(Clone, Debug, Default)]
pub struct AuditExpect {
    /// The run's reported migration count (`LoopReport::migrations` /
    /// `LoopOutcome::migrations`). Checked against the number of
    /// inter-node-steal events.
    pub migrations: Option<usize>,
    /// The run's active thread count. Checked against latch-release events
    /// (exactly one per active worker).
    pub latch_releases: Option<usize>,
    /// Per-node report rows, indexed by node id.
    pub per_node: Option<Vec<NodeTally>>,
}

/// One node's reported statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeTally {
    /// Chunks the node's cores executed.
    pub tasks: usize,
    /// Chunks executed on the node that were also *assigned* there
    /// (enqueue home == executing node). `None` skips the check — the
    /// simulator defines locality against data homes, which an event log
    /// of the placement plan cannot see.
    pub local_tasks: Option<usize>,
}

/// Outcome of auditing one invocation's log.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Human-readable invariant violations; empty means the log is clean.
    pub violations: Vec<String>,
    /// Distinct chunks enqueued.
    pub chunks: usize,
    /// Local-pop acquisition events.
    pub local_pops: usize,
    /// Intra-node steal events.
    pub intra_node_steals: usize,
    /// Inter-node steal events (== migrations when clean).
    pub inter_node_steals: usize,
    /// Latch-release events.
    pub latch_releases: usize,
    /// Fault-injection markers recorded by the chaos layer.
    pub faults_injected: usize,
    /// Workers the watchdog claimed in a stage-2 degradation (these release
    /// no latch — the dispatcher counted down for them).
    pub claimed_workers: usize,
}

impl AuditReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chunks={} pops={} intra={} inter={} latches={} violations={}",
            self.chunks,
            self.local_pops,
            self.intra_node_steals,
            self.inter_node_steals,
            self.latch_releases,
            self.violations.len()
        )?;
        if self.faults_injected > 0 || self.claimed_workers > 0 {
            write!(
                f,
                " faults={} claimed={}",
                self.faults_injected, self.claimed_workers
            )?;
        }
        for v in &self.violations {
            write!(f, "\n  ! {v}")?;
        }
        Ok(())
    }
}

/// Replays `log` against the scheduler's invariants:
///
/// 1. per-worker sequence numbers are gap-free from 0 with non-decreasing
///    timestamps (no lost or reordered events within a worker);
/// 2. every chunk is enqueued exactly once, started exactly once, and ended
///    exactly once, on the worker that started it, after an acquisition by
///    that worker;
/// 3. NUMA-strict chunks execute on their assigned home node and never
///    appear in a steal event;
/// 4. the reported migration count equals the number of inter-node-steal
///    events;
/// 5. exactly one latch release per active worker, as that worker's final
///    event — minus workers a stage-2 [`Degraded`](EventKind::Degraded)
///    event claimed (the dispatcher counts those down itself, so they
///    legitimately release nothing);
/// 6. the reported per-node task (and, for the native runtime, locality)
///    counts match the chunk-end events.
pub fn audit(log: &EventLog, expect: &AuditExpect) -> AuditReport {
    let mut report = AuditReport::default();
    let v = &mut report.violations;

    if log.dropped > 0 {
        v.push(format!(
            "{} events were dropped on ring overflow; the log is incomplete",
            log.dropped
        ));
    }

    // --- 1. Per-worker sequence monotonicity -----------------------------
    let mut per_worker: HashMap<u32, Vec<(u64, u64)>> = HashMap::new(); // worker -> (seq, time)
    for e in log.iter() {
        per_worker
            .entry(e.worker)
            .or_default()
            .push((e.seq, e.time_ns));
    }
    for (worker, stream) in &mut per_worker {
        stream.sort_unstable();
        for (i, &(seq, _)) in stream.iter().enumerate() {
            if seq != i as u64 {
                v.push(format!(
                    "worker {worker}: sequence gap — expected seq {i}, found {seq}"
                ));
                break;
            }
        }
        if stream.windows(2).any(|w| w[1].1 < w[0].1) {
            v.push(format!(
                "worker {worker}: timestamps decrease along its sequence"
            ));
        }
    }

    // --- 2–3. Chunk lifecycle --------------------------------------------
    let mut enqueued: HashMap<u32, (u32, bool)> = HashMap::new(); // chunk -> (home, strict)
    let mut started: HashMap<u32, (u32, u32, u64, u64)> = HashMap::new(); // chunk -> (worker, node, seq, time)
    let mut ended: HashMap<u32, (u32, u64)> = HashMap::new(); // chunk -> (worker, time)
                                                              // (worker, chunk) -> seq of latest acquisition.
    let mut acquired: HashMap<(u32, u32), u64> = HashMap::new();
    let mut latch_last: HashMap<u32, u64> = HashMap::new(); // worker -> latch seq
    let mut max_seq: HashMap<u32, u64> = HashMap::new();

    for e in log.iter() {
        let prev = max_seq.entry(e.worker).or_insert(e.seq);
        *prev = (*prev).max(e.seq);
        match e.kind {
            EventKind::ChunkEnqueue {
                chunk,
                home,
                strict,
            } => {
                if e.worker != DISPATCHER {
                    v.push(format!(
                        "chunk {chunk}: enqueued by worker {}, not the dispatcher",
                        e.worker
                    ));
                }
                if enqueued.insert(chunk, (home, strict)).is_some() {
                    v.push(format!("chunk {chunk}: enqueued more than once"));
                }
            }
            EventKind::LocalPop { chunk } => {
                report.local_pops += 1;
                acquired.insert((e.worker, chunk), e.seq);
            }
            EventKind::IntraNodeSteal { chunk, .. } => {
                report.intra_node_steals += 1;
                acquired.insert((e.worker, chunk), e.seq);
                if let Some(&(_, true)) = enqueued.get(&chunk) {
                    // Same-node peer steals of strict chunks are legal; noted
                    // here only so the arm mirrors the inter-node case below.
                }
            }
            EventKind::InterNodeSteal { chunk, .. } => {
                report.inter_node_steals += 1;
                acquired.insert((e.worker, chunk), e.seq);
                if let Some(&(_, true)) = enqueued.get(&chunk) {
                    v.push(format!(
                        "chunk {chunk}: NUMA-strict but crossed nodes in a steal"
                    ));
                }
            }
            EventKind::ChunkStart { chunk } => {
                if started
                    .insert(chunk, (e.worker, e.node, e.seq, e.time_ns))
                    .is_some()
                {
                    v.push(format!("chunk {chunk}: started more than once"));
                }
                match acquired.get(&(e.worker, chunk)) {
                    Some(&aseq) if aseq < e.seq => {}
                    _ => v.push(format!(
                        "chunk {chunk}: started by worker {} without a prior acquisition",
                        e.worker
                    )),
                }
            }
            EventKind::ChunkEnd { chunk } => {
                if ended.insert(chunk, (e.worker, e.time_ns)).is_some() {
                    v.push(format!("chunk {chunk}: ended more than once"));
                }
            }
            EventKind::LatchRelease => {
                report.latch_releases += 1;
                if latch_last.insert(e.worker, e.seq).is_some() {
                    v.push(format!(
                        "worker {}: released the latch more than once",
                        e.worker
                    ));
                }
            }
            EventKind::ExplorationDecision { .. } => {}
            EventKind::FaultInjected { .. } => {
                report.faults_injected += 1;
            }
            EventKind::Degraded { stage, count } => {
                if e.worker != DISPATCHER {
                    v.push(format!(
                        "degradation stage {stage} emitted by worker {}, not the dispatcher",
                        e.worker
                    ));
                }
                if stage == 0 || stage > 2 {
                    v.push(format!("degradation with unknown stage {stage}"));
                }
                if stage == 2 {
                    report.claimed_workers += count as usize;
                }
            }
        }
    }

    report.chunks = enqueued.len();
    for (&chunk, &(home, strict)) in &enqueued {
        match started.get(&chunk) {
            None => v.push(format!("chunk {chunk}: enqueued but never started")),
            Some(&(worker, node, _, stime)) => {
                if strict && node != home {
                    v.push(format!(
                        "chunk {chunk}: NUMA-strict on node {home} but executed on node {node}"
                    ));
                }
                match ended.get(&chunk) {
                    None => v.push(format!("chunk {chunk}: started but never ended")),
                    Some(&(eworker, etime)) => {
                        if eworker != worker {
                            v.push(format!(
                                "chunk {chunk}: started on worker {worker} but ended on {eworker}"
                            ));
                        }
                        if etime < stime {
                            v.push(format!("chunk {chunk}: ends before it starts"));
                        }
                    }
                }
            }
        }
    }
    for &chunk in started.keys() {
        if !enqueued.contains_key(&chunk) {
            v.push(format!("chunk {chunk}: started but never enqueued"));
        }
    }
    for &chunk in ended.keys() {
        if !started.contains_key(&chunk) {
            v.push(format!("chunk {chunk}: ended but never started"));
        }
    }

    // --- 4. Migration accounting -----------------------------------------
    if let Some(migrations) = expect.migrations {
        if migrations != report.inter_node_steals {
            v.push(format!(
                "report says {migrations} migrations but the log holds {} inter-node steals",
                report.inter_node_steals
            ));
        }
    }

    // --- 5. Latch balance -------------------------------------------------
    if let Some(threads) = expect.latch_releases {
        let expected = threads.saturating_sub(report.claimed_workers);
        if report.latch_releases != expected {
            v.push(format!(
                "{} latch releases for {threads} active workers ({} claimed by the watchdog)",
                report.latch_releases, report.claimed_workers
            ));
        }
    }
    for (&worker, &lseq) in &latch_last {
        if max_seq.get(&worker).copied().unwrap_or(0) != lseq {
            v.push(format!(
                "worker {worker}: emitted events after releasing the latch"
            ));
        }
    }

    // --- 6. Per-node report consistency ----------------------------------
    if let Some(per_node) = &expect.per_node {
        let mut tasks = vec![0usize; per_node.len()];
        let mut local = vec![0usize; per_node.len()];
        for (&chunk, &(_, node, ..)) in &started {
            // Ends mirror starts 1:1 when the lifecycle checks above pass;
            // tally by the start's node (== the executing worker's node).
            let n = node as usize;
            if n < tasks.len() {
                tasks[n] += 1;
                if enqueued.get(&chunk).map(|&(h, _)| h) == Some(node) {
                    local[n] += 1;
                }
            } else {
                v.push(format!("chunk {chunk}: executed on unknown node {node}"));
            }
        }
        for (n, tally) in per_node.iter().enumerate() {
            if tally.tasks != tasks[n] {
                v.push(format!(
                    "node {n}: report says {} tasks, log shows {}",
                    tally.tasks, tasks[n]
                ));
            }
            if let Some(lt) = tally.local_tasks {
                if lt != local[n] {
                    v.push(format!(
                        "node {n}: report says {lt} local tasks, log shows {}",
                        local[n]
                    ));
                }
            }
        }
        // The LoopReport relation: tasks == local + incoming migrations.
        if per_node.iter().all(|t| t.local_tasks.is_some()) {
            let t: usize = per_node.iter().map(|t| t.tasks).sum();
            let l: usize = per_node.iter().map(|t| t.local_tasks.unwrap()).sum();
            if t != l + report.inter_node_steals {
                v.push(format!(
                    "task/migration relation broken: {t} tasks != {l} local + {} migrations",
                    report.inter_node_steals
                ));
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(seq: u64, worker: u32, node: u32, time_ns: u64, kind: EventKind) -> Event {
        Event {
            seq,
            worker,
            node,
            time_ns,
            kind,
        }
    }

    /// A minimal clean run: 2 chunks, 2 workers on 2 nodes, one migration.
    fn clean_log() -> EventLog {
        EventLog::from_events(
            vec![
                ev(
                    0,
                    DISPATCHER,
                    0,
                    0,
                    EventKind::ChunkEnqueue {
                        chunk: 0,
                        home: 0,
                        strict: true,
                    },
                ),
                ev(
                    1,
                    DISPATCHER,
                    1,
                    0,
                    EventKind::ChunkEnqueue {
                        chunk: 1,
                        home: 1,
                        strict: false,
                    },
                ),
                ev(0, 0, 0, 10, EventKind::LocalPop { chunk: 0 }),
                ev(1, 0, 0, 12, EventKind::ChunkStart { chunk: 0 }),
                ev(2, 0, 0, 40, EventKind::ChunkEnd { chunk: 0 }),
                ev(3, 0, 0, 41, EventKind::InterNodeSteal { chunk: 1, from: 1 }),
                ev(4, 0, 0, 42, EventKind::ChunkStart { chunk: 1 }),
                ev(5, 0, 0, 50, EventKind::ChunkEnd { chunk: 1 }),
                ev(6, 0, 0, 60, EventKind::LatchRelease),
                ev(0, 1, 1, 61, EventKind::LatchRelease),
            ],
            2,
            2,
            0,
        )
    }

    fn expect() -> AuditExpect {
        AuditExpect {
            migrations: Some(1),
            latch_releases: Some(2),
            per_node: Some(vec![
                NodeTally {
                    tasks: 2,
                    local_tasks: Some(1),
                },
                NodeTally {
                    tasks: 0,
                    local_tasks: Some(0),
                },
            ]),
        }
    }

    #[test]
    fn clean_run_passes() {
        let r = audit(&clean_log(), &expect());
        assert!(r.ok(), "unexpected violations: {r}");
        assert_eq!(r.chunks, 2);
        assert_eq!(r.inter_node_steals, 1);
        assert_eq!(r.latch_releases, 2);
    }

    #[test]
    fn migration_mismatch_is_flagged() {
        let mut e = expect();
        e.migrations = Some(0);
        let r = audit(&clean_log(), &e);
        assert!(r.violations.iter().any(|m| m.contains("migrations")));
    }

    #[test]
    fn strict_chunk_off_home_is_flagged() {
        let log = EventLog::from_events(
            vec![
                ev(
                    0,
                    DISPATCHER,
                    1,
                    0,
                    EventKind::ChunkEnqueue {
                        chunk: 0,
                        home: 1,
                        strict: true,
                    },
                ),
                ev(0, 0, 0, 5, EventKind::InterNodeSteal { chunk: 0, from: 1 }),
                ev(1, 0, 0, 6, EventKind::ChunkStart { chunk: 0 }),
                ev(2, 0, 0, 9, EventKind::ChunkEnd { chunk: 0 }),
            ],
            1,
            2,
            0,
        );
        let r = audit(&log, &AuditExpect::default());
        assert!(r.violations.iter().any(|m| m.contains("NUMA-strict")));
    }

    #[test]
    fn lost_chunk_and_seq_gap_are_flagged() {
        let log = EventLog::from_events(
            vec![
                ev(
                    0,
                    DISPATCHER,
                    0,
                    0,
                    EventKind::ChunkEnqueue {
                        chunk: 0,
                        home: 0,
                        strict: false,
                    },
                ),
                // seq jumps 0 -> 2: a gap.
                ev(2, 0, 0, 10, EventKind::LatchRelease),
            ],
            1,
            1,
            0,
        );
        let r = audit(&log, &AuditExpect::default());
        assert!(r.violations.iter().any(|m| m.contains("never started")));
        assert!(r.violations.iter().any(|m| m.contains("sequence gap")));
    }

    #[test]
    fn double_execution_is_flagged() {
        let log = EventLog::from_events(
            vec![
                ev(
                    0,
                    DISPATCHER,
                    0,
                    0,
                    EventKind::ChunkEnqueue {
                        chunk: 0,
                        home: 0,
                        strict: false,
                    },
                ),
                ev(0, 0, 0, 1, EventKind::LocalPop { chunk: 0 }),
                ev(1, 0, 0, 2, EventKind::ChunkStart { chunk: 0 }),
                ev(2, 0, 0, 3, EventKind::ChunkEnd { chunk: 0 }),
                ev(3, 0, 0, 4, EventKind::ChunkStart { chunk: 0 }),
                ev(4, 0, 0, 5, EventKind::ChunkEnd { chunk: 0 }),
                ev(5, 0, 0, 6, EventKind::LatchRelease),
            ],
            1,
            1,
            0,
        );
        let r = audit(&log, &AuditExpect::default());
        assert!(r
            .violations
            .iter()
            .any(|m| m.contains("started more than once")));
        assert!(r
            .violations
            .iter()
            .any(|m| m.contains("ended more than once")));
    }

    #[test]
    fn degraded_drain_balances_the_latch() {
        use crate::event::FaultTag;
        // Worker 1 is permanently stalled; the watchdog claims it (stage 2)
        // and the dispatcher drains its chunk, attributed to the chunk's
        // home node. Worker 1 releases no latch — the Degraded count covers
        // the gap, so the audit must stay clean.
        let log = EventLog::from_events(
            vec![
                ev(
                    0,
                    DISPATCHER,
                    0,
                    0,
                    EventKind::ChunkEnqueue {
                        chunk: 0,
                        home: 0,
                        strict: false,
                    },
                ),
                ev(
                    1,
                    DISPATCHER,
                    1,
                    0,
                    EventKind::ChunkEnqueue {
                        chunk: 1,
                        home: 1,
                        strict: true,
                    },
                ),
                ev(
                    2,
                    DISPATCHER,
                    1,
                    1,
                    EventKind::FaultInjected {
                        fault: FaultTag::WorkerStall,
                        target: 1,
                    },
                ),
                ev(0, 0, 0, 10, EventKind::LocalPop { chunk: 0 }),
                ev(1, 0, 0, 12, EventKind::ChunkStart { chunk: 0 }),
                ev(2, 0, 0, 40, EventKind::ChunkEnd { chunk: 0 }),
                ev(3, 0, 0, 45, EventKind::LatchRelease),
                ev(
                    3,
                    DISPATCHER,
                    0,
                    50,
                    EventKind::Degraded { stage: 2, count: 1 },
                ),
                ev(4, DISPATCHER, 1, 55, EventKind::LocalPop { chunk: 1 }),
                ev(5, DISPATCHER, 1, 56, EventKind::ChunkStart { chunk: 1 }),
                ev(6, DISPATCHER, 1, 90, EventKind::ChunkEnd { chunk: 1 }),
            ],
            2,
            2,
            0,
        );
        let e = AuditExpect {
            migrations: Some(0),
            latch_releases: Some(2),
            per_node: Some(vec![
                NodeTally {
                    tasks: 1,
                    local_tasks: Some(1),
                },
                NodeTally {
                    tasks: 1,
                    local_tasks: Some(1),
                },
            ]),
        };
        let r = audit(&log, &e);
        assert!(r.ok(), "unexpected violations: {r}");
        assert_eq!(r.claimed_workers, 1);
        assert_eq!(r.faults_injected, 1);
        assert_eq!(r.latch_releases, 1);
    }

    #[test]
    fn degraded_from_a_worker_is_flagged() {
        let log = EventLog::from_events(
            vec![ev(0, 0, 0, 1, EventKind::Degraded { stage: 1, count: 0 })],
            1,
            1,
            0,
        );
        let r = audit(&log, &AuditExpect::default());
        assert!(r
            .violations
            .iter()
            .any(|m| m.contains("not the dispatcher")));
    }

    #[test]
    fn missing_latch_without_claim_is_still_flagged() {
        // A stage-1 degradation does not excuse a missing latch release.
        let log = EventLog::from_events(
            vec![
                ev(
                    0,
                    DISPATCHER,
                    0,
                    0,
                    EventKind::Degraded { stage: 1, count: 0 },
                ),
                ev(0, 0, 0, 5, EventKind::LatchRelease),
            ],
            2,
            1,
            0,
        );
        let e = AuditExpect {
            latch_releases: Some(2),
            ..Default::default()
        };
        let r = audit(&log, &e);
        assert!(r.violations.iter().any(|m| m.contains("latch releases")));
    }

    #[test]
    fn events_after_latch_are_flagged() {
        let log = EventLog::from_events(
            vec![
                ev(0, 0, 0, 1, EventKind::LatchRelease),
                ev(1, 0, 0, 2, EventKind::LocalPop { chunk: 0 }),
            ],
            1,
            1,
            0,
        );
        let r = audit(&log, &AuditExpect::default());
        assert!(r.violations.iter().any(|m| m.contains("after releasing")));
    }
}
