//! The event vocabulary shared by the native runtime and the simulator.

/// Pseudo-worker id for events emitted by the dispatching thread (the thread
/// that encounters the taskloop and enqueues its chunks) rather than by a
/// pool worker.
pub const DISPATCHER: u32 = u32::MAX;

/// Which fault a [`FaultInjected`](EventKind::FaultInjected) event records.
/// Mirrors the fault families of the `ilan-faults` plan without depending on
/// that crate — the trace vocabulary stays dependency-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTag {
    /// A worker was stalled (delayed or permanently parked) before it could
    /// participate in the invocation.
    WorkerStall,
    /// A node's chunk executions run under a slowdown multiplier.
    SlowNode,
    /// A targeted wakeup post was deliberately not delivered.
    DroppedWakeup,
    /// A remote steal sweep was refused by the injected policy.
    StealRefusal,
}

impl FaultTag {
    /// Stable lowercase label for exporters and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            FaultTag::WorkerStall => "worker-stall",
            FaultTag::SlowNode => "slow-node",
            FaultTag::DroppedWakeup => "dropped-wakeup",
            FaultTag::StealRefusal => "steal-refusal",
        }
    }
}

/// What happened. Acquisition events encode the *locality outcome* of taking
/// a chunk, not the queue it physically came through: any acquisition (or
/// batch transfer, in the simulator) that moves a chunk across NUMA nodes is
/// an [`InterNodeSteal`](EventKind::InterNodeSteal), so the number of
/// inter-node-steal events in a log equals the run's reported `migrations`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The dispatcher placed chunk `chunk` on the queue of node `home`.
    /// `strict` marks NUMA-strict chunks, which must never leave `home`.
    ChunkEnqueue {
        /// Chunk index within the invocation.
        chunk: u32,
        /// Node the chunk was assigned to.
        home: u32,
        /// Whether the chunk is NUMA-strict.
        strict: bool,
    },
    /// A worker took a chunk that lives on its own node from a local queue.
    LocalPop {
        /// Chunk index.
        chunk: u32,
    },
    /// A worker took a same-node chunk from a same-node peer's deque.
    IntraNodeSteal {
        /// Chunk index.
        chunk: u32,
        /// Worker id of the deque's owner.
        victim: u32,
    },
    /// A chunk crossed NUMA nodes: acquired (native) or batch-transferred
    /// (simulator) by a worker on a node other than the one it sat on.
    InterNodeSteal {
        /// Chunk index.
        chunk: u32,
        /// Node the chunk migrated away from.
        from: u32,
    },
    /// A worker began executing chunk `chunk`'s body.
    ChunkStart {
        /// Chunk index.
        chunk: u32,
    },
    /// A worker finished executing chunk `chunk`'s body.
    ChunkEnd {
        /// Chunk index.
        chunk: u32,
    },
    /// A worker left the taskloop and released the exit barrier. Exactly one
    /// per active worker per invocation.
    LatchRelease,
    /// A scheduling policy chose a configuration for a taskloop site
    /// (Algorithm 1's exploration / settled decision).
    ExplorationDecision {
        /// The taskloop site the decision is for.
        site: u64,
        /// Thread count of the decision (0 = not a hierarchical decision).
        threads: u32,
    },
    /// The chaos layer injected a fault into this invocation. Emitted on the
    /// dispatcher's ring at dispatch time (stalls, dropped wakeups, slow
    /// nodes) or by the affected worker (steal refusals).
    FaultInjected {
        /// Which fault family fired.
        fault: FaultTag,
        /// The worker (stall, wakeup, refusal) or node (slow-node) the
        /// fault targets.
        target: u32,
    },
    /// The dispatcher's watchdog escalated a stalled invocation. Stage 1
    /// re-broadcasts wakeups to every active worker; stage 2 claims `count`
    /// never-started workers and drains their chunks on the dispatcher so
    /// the taskloop still completes (degraded but correct).
    Degraded {
        /// Escalation stage (1 = broadcast re-post, 2 = claim-and-drain).
        stage: u32,
        /// Workers affected (stage 2: slots the dispatcher claimed).
        count: u32,
    },
}

impl EventKind {
    /// The chunk index this event refers to, if any.
    pub fn chunk(&self) -> Option<u32> {
        match *self {
            EventKind::ChunkEnqueue { chunk, .. }
            | EventKind::LocalPop { chunk }
            | EventKind::IntraNodeSteal { chunk, .. }
            | EventKind::InterNodeSteal { chunk, .. }
            | EventKind::ChunkStart { chunk }
            | EventKind::ChunkEnd { chunk } => Some(chunk),
            EventKind::LatchRelease
            | EventKind::ExplorationDecision { .. }
            | EventKind::FaultInjected { .. }
            | EventKind::Degraded { .. } => None,
        }
    }

    /// Whether this is an acquisition event (local pop or either steal).
    pub fn is_acquisition(&self) -> bool {
        matches!(
            self,
            EventKind::LocalPop { .. }
                | EventKind::IntraNodeSteal { .. }
                | EventKind::InterNodeSteal { .. }
        )
    }
}

/// One scheduler event, stamped with its emitting worker's sequence number.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Per-worker sequence number, starting at 0; strictly increasing within
    /// one worker's stream of one invocation.
    pub seq: u64,
    /// Emitting worker id (== core index), or [`DISPATCHER`].
    pub worker: u32,
    /// NUMA node of the emitting worker; for enqueue events, the chunk's
    /// assigned home node.
    pub node: u32,
    /// Event time in nanoseconds from the invocation's dispatch.
    pub time_ns: u64,
    /// What happened.
    pub kind: EventKind,
}
