//! **ilan-trace** — scheduler event tracing for the ILAN reproduction.
//!
//! The paper's claims hinge on *where* chunks actually ran: strict chunks
//! never leaving their home node, the stealable tail draining asymmetric
//! nodes, migrations matching the inter-node steals that caused them. The
//! aggregate counters in `LoopReport`/`LoopOutcome` cannot audit a single
//! steal, so this crate records the scheduler's actions as a stream of
//! sequence-stamped [`Event`]s and turns that stream into the single source
//! of truth both humans and tests consume.
//!
//! Three layers:
//!
//! * **Capture** — [`EventRing`], a bounded lock-free single-producer ring
//!   (one per native worker, grouped in a [`TraceSet`]), and [`Recorder`],
//!   its sequential counterpart for the deterministic simulator.
//! * **Log** — [`EventLog`], the merged, time-ordered stream of one
//!   invocation, with exporters: `chrome://tracing` JSON
//!   ([`EventLog::chrome_trace_json`]) and a per-node steal matrix
//!   ([`EventLog::steal_matrix`]).
//! * **Audit** — [`audit`], which replays a log against the scheduler's
//!   invariants (every chunk exactly once, strict confinement, migration
//!   accounting, latch balance, per-worker sequence monotonicity) and
//!   cross-checks the run's reported per-node statistics.

#![warn(missing_docs)]

mod audit;
mod event;
mod log;
mod ring;

pub use audit::{audit, AuditExpect, AuditReport, NodeTally};
pub use event::{Event, EventKind, FaultTag, DISPATCHER};
pub use log::EventLog;
pub use ring::{EventRing, Recorder, TraceSet};
