//! The merged, time-ordered event log of one invocation, with exporters.

use crate::event::{Event, EventKind, DISPATCHER};
use std::fmt::Write as _;

/// A merged event stream, ordered by `(time_ns, worker, seq)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventLog {
    events: Vec<Event>,
    /// Worker count of the emitting pool (informational).
    pub num_workers: usize,
    /// NUMA node count of the emitting machine.
    pub num_nodes: usize,
    /// Events lost to ring overflow across all workers.
    pub dropped: usize,
}

impl EventLog {
    /// Builds a log from raw events, sorting them into canonical order.
    pub fn from_events(
        mut events: Vec<Event>,
        num_workers: usize,
        num_nodes: usize,
        dropped: usize,
    ) -> Self {
        events.sort_by_key(|e| (e.time_ns, e.worker, e.seq));
        EventLog {
            events,
            num_workers,
            num_nodes,
            dropped,
        }
    }

    /// The events in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Total event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends another log (e.g. a later invocation of the same tenant),
    /// re-sorting into canonical order. Sequence numbers restart per
    /// invocation, so merged logs are for export — audit invocations
    /// individually.
    pub fn merge(&mut self, other: &EventLog) {
        self.events.extend(other.events.iter().copied());
        self.events.sort_by_key(|e| (e.time_ns, e.worker, e.seq));
        self.num_workers = self.num_workers.max(other.num_workers);
        self.num_nodes = self.num_nodes.max(other.num_nodes);
        self.dropped += other.dropped;
    }

    /// Appends a single pre-stamped event (the caller maintains `seq`).
    pub fn push_event(&mut self, event: Event) {
        let idx = self.events.partition_point(|e| {
            (e.time_ns, e.worker, e.seq) <= (event.time_ns, event.worker, event.seq)
        });
        self.events.insert(idx, event);
    }

    /// Number of inter-node-steal events (== migrations, by construction).
    pub fn inter_node_steals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::InterNodeSteal { .. }))
            .count()
    }

    /// Number of intra-node (peer-deque) steal events.
    pub fn intra_node_steals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::IntraNodeSteal { .. }))
            .count()
    }

    /// Number of local-pop acquisition events.
    pub fn local_pops(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LocalPop { .. }))
            .count()
    }

    /// The chunk→node assignment recorded at enqueue time:
    /// `(chunk, home, strict)` sorted by chunk index.
    pub fn chunk_assignment(&self) -> Vec<(u32, u32, bool)> {
        let mut v: Vec<(u32, u32, bool)> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::ChunkEnqueue {
                    chunk,
                    home,
                    strict,
                } => Some((chunk, home, strict)),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// The node each chunk *executed* on: `(chunk, node)` from start events,
    /// sorted by chunk index.
    pub fn exec_nodes(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::ChunkStart { chunk } => Some((chunk, e.node)),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// The per-node steal matrix: `matrix[from][to]` counts chunks that
    /// migrated from node `from` to node `to` (one increment per
    /// inter-node-steal event). Events referencing nodes outside
    /// `num_nodes` are ignored.
    pub fn steal_matrix(&self) -> Vec<Vec<u64>> {
        let n = self.num_nodes;
        let mut m = vec![vec![0u64; n]; n];
        for e in &self.events {
            if let EventKind::InterNodeSteal { from, .. } = e.kind {
                let (f, t) = (from as usize, e.node as usize);
                if f < n && t < n {
                    m[f][t] += 1;
                }
            }
        }
        m
    }

    /// Renders the steal matrix as a text table (`from \ to`).
    pub fn render_steal_matrix(&self) -> String {
        let m = self.steal_matrix();
        let mut out = String::from("steal matrix (rows: from node, cols: to node)\n");
        let _ = write!(out, "{:>8}", r"from\to");
        for to in 0..self.num_nodes {
            let _ = write!(out, "{to:>8}");
        }
        out.push('\n');
        for (from, row) in m.iter().enumerate() {
            let _ = write!(out, "{from:>8}");
            for &count in row {
                let _ = write!(out, "{count:>8}");
            }
            out.push('\n');
        }
        out
    }

    /// Exports the log as `chrome://tracing` JSON (the Trace Event Format):
    /// chunk executions become complete (`"X"`) events, everything else
    /// instant (`"i"`) events; `pid` is the NUMA node, `tid` the worker.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };

        // Metadata: name processes after nodes and threads after workers.
        for node in 0..self.num_nodes {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
                 \"args\":{{\"name\":\"node {node}\"}}}}"
            );
        }

        // Pair starts with ends per (worker, chunk) for "X" events.
        let mut open: Vec<(u32, u32, u64)> = Vec::new(); // (worker, chunk, start)
        for e in &self.events {
            let tid = tid_of(e.worker);
            let ts = us(e.time_ns);
            match e.kind {
                EventKind::ChunkStart { chunk } => {
                    open.push((e.worker, chunk, e.time_ns));
                }
                EventKind::ChunkEnd { chunk } => {
                    let found = open
                        .iter()
                        .rposition(|&(w, c, _)| w == e.worker && c == chunk);
                    if let Some(i) = found {
                        let (_, _, start) = open.swap_remove(i);
                        sep(&mut out);
                        let _ = write!(
                            out,
                            "{{\"name\":\"chunk {chunk}\",\"cat\":\"exec\",\"ph\":\"X\",\
                             \"pid\":{},\"tid\":{tid},\"ts\":{},\"dur\":{},\
                             \"args\":{{\"chunk\":{chunk}}}}}",
                            e.node,
                            us(start),
                            us(e.time_ns.saturating_sub(start)),
                        );
                    }
                }
                EventKind::ChunkEnqueue {
                    chunk,
                    home,
                    strict,
                } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"enqueue\",\"cat\":\"dispatch\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{home},\"tid\":{tid},\"ts\":{ts},\
                         \"args\":{{\"chunk\":{chunk},\"home\":{home},\"strict\":{strict}}}}}"
                    );
                }
                EventKind::LocalPop { chunk } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"local pop\",\"cat\":\"acquire\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":{tid},\"ts\":{ts},\"args\":{{\"chunk\":{chunk}}}}}",
                        e.node
                    );
                }
                EventKind::IntraNodeSteal { chunk, victim } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"intra-node steal\",\"cat\":\"acquire\",\"ph\":\"i\",\
                         \"s\":\"t\",\"pid\":{},\"tid\":{tid},\"ts\":{ts},\
                         \"args\":{{\"chunk\":{chunk},\"victim\":{victim}}}}}",
                        e.node
                    );
                }
                EventKind::InterNodeSteal { chunk, from } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"inter-node steal\",\"cat\":\"acquire\",\"ph\":\"i\",\
                         \"s\":\"p\",\"pid\":{},\"tid\":{tid},\"ts\":{ts},\
                         \"args\":{{\"chunk\":{chunk},\"from\":{from}}}}}",
                        e.node
                    );
                }
                EventKind::LatchRelease => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"latch release\",\"cat\":\"sync\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{},\"tid\":{tid},\"ts\":{ts},\"args\":{{}}}}",
                        e.node
                    );
                }
                EventKind::ExplorationDecision { site, threads } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"exploration decision\",\"cat\":\"policy\",\"ph\":\"i\",\
                         \"s\":\"g\",\"pid\":{},\"tid\":{tid},\"ts\":{ts},\
                         \"args\":{{\"site\":{site},\"threads\":{threads}}}}}",
                        e.node
                    );
                }
                EventKind::FaultInjected { fault, target } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"fault: {}\",\"cat\":\"chaos\",\"ph\":\"i\",\"s\":\"g\",\
                         \"pid\":{},\"tid\":{tid},\"ts\":{ts},\
                         \"args\":{{\"fault\":\"{}\",\"target\":{target}}}}}",
                        fault.label(),
                        e.node,
                        fault.label()
                    );
                }
                EventKind::Degraded { stage, count } => {
                    sep(&mut out);
                    let _ = write!(
                        out,
                        "{{\"name\":\"degraded (stage {stage})\",\"cat\":\"chaos\",\"ph\":\"i\",\
                         \"s\":\"g\",\"pid\":{},\"tid\":{tid},\"ts\":{ts},\
                         \"args\":{{\"stage\":{stage},\"claimed\":{count}}}}}",
                        e.node
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Chrome `tid` for a worker id: the dispatcher renders as thread -1.
fn tid_of(worker: u32) -> i64 {
    if worker == DISPATCHER {
        -1
    } else {
        worker as i64
    }
}

/// Nanoseconds → microsecond timestamp string (Chrome's `ts` unit), with
/// sub-microsecond precision preserved.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, worker: u32, node: u32, time_ns: u64, kind: EventKind) -> Event {
        Event {
            seq,
            worker,
            node,
            time_ns,
            kind,
        }
    }

    fn sample_log() -> EventLog {
        EventLog::from_events(
            vec![
                ev(
                    0,
                    DISPATCHER,
                    0,
                    0,
                    EventKind::ChunkEnqueue {
                        chunk: 0,
                        home: 0,
                        strict: true,
                    },
                ),
                ev(
                    1,
                    DISPATCHER,
                    1,
                    0,
                    EventKind::ChunkEnqueue {
                        chunk: 1,
                        home: 1,
                        strict: false,
                    },
                ),
                ev(0, 0, 0, 10, EventKind::LocalPop { chunk: 0 }),
                ev(1, 0, 0, 12, EventKind::ChunkStart { chunk: 0 }),
                ev(2, 0, 0, 40, EventKind::ChunkEnd { chunk: 0 }),
                ev(0, 1, 0, 15, EventKind::InterNodeSteal { chunk: 1, from: 1 }),
                ev(1, 1, 0, 17, EventKind::ChunkStart { chunk: 1 }),
                ev(2, 1, 0, 50, EventKind::ChunkEnd { chunk: 1 }),
                ev(3, 0, 0, 60, EventKind::LatchRelease),
                ev(3, 1, 0, 61, EventKind::LatchRelease),
            ],
            2,
            2,
            0,
        )
    }

    #[test]
    fn canonical_order_and_accessors() {
        let log = sample_log();
        assert_eq!(log.len(), 10);
        assert!(log
            .iter()
            .zip(log.iter().skip(1))
            .all(|(a, b)| { (a.time_ns, a.worker, a.seq) <= (b.time_ns, b.worker, b.seq) }));
        assert_eq!(log.inter_node_steals(), 1);
        assert_eq!(log.local_pops(), 1);
        assert_eq!(log.chunk_assignment(), vec![(0, 0, true), (1, 1, false)]);
        assert_eq!(log.exec_nodes(), vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn steal_matrix_counts_migrations() {
        let log = sample_log();
        let m = log.steal_matrix();
        assert_eq!(m[1][0], 1);
        assert_eq!(m[0][1], 0);
        let rendered = log.render_steal_matrix();
        assert!(rendered.contains("from"));
        assert_eq!(rendered.lines().count(), 2 + log.num_nodes);
    }

    #[test]
    fn chrome_json_has_complete_and_instant_events() {
        let json = sample_log().chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("inter-node steal"));
        assert!(json.contains("\"name\":\"chunk 0\""));
        // Start 12ns → 0.012us.
        assert!(json.contains("\"ts\":0.012"));
    }

    #[test]
    fn chrome_json_renders_chaos_events() {
        use crate::event::FaultTag;
        let log = EventLog::from_events(
            vec![
                ev(
                    0,
                    DISPATCHER,
                    0,
                    0,
                    EventKind::FaultInjected {
                        fault: FaultTag::DroppedWakeup,
                        target: 3,
                    },
                ),
                ev(
                    1,
                    DISPATCHER,
                    0,
                    9,
                    EventKind::Degraded { stage: 2, count: 1 },
                ),
            ],
            2,
            1,
            0,
        );
        let json = log.chrome_trace_json();
        assert!(json.contains("fault: dropped-wakeup"));
        assert!(json.contains("\"target\":3"));
        assert!(json.contains("degraded (stage 2)"));
        assert!(json.contains("\"claimed\":1"));
    }

    #[test]
    fn merge_combines_and_reorders() {
        let mut a = sample_log();
        let b = sample_log();
        a.merge(&b);
        assert_eq!(a.len(), 20);
        assert_eq!(a.inter_node_steals(), 2);
    }
}
