//! Event capture: lock-free per-worker rings and the simulator's recorder.

use crate::event::{Event, EventKind, DISPATCHER};
use crate::log::EventLog;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A bounded single-producer event ring.
///
/// Exactly one thread (the owning worker) may call [`push`](Self::push);
/// any thread may read committed events concurrently. A slot is written
/// once and published with a release store of the commit counter, so
/// readers acquiring that counter observe fully-initialised events. When
/// the ring is full, further events are counted in
/// [`dropped`](Self::dropped) and discarded (drop-newest), never blocking
/// the worker.
pub struct EventRing {
    slots: Box<[UnsafeCell<MaybeUninit<Event>>]>,
    /// Number of committed (readable) slots; monotone, only the producer
    /// stores it.
    committed: AtomicUsize,
    dropped: AtomicUsize,
    /// The producer's per-worker sequence counter (advances even for
    /// dropped events, so a drop is visible as a gap-free prefix ending
    /// early, with the count in `dropped`).
    next_seq: AtomicU64,
}

// SAFETY: slots below `committed` are written exactly once before the
// release store that publishes them, and never rewritten; `Event` is Copy.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    /// A ring holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            slots: (0..capacity.max(1))
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            committed: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Appends one event, stamping it with the next sequence number. Must
    /// only be called by the ring's owning worker (single producer).
    pub fn push(&self, worker: u32, node: u32, time_ns: u64, kind: EventKind) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let n = self.committed.load(Ordering::Relaxed);
        if n == self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ev = Event {
            seq,
            worker,
            node,
            time_ns,
            kind,
        };
        // SAFETY: single producer; slot `n` is unpublished until the store
        // below, and `n < len` was just checked.
        unsafe { (*self.slots[n].get()).write(ev) };
        self.committed.store(n + 1, Ordering::Release);
    }

    /// Number of committed events.
    pub fn len(&self) -> usize {
        self.committed.load(Ordering::Acquire)
    }

    /// Whether no event has been committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Acquire)
    }

    /// Slots the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Clears the ring for reuse by a later invocation. Requires `&mut`:
    /// the caller proves no producer or reader is concurrently active, so
    /// stale slot contents can simply be forgotten behind `committed = 0`.
    pub fn reset(&mut self) {
        self.committed.store(0, Ordering::Release);
        self.dropped.store(0, Ordering::Relaxed);
        self.next_seq.store(0, Ordering::Relaxed);
    }

    /// Copies out all committed events, in emission order.
    pub fn snapshot(&self) -> Vec<Event> {
        let n = self.committed.load(Ordering::Acquire);
        (0..n)
            // SAFETY: slots below the acquired commit counter are fully
            // initialised (release/acquire pairing on `committed`).
            .map(|i| unsafe { (*self.slots[i].get()).assume_init() })
            .collect()
    }
}

/// The per-worker rings of one traced native invocation: one ring per pool
/// worker plus one for the dispatching thread.
pub struct TraceSet {
    rings: Vec<EventRing>,
    dispatcher: EventRing,
}

impl TraceSet {
    /// Rings for `num_workers` workers, each holding `worker_capacity`
    /// events; the dispatcher ring holds `dispatcher_capacity`.
    pub fn new(num_workers: usize, worker_capacity: usize, dispatcher_capacity: usize) -> Self {
        TraceSet {
            rings: (0..num_workers)
                .map(|_| EventRing::with_capacity(worker_capacity))
                .collect(),
            dispatcher: EventRing::with_capacity(dispatcher_capacity),
        }
    }

    /// The ring owned by worker `worker`.
    pub fn ring(&self, worker: usize) -> &EventRing {
        &self.rings[worker]
    }

    /// The dispatching thread's ring.
    pub fn dispatcher(&self) -> &EventRing {
        &self.dispatcher
    }

    /// Number of worker rings.
    pub fn num_rings(&self) -> usize {
        self.rings.len()
    }

    /// Capacity of each worker ring.
    pub fn worker_capacity(&self) -> usize {
        self.rings.first().map_or(0, EventRing::capacity)
    }

    /// Capacity of the dispatcher ring.
    pub fn dispatcher_capacity(&self) -> usize {
        self.dispatcher.capacity()
    }

    /// Clears every ring for reuse by a later traced invocation, avoiding
    /// the per-invocation ring allocations the runtime used to pay.
    /// Requires `&mut`: no worker may be emitting concurrently.
    pub fn reset(&mut self) {
        for r in &mut self.rings {
            r.reset();
        }
        self.dispatcher.reset();
    }

    /// Merges every ring's committed events into a time-ordered log.
    pub fn collect(&self, num_nodes: usize) -> EventLog {
        let mut events = self.dispatcher.snapshot();
        let mut dropped = self.dispatcher.dropped();
        for r in &self.rings {
            events.extend(r.snapshot());
            dropped += r.dropped();
        }
        EventLog::from_events(events, self.rings.len(), num_nodes, dropped)
    }
}

/// Sequential event capture for the single-threaded simulator: same event
/// stream as [`TraceSet`], without the lock-free machinery. Sequence
/// numbers are maintained per worker.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Vec<Event>,
    /// Per-worker next sequence number, grown on demand.
    seqs: Vec<u64>,
    dispatcher_seq: u64,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Appends one event, stamping the emitting worker's next sequence
    /// number.
    pub fn push(&mut self, worker: u32, node: u32, time_ns: u64, kind: EventKind) {
        let seq = if worker == DISPATCHER {
            let s = self.dispatcher_seq;
            self.dispatcher_seq += 1;
            s
        } else {
            let w = worker as usize;
            if w >= self.seqs.len() {
                self.seqs.resize(w + 1, 0);
            }
            let s = self.seqs[w];
            self.seqs[w] += 1;
            s
        };
        self.events.push(Event {
            seq,
            worker,
            node,
            time_ns,
            kind,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finalizes into a time-ordered log.
    pub fn into_log(self, num_workers: usize, num_nodes: usize) -> EventLog {
        EventLog::from_events(self.events, num_workers, num_nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_preserves_order_and_counts_drops() {
        let ring = EventRing::with_capacity(4);
        for i in 0..6u32 {
            ring.push(0, 0, i as u64 * 10, EventKind::ChunkStart { chunk: i });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let events = ring.snapshot();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.kind, EventKind::ChunkStart { chunk: i as u32 });
        }
    }

    #[test]
    fn ring_reset_restarts_sequences() {
        let mut ring = EventRing::with_capacity(2);
        for i in 0..5u32 {
            ring.push(0, 0, 0, EventKind::ChunkStart { chunk: i });
        }
        assert_eq!(ring.dropped(), 3);
        ring.reset();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        ring.push(0, 0, 0, EventKind::ChunkStart { chunk: 9 });
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 0, "sequence numbers restart after reset");
        assert_eq!(ring.capacity(), 2);
    }

    #[test]
    fn trace_set_reset_clears_all_rings() {
        let mut set = TraceSet::new(2, 8, 4);
        set.ring(0).push(0, 0, 0, EventKind::LatchRelease);
        set.ring(1).push(1, 0, 0, EventKind::LatchRelease);
        set.dispatcher()
            .push(DISPATCHER, 0, 0, EventKind::LatchRelease);
        assert_eq!(set.collect(1).len(), 3);
        set.reset();
        assert_eq!(set.collect(1).len(), 0);
        assert_eq!(set.num_rings(), 2);
        assert_eq!(set.worker_capacity(), 8);
        assert_eq!(set.dispatcher_capacity(), 4);
    }

    #[test]
    fn ring_is_readable_while_producing() {
        // A consumer snapshotting concurrently never sees a torn event:
        // every observed event matches what the producer wrote at that slot.
        let ring = std::sync::Arc::new(EventRing::with_capacity(10_000));
        let producer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..10_000u32 {
                    ring.push(7, 1, i as u64, EventKind::ChunkEnd { chunk: i });
                }
            })
        };
        for _ in 0..50 {
            for (i, e) in ring.snapshot().iter().enumerate() {
                assert_eq!(e.seq, i as u64);
                assert_eq!(e.time_ns, i as u64);
                assert_eq!(e.kind, EventKind::ChunkEnd { chunk: i as u32 });
            }
        }
        producer.join().unwrap();
        assert_eq!(ring.len(), 10_000);
    }

    #[test]
    fn recorder_tracks_per_worker_sequences() {
        let mut r = Recorder::new();
        r.push(1, 0, 5, EventKind::LatchRelease);
        r.push(0, 0, 1, EventKind::LatchRelease);
        r.push(1, 0, 9, EventKind::LatchRelease);
        r.push(DISPATCHER, 0, 0, EventKind::LatchRelease);
        let log = r.into_log(2, 1);
        let seqs: Vec<(u32, u64)> = log.iter().map(|e| (e.worker, e.seq)).collect();
        // Sorted by time: dispatcher@0, worker0@1, worker1@5, worker1@9.
        assert_eq!(seqs, vec![(DISPATCHER, 0), (0, 0), (1, 0), (1, 1)]);
    }
}
