//! 5×5 block linear algebra for the BT pseudo-application.
//!
//! NPB BT is *Block* Tri-diagonal: each grid point carries the five
//! Navier–Stokes unknowns (ρ, ρu, ρv, ρw, E), so its line solves eliminate
//! 5×5 blocks, not scalars. This module provides the block operations and
//! the block-Thomas elimination the BT kernel uses.
//!
//! Index-based loops over the fixed 5×5 dimension are the clearest notation
//! for dense block kernels, so the iterator-style lint is disabled here.
#![allow(clippy::needless_range_loop)]

/// A dense 5×5 matrix (row-major).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Block5(pub [[f64; 5]; 5]);

/// A 5-vector.
pub type Vec5 = [f64; 5];

impl Block5 {
    /// The zero matrix.
    pub const ZERO: Block5 = Block5([[0.0; 5]; 5]);

    /// The identity matrix.
    pub fn identity() -> Block5 {
        let mut m = Block5::ZERO;
        for i in 0..5 {
            m.0[i][i] = 1.0;
        }
        m
    }

    /// A deterministic diagonally-dominant test block: off-diagonal entries
    /// derived from `(salt, strength)`, diagonal set to dominate.
    pub fn dominant(salt: u64, strength: f64) -> Block5 {
        let mut m = Block5::ZERO;
        let mut state = salt | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for i in 0..5 {
            let mut off_sum = 0.0;
            for j in 0..5 {
                if i != j {
                    m.0[i][j] = strength * next();
                    off_sum += m.0[i][j].abs();
                }
            }
            m.0[i][i] = off_sum + 1.0 + next().abs();
        }
        m
    }

    /// Matrix–matrix product.
    pub fn mul(&self, rhs: &Block5) -> Block5 {
        let mut out = Block5::ZERO;
        for i in 0..5 {
            for k in 0..5 {
                let a = self.0[i][k];
                if a != 0.0 {
                    for j in 0..5 {
                        out.0[i][j] += a * rhs.0[k][j];
                    }
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &Vec5) -> Vec5 {
        let mut out = [0.0; 5];
        for i in 0..5 {
            for j in 0..5 {
                out[i] += self.0[i][j] * v[j];
            }
        }
        out
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Block5) -> Block5 {
        let mut out = *self;
        for i in 0..5 {
            for j in 0..5 {
                out.0[i][j] -= rhs.0[i][j];
            }
        }
        out
    }

    /// Inverse by Gauss–Jordan elimination with partial pivoting.
    ///
    /// # Panics
    /// Panics if the block is numerically singular (pivot below 1e-12) —
    /// the BT systems are diagonally dominant, so this indicates corrupted
    /// coefficients.
    pub fn inverse(&self) -> Block5 {
        let mut a = self.0;
        let mut inv = Block5::identity().0;
        for col in 0..5 {
            // Partial pivot.
            let pivot_row = (col..5)
                .max_by(|&r1, &r2| {
                    a[r1][col]
                        .abs()
                        .partial_cmp(&a[r2][col].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap();
            a.swap(col, pivot_row);
            inv.swap(col, pivot_row);
            let pivot = a[col][col];
            assert!(pivot.abs() > 1e-12, "singular block (pivot {pivot})");
            let inv_pivot = 1.0 / pivot;
            for j in 0..5 {
                a[col][j] *= inv_pivot;
                inv[col][j] *= inv_pivot;
            }
            for row in 0..5 {
                if row != col {
                    let factor = a[row][col];
                    if factor != 0.0 {
                        for j in 0..5 {
                            a[row][j] -= factor * a[col][j];
                            inv[row][j] -= factor * inv[col][j];
                        }
                    }
                }
            }
        }
        Block5(inv)
    }
}

/// Subtracts `m·v` from `out`.
fn sub_mul_vec(out: &mut Vec5, m: &Block5, v: &Vec5) {
    for i in 0..5 {
        for j in 0..5 {
            out[i] -= m.0[i][j] * v[j];
        }
    }
}

/// Solves one block tri-diagonal system in place.
///
/// The system has constant block coefficients `(a, b, c)` (sub-, main- and
/// super-diagonal blocks) over `d.len()` block rows; `d` holds the
/// right-hand-side 5-vectors on entry and the solution on exit.
///
/// Standard block-Thomas: forward-eliminate with block inverses, then
/// back-substitute. `O(n)` block operations, each `O(5³)`.
///
/// # Panics
/// Panics if the system is shorter than 1 row or a pivot block turns out
/// singular.
pub fn block_thomas_solve(a: &Block5, b: &Block5, c: &Block5, d: &mut [Vec5]) {
    let n = d.len();
    assert!(n >= 1, "empty block system");
    // cp[i] = (b − a·cp[i−1])⁻¹ · c, carried forward like scalar Thomas.
    let mut cp: Vec<Block5> = Vec::with_capacity(n);
    let binv = b.inverse();
    cp.push(binv.mul(c));
    d[0] = binv.mul_vec(&d[0]);
    for i in 1..n {
        let denom = b.sub(&a.mul(&cp[i - 1]));
        let denom_inv = denom.inverse();
        cp.push(denom_inv.mul(c));
        // d[i] = denom⁻¹ (d[i] − a·d[i−1])
        let mut rhs = d[i];
        let prev = d[i - 1];
        sub_mul_vec(&mut rhs, a, &prev);
        d[i] = denom_inv.mul_vec(&rhs);
    }
    for i in (0..n - 1).rev() {
        let next = d[i + 1];
        let mut cur = d[i];
        sub_mul_vec(&mut cur, &cp[i], &next);
        d[i] = cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::max_abs_diff;

    fn flat(v: &[Vec5]) -> Vec<f64> {
        v.iter().flatten().copied().collect()
    }

    #[test]
    fn identity_inverse_is_identity() {
        let i = Block5::identity();
        assert_eq!(i.inverse(), i);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Block5::dominant(7, 0.8);
        let prod = m.mul(&m.inverse());
        let err = max_abs_diff(
            &flat(&prod.0.map(|r| r)),
            &flat(&Block5::identity().0.map(|r| r)),
        );
        assert!(err < 1e-10, "M·M⁻¹ ≠ I: {err}");
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = Block5::dominant(3, 0.5);
        let v: Vec5 = [1.0, -2.0, 0.5, 3.0, -1.5];
        // Embed v as a column and compare.
        let mut col = Block5::ZERO;
        for i in 0..5 {
            col.0[i][0] = v[i];
        }
        let by_mat = m.mul(&col);
        let by_vec = m.mul_vec(&v);
        for i in 0..5 {
            assert!((by_mat.0[i][0] - by_vec[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn block_thomas_matches_manufactured_solution() {
        let a = Block5::dominant(11, 0.2);
        let b = Block5::dominant(12, 0.3);
        let c = Block5::dominant(13, 0.2);
        // Strengthen the main diagonal for block dominance.
        let mut b = b;
        for i in 0..5 {
            b.0[i][i] += 4.0;
        }
        let n = 12;
        let expected: Vec<Vec5> = (0..n)
            .map(|i| {
                let mut v = [0.0; 5];
                for (k, slot) in v.iter_mut().enumerate() {
                    *slot = ((i * 5 + k) as f64 * 0.37).sin();
                }
                v
            })
            .collect();
        // d = A·expected for the block tri-diagonal A.
        let mut d: Vec<Vec5> = (0..n)
            .map(|i| {
                let mut v = b.mul_vec(&expected[i]);
                if i > 0 {
                    let lo = a.mul_vec(&expected[i - 1]);
                    for k in 0..5 {
                        v[k] += lo[k];
                    }
                }
                if i + 1 < n {
                    let hi = c.mul_vec(&expected[i + 1]);
                    for k in 0..5 {
                        v[k] += hi[k];
                    }
                }
                v
            })
            .collect();
        block_thomas_solve(&a, &b, &c, &mut d);
        assert!(
            max_abs_diff(&flat(&d), &flat(&expected)) < 1e-9,
            "block Thomas diverged"
        );
    }

    #[test]
    fn single_block_row() {
        let b = Block5::dominant(5, 0.4);
        let x: Vec5 = [2.0, -1.0, 0.0, 1.5, 3.0];
        let mut d = vec![b.mul_vec(&x)];
        block_thomas_solve(&Block5::ZERO, &b, &Block5::ZERO, &mut d);
        assert!(max_abs_diff(&d[0], &x) < 1e-11);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_block_panics() {
        Block5::ZERO.inverse();
    }
}
